#!/usr/bin/env bash
# Repository hygiene gate: formatting, lints, full test suite.
#
# Designed for the offline reproduction environment: every cargo call
# passes --offline (all dependencies resolve to in-repo shims, see
# DESIGN.md §7.2), so no network access is required.
#
# Usage: ./scripts/check.sh [--fast]
#   --fast  skip the release-mode build (debug tests only)

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
    case "$arg" in
    --fast) FAST=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
if [ "$FAST" -eq 0 ]; then
    run cargo build --release --offline
fi
run cargo test --workspace --offline -q

echo "==> all checks passed"
