#!/usr/bin/env bash
# Repository hygiene gate: formatting, lints, full test suite.
#
# Designed for the offline reproduction environment: every cargo call
# passes --offline (all dependencies resolve to in-repo shims, see
# DESIGN.md §7.2), so no network access is required.
#
# Usage: ./scripts/check.sh [--fast]
#   --fast  skip the release-mode build (debug tests only)

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
    case "$arg" in
    --fast) FAST=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
# Library code in the simulation/transform core must not unwrap: failures
# there have typed errors (NoiseError, MitigateError, DqcError) or degrade
# gracefully (run_resilient). Tests may unwrap freely. qfault additionally
# carries a crate-level #![deny(clippy::unwrap_used)] — fault injection
# code that panics would corrupt the chaos experiments it drives. The bench
# crate (lib + bins) is held to the same bar: its binaries emit committed
# artifacts, and a panic mid-sweep loses the whole run. qcir/qalgo (the IR
# and circuit generators everything builds on) and the CLI driver are held
# to it too — a panic in the CLI turns a typed one-line error into a crash.
run cargo clippy -p qsim -p dqc -p qfault -p bench -p qcir -p qalgo -p dqct-cli -p dqctd --lib --bins --offline -- -D warnings -D clippy::unwrap_used
if [ "$FAST" -eq 0 ]; then
    run cargo build --release --offline
fi
run cargo test --workspace --offline -q

# Determinism gate: a fixed-seed simulation must produce bit-identical
# counters at every worker count. The circuit has a Toffoli, so the
# conditioned-gate counters (executor.cc_fired / cc_skipped) depend on the
# per-shot measurement outcomes — any drift in the per-shot RNG streams
# shows up here.
echo "==> determinism gate: --threads 1 vs --threads 8"
GATE_QASM='OPENQASM 3.0;
include "stdgates.inc";
qubit[3] q;
h q[0];
h q[1];
ccx q[0], q[1], q[2];'
gate_counters() {
    cargo run -q --offline -p dqct-cli --bin dqct -- \
        --answer 2 --metrics-out - --shots 256 --seed 11 --threads "$1" \
        <<<"$GATE_QASM" | grep -o '"counters":{[^}]*}'
}
c1="$(gate_counters 1)"
c8="$(gate_counters 8)"
if [ "$c1" != "$c8" ]; then
    echo "determinism gate FAILED: counters differ between thread counts" >&2
    diff <(echo "$c1") <(echo "$c8") >&2 || true
    exit 1
fi
echo "    counters identical: $c1"

# Prefix-engine gates: the branch-tree shot engine must (a) be bit-identical
# to the per-shot executor on every shared counter at the same seed, and
# (b) stay thread-count invariant itself — the tree is walked with the same
# counter-derived per-shot RNG streams the per-shot loop uses, so both
# properties are exact equalities, not statistical ones.
echo "==> prefix-engine parity gate: --engine prefix vs --engine shots"
engine_counters() {
    cargo run -q --offline -p dqct-cli --bin dqct -- \
        --answer 2 --metrics-out - --shots 256 --seed 11 --threads "$2" \
        --engine "$1" \
        <<<"$GATE_QASM" | grep -o '"counters":{[^}]*}' |
        sed -E 's/"prefix\.[^"]*":[0-9]+,?//g; s/,}/}/'
}
ps1="$(engine_counters prefix 1)"
ss1="$(engine_counters shots 1)"
if [ "$ps1" != "$ss1" ]; then
    echo "prefix-engine parity gate FAILED: engines disagree on shared counters" >&2
    diff <(echo "$ps1") <(echo "$ss1") >&2 || true
    exit 1
fi
echo "    engines agree: $ps1"
echo "==> prefix-engine determinism gate: --threads 1 vs --threads 8"
ps8="$(engine_counters prefix 8)"
if [ "$ps1" != "$ps8" ]; then
    echo "prefix-engine determinism gate FAILED: counters differ between thread counts" >&2
    diff <(echo "$ps1") <(echo "$ps8") >&2 || true
    exit 1
fi
echo "    counters identical across thread counts"

# Mitigation determinism gate: the mitigated + noisy resilient path must
# stay bit-identical across worker counts too — vote resolution, scratch
# clbits and per-shot noise all ride on the per-shot RNG streams.
echo "==> mitigation determinism gate: --threads 1 vs --threads 8"
mitigated_counters() {
    cargo run -q --offline -p dqct-cli --bin dqct -- \
        --answer 2 --metrics-out - --shots 256 --seed 11 --threads "$1" \
        --noise 1.0 --mitigate=meas-repeat=3 \
        <<<"$GATE_QASM" | grep -o '"counters":{[^}]*}'
}
m1="$(mitigated_counters 1)"
m8="$(mitigated_counters 8)"
if [ "$m1" != "$m8" ]; then
    echo "mitigation determinism gate FAILED: counters differ between thread counts" >&2
    diff <(echo "$m1") <(echo "$m8") >&2 || true
    exit 1
fi
echo "    counters identical: $m1"

# Chaos determinism gate: injected faults are scheduled counter-style from
# (fault_seed, shot, site), never from the shot's own RNG stream, so the
# fault.injected.* counters — and the shot counts they perturb — must be
# bit-identical at every worker count. The spec leaves out the delay site
# (wall-clock only) and sets no budgets, so failed shots are also
# thread-invariant.
echo "==> chaos determinism gate: --inject at --threads 1 vs --threads 8"
chaos_counters() {
    cargo run -q --offline -p dqct-cli --bin dqct -- \
        --answer 2 --metrics-out - --shots 256 --seed 11 --threads "$1" \
        --inject 'seed=5,reset-leak=0.2,meas-flip=0.1,cc-flip=0.05,cc-loss=0.05,gate-drop=0.05,gate-dup=0.05,panic=0.02' \
        <<<"$GATE_QASM" | grep -o '"counters":{[^}]*}'
}
f1="$(chaos_counters 1)"
f8="$(chaos_counters 8)"
if [ "$f1" != "$f8" ]; then
    echo "chaos determinism gate FAILED: counters differ between thread counts" >&2
    diff <(echo "$f1") <(echo "$f8") >&2 || true
    exit 1
fi
case "$f1" in
*fault.injected.*) ;;
*)
    echo "chaos determinism gate FAILED: no fault.injected.* counters in output" >&2
    exit 1
    ;;
esac
echo "    counters identical: $f1"

# Trace determinism gate: under the virtual test clock the merged Chrome
# trace is a pure function of (circuit, seed, shots) — shot spans are
# recorded into owner-local buffers and submitted in shot order, so the
# exported file must be byte-identical at every worker count.
echo "==> trace determinism gate: --trace at --threads 1 vs --threads 8"
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
gate_trace() {
    cargo run -q --offline -p dqct-cli --bin dqct -- \
        --answer 2 --verify --shots 256 --seed 11 --threads "$1" \
        --trace "$TRACE_DIR/trace$1.json" --trace-clock test \
        <<<"$GATE_QASM" >/dev/null
}
gate_trace 1
gate_trace 8
if ! cmp -s "$TRACE_DIR/trace1.json" "$TRACE_DIR/trace8.json"; then
    echo "trace determinism gate FAILED: traces differ between thread counts" >&2
    exit 1
fi
for span in pipeline.transform pipeline.verify '"shot"' executor.run_resilient; do
    if ! grep -q "$span" "$TRACE_DIR/trace1.json"; then
        echo "trace determinism gate FAILED: span $span missing from trace" >&2
        exit 1
    fi
done
echo "    traces identical ($(wc -c <"$TRACE_DIR/trace1.json") bytes)"

# Reuse determinism gate: a fixed-width lane plan must simulate to
# bit-identical counters at every worker count, exactly like the k = 1
# path — lane replay adds mid-circuit resets and measures but no new
# nondeterminism.
echo "==> reuse determinism gate: --reuse 2 at --threads 1 vs --threads 8"
reuse_counters() {
    cargo run -q --offline -p dqct-cli --bin dqct -- \
        --answer 2 --reuse 2 --metrics-out - --shots 256 --seed 11 --threads "$1" \
        <<<"$GATE_QASM" | grep -o '"counters":{[^}]*}'
}
r1="$(reuse_counters 1)"
r8="$(reuse_counters 8)"
if [ "$r1" != "$r8" ]; then
    echo "reuse determinism gate FAILED: counters differ between thread counts" >&2
    diff <(echo "$r1") <(echo "$r8") >&2 || true
    exit 1
fi
echo "    counters identical: $r1"

# Reuse equivalence gate: every feasible width of the gate circuit must
# verify exactly equivalent to the traditional input. The gate circuit's
# Toffoli lowers under dynamic-2 to 3 work qubits (max width 3; width 4
# reports 'invalid reuse plan', which is acceptable). A width that plans
# successfully but verifies with nonzero TVD is a planner soundness bug.
echo "==> reuse equivalence gate: every feasible width verifies exactly"
feasible=0
for k in 1 2 3 4; do
    if out="$(cargo run -q --offline -p dqct-cli --bin dqct -- \
        --answer 2 --reuse "$k" --verify <<<"$GATE_QASM" 2>&1)"; then
        feasible=$((feasible + 1))
        if ! grep -q '// verify: tvd = 0.000000' <<<"$out"; then
            echo "reuse equivalence gate FAILED: k=$k is feasible but not exact" >&2
            grep '// verify' <<<"$out" >&2 || true
            exit 1
        fi
    elif ! grep -q 'invalid reuse plan' <<<"$out"; then
        echo "reuse equivalence gate FAILED: k=$k errored unexpectedly" >&2
        echo "$out" >&2
        exit 1
    fi
done
if [ "$feasible" -lt 2 ]; then
    echo "reuse equivalence gate FAILED: only $feasible feasible width(s)" >&2
    exit 1
fi
echo "    $feasible feasible widths, all exact"

# Reuse-pareto gate: the committed design-space sweep must match the
# current schema, keep every currently-feasible width, stay exact at every
# width above 1, and still expose a 3-point (width, depth) frontier on at
# least one suite. Timing values are machine-dependent and not compared.
if [ "$FAST" -eq 0 ]; then
    echo "==> reuse-pareto gate"
    run cargo run -q --release --offline -p bench --bin reuse_sweep -- \
        --check BENCH_reuse_pareto.json
else
    echo "==> reuse-pareto gate skipped (--fast; the sweep wants release codegen)"
fi

# Perf-baseline gate: a quick instrumented profile must still surface every
# pipeline phase and gate-apply histogram, the committed
# BENCH_perf_baseline.json must match the current schema, and the disabled
# tracing fast path must stay within its per-call budget. Timing values are
# machine-dependent and not compared.
if [ "$FAST" -eq 0 ]; then
    echo "==> perf-baseline gate"
    run cargo run -q --release --offline -p bench --bin perf_baseline -- \
        --check BENCH_perf_baseline.json
else
    echo "==> perf-baseline gate skipped (--fast; the overhead budget needs release codegen)"
fi

# Shot-scaling gate: the committed BENCH_shot_scaling.json trajectory point
# must match the current schema and record the prefix engine >= 5x the
# per-shot executor at 4096 shots, and a fresh quick sweep must re-assert
# engine bit-identity on this machine. Fresh timing values are machine-
# dependent and not compared.
if [ "$FAST" -eq 0 ]; then
    echo "==> shot-scaling gate"
    run cargo run -q --release --offline -p bench --bin shot_scaling -- \
        --check BENCH_shot_scaling.json
else
    echo "==> shot-scaling gate skipped (--fast; engine timings need release codegen)"
fi

# Service gates: (a) the committed BENCH_service_load.json trajectory
# point must match the current schema and record zero dropped jobs, and a
# fresh in-process chaos drill must fault exactly the predicted job set
# while serving everything else bit-identically to a fault-free server;
# (b) a real dqctd on loopback, with injected 20 ms/shot latency on every
# job, must shed a 2x overload with typed rejections (nonzero), answer
# every accepted job (zero dropped), and drain cleanly on SIGTERM with
# exit code 0.
if [ "$FAST" -eq 0 ]; then
    echo "==> service-load gate"
    run cargo run -q --release --offline -p bench --bin service_load -- \
        --check BENCH_service_load.json
    echo "==> live service gate: overload, shed, SIGTERM drain"
    SERVICE_DIR="$(mktemp -d)"
    cargo run -q --release --offline -p dqctd --bin dqctd -- \
        --addr 127.0.0.1:0 --port-file "$SERVICE_DIR/port" \
        --workers 1 --queue 4 \
        --inject 'seed=9,delay=1.0,delay-ms=20' \
        2>"$SERVICE_DIR/log" &
    SERVICE_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$SERVICE_DIR/port" ] && break
        sleep 0.1
    done
    if [ ! -s "$SERVICE_DIR/port" ]; then
        echo "live service gate FAILED: dqctd never wrote its port" >&2
        cat "$SERVICE_DIR/log" >&2 || true
        kill "$SERVICE_PID" 2>/dev/null || true
        exit 1
    fi
    SERVICE_PORT="$(cat "$SERVICE_DIR/port")"
    run cargo run -q --release --offline -p bench --bin service_load -- \
        --live "127.0.0.1:$SERVICE_PORT" --jobs 32 --expect-shed
    kill -TERM "$SERVICE_PID"
    if ! wait "$SERVICE_PID"; then
        echo "live service gate FAILED: dqctd did not drain cleanly on SIGTERM" >&2
        cat "$SERVICE_DIR/log" >&2 || true
        exit 1
    fi
    if ! grep -q 'drained cleanly' "$SERVICE_DIR/log"; then
        echo "live service gate FAILED: no clean-drain marker in the daemon log" >&2
        cat "$SERVICE_DIR/log" >&2 || true
        exit 1
    fi
    rm -rf "$SERVICE_DIR"
    echo "    shed under overload, zero dropped, clean SIGTERM drain"
else
    echo "==> service gates skipped (--fast; the live drill wants release codegen)"
fi

# Crash-recovery gate: a real dqctd with a write-ahead journal is
# SIGKILLed mid-burst (an injected 50 ms/shot delay guarantees every
# admitted job is still incomplete), restarted on the same journal, and
# must replay every admitted job; retries under the original idempotency
# keys must return completed results, twice, byte-identically — and the
# replayed counts must match an uninterrupted run of the same jobs.
if [ "$FAST" -eq 0 ]; then
    echo "==> crash-recovery gate: SIGKILL mid-burst, journal replay"
    CRASH_DIR="$(mktemp -d)"
    printf '%s\n' "$GATE_QASM" >"$CRASH_DIR/gate.qasm"
    crash_client() {
        cargo run -q --release --offline -p dqct-cli --bin dqct -- \
            client --addr "127.0.0.1:$CRASH_PORT" "$@"
    }
    crash_submit() {
        crash_client submit --id "$1" --retry 20 \
            --answer 2 --shots 300 --seed 11 --deadline-ms 120000 \
            "$CRASH_DIR/gate.qasm" | tail -n 1
    }
    boot_crash_dqctd() {
        rm -f "$CRASH_DIR/port"
        cargo run -q --release --offline -p dqctd --bin dqctd -- \
            --addr 127.0.0.1:0 --port-file "$CRASH_DIR/port" \
            --journal "$CRASH_DIR/journal" --fsync always --workers 1 \
            "$@" >/dev/null 2>>"$CRASH_DIR/log" &
        CRASH_PID=$!
        for _ in $(seq 1 100); do
            [ -s "$CRASH_DIR/port" ] && break
            sleep 0.1
        done
        if [ ! -s "$CRASH_DIR/port" ]; then
            echo "crash-recovery gate FAILED: dqctd never wrote its port" >&2
            cat "$CRASH_DIR/log" >&2 || true
            kill "$CRASH_PID" 2>/dev/null || true
            exit 1
        fi
        CRASH_PORT="$(cat "$CRASH_DIR/port")"
    }
    boot_crash_dqctd --inject 'seed=3,delay=1.0,delay-ms=50'
    for i in 1 2 3; do
        crash_client submit --id "crash-$i" \
            --answer 2 --shots 300 --seed 11 --deadline-ms 120000 \
            "$CRASH_DIR/gate.qasm" >/dev/null 2>&1 &
    done
    admitted=0
    for _ in $(seq 1 100); do
        if crash_client metrics 2>/dev/null | grep -q '"service.accepted":3'; then
            admitted=1
            break
        fi
        sleep 0.1
    done
    if [ "$admitted" -ne 1 ]; then
        echo "crash-recovery gate FAILED: the burst was never fully admitted" >&2
        cat "$CRASH_DIR/log" >&2 || true
        kill -9 "$CRASH_PID" 2>/dev/null || true
        exit 1
    fi
    kill -9 "$CRASH_PID"
    wait "$CRASH_PID" 2>/dev/null || true
    boot_crash_dqctd
    REPLAYED_COUNTS=""
    for i in 1 2 3; do
        r1="$(crash_submit "crash-$i")"
        if ! grep -q '"termination":"completed"' <<<"$r1"; then
            echo "crash-recovery gate FAILED: crash-$i did not replay to completion: $r1" >&2
            cat "$CRASH_DIR/log" >&2 || true
            kill "$CRASH_PID" 2>/dev/null || true
            exit 1
        fi
        r2="$(crash_submit "crash-$i")"
        if [ "$r1" != "$r2" ]; then
            echo "crash-recovery gate FAILED: crash-$i retries are not byte-identical" >&2
            diff <(echo "$r1") <(echo "$r2") >&2 || true
            kill "$CRASH_PID" 2>/dev/null || true
            exit 1
        fi
        REPLAYED_COUNTS="$REPLAYED_COUNTS$(grep -o '"counts":{[^}]*}' <<<"$r1")
"
    done
    kill -TERM "$CRASH_PID"
    wait "$CRASH_PID" || true
    rm -f "$CRASH_DIR/journal"
    boot_crash_dqctd
    REFERENCE_COUNTS=""
    for i in 1 2 3; do
        ref="$(crash_submit "crash-$i")"
        REFERENCE_COUNTS="$REFERENCE_COUNTS$(grep -o '"counts":{[^}]*}' <<<"$ref")
"
    done
    kill -TERM "$CRASH_PID"
    wait "$CRASH_PID" || true
    if [ "$REPLAYED_COUNTS" != "$REFERENCE_COUNTS" ]; then
        echo "crash-recovery gate FAILED: replayed counts diverge from an uninterrupted run" >&2
        diff <(echo "$REPLAYED_COUNTS") <(echo "$REFERENCE_COUNTS") >&2 || true
        exit 1
    fi
    rm -rf "$CRASH_DIR"
    echo "    3 jobs replayed after SIGKILL, retries byte-identical, counts match an uninterrupted run"
else
    echo "==> crash-recovery gate skipped (--fast; the drill wants release codegen)"
fi

echo "==> all checks passed"
