#!/usr/bin/env bash
# Repository hygiene gate: formatting, lints, full test suite.
#
# Designed for the offline reproduction environment: every cargo call
# passes --offline (all dependencies resolve to in-repo shims, see
# DESIGN.md §7.2), so no network access is required.
#
# Usage: ./scripts/check.sh [--fast]
#   --fast  skip the release-mode build (debug tests only)

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
    case "$arg" in
    --fast) FAST=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
if [ "$FAST" -eq 0 ]; then
    run cargo build --release --offline
fi
run cargo test --workspace --offline -q

# Determinism gate: a fixed-seed simulation must produce bit-identical
# counters at every worker count. The circuit has a Toffoli, so the
# conditioned-gate counters (executor.cc_fired / cc_skipped) depend on the
# per-shot measurement outcomes — any drift in the per-shot RNG streams
# shows up here.
echo "==> determinism gate: --threads 1 vs --threads 8"
GATE_QASM='OPENQASM 3.0;
include "stdgates.inc";
qubit[3] q;
h q[0];
h q[1];
ccx q[0], q[1], q[2];'
gate_counters() {
    cargo run -q --offline -p dqct-cli --bin dqct -- \
        --answer 2 --metrics=json --shots 256 --seed 11 --threads "$1" \
        <<<"$GATE_QASM" | grep -o '"counters":{[^}]*}'
}
c1="$(gate_counters 1)"
c8="$(gate_counters 8)"
if [ "$c1" != "$c8" ]; then
    echo "determinism gate FAILED: counters differ between thread counts" >&2
    diff <(echo "$c1") <(echo "$c8") >&2 || true
    exit 1
fi
echo "    counters identical: $c1"

echo "==> all checks passed"
