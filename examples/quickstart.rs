//! Quickstart: transform a Toffoli-based Deutsch-Jozsa circuit into a
//! 2-qubit dynamic circuit and verify it.
//!
//! Run with `cargo run -p examples --bin quickstart`.

use dqc::{transform_with_scheme, verify, DynamicScheme, QubitRoles, TransformOptions};
use examples_support::{heading, histogram};
use qalgo::{dj_circuit, TruthTable};
use qsim::Executor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the traditional circuit: DJ on F(a, b) = a OR b, which the
    //    paper's Fig. 1 writes as F(a, b) = a + b (one Toffoli).
    let oracle = TruthTable::or(2);
    let circuit = dj_circuit(&oracle);
    let roles = QubitRoles::data_plus_answer(circuit.num_qubits());
    heading("Traditional circuit (3 qubits)");
    print!("{}", qcir::ascii::draw(&circuit));

    // 2. Transform with the paper's dynamic-2 scheme: one Toffoli becomes
    //    CV gates plus a shared-ancilla iteration.
    let dynamic = transform_with_scheme(
        &circuit,
        &roles,
        DynamicScheme::Dynamic2,
        &TransformOptions::default(),
    )?;
    heading("Dynamic circuit (2 qubits, 3 iterations)");
    print!("{}", qcir::ascii::draw(dynamic.circuit()));
    println!("iterations: {}", dynamic.num_iterations());

    // 3. Verify functional equivalence exactly (no shot noise).
    let report = verify::compare(&circuit, &roles, &dynamic);
    heading("Exact verification");
    println!("total variation distance: {:.2e}", report.tvd);
    println!(
        "traditional distribution:\n{}",
        histogram(&report.traditional)
    );
    println!("dynamic distribution:\n{}", histogram(&report.dynamic));

    // 4. And sample it the way the paper does: 1024 shots.
    let counts = Executor::new().shots(1024).seed(42).run(dynamic.circuit());
    heading("1024-shot sample of the dynamic circuit");
    println!("{counts}");
    Ok(())
}
