//! Iterative QPE, re-derived by the generic transformation.
//!
//! Córcoles et al. (the paper's reference \[3\]) hand-built the dynamic
//! (iterative) version of quantum phase estimation. This example shows the
//! generic Algorithm 1 deriving it automatically from the textbook QPE
//! circuit — and that the result is *exactly* equivalent (the classically
//! controlled phase corrections are the semiclassical QFT).
//!
//! `cargo run -p examples --bin iterative_qpe -- 0.3 4`

use dqc::{transform, verify, QubitRoles, TransformOptions};
use examples_support::{arg_or, heading, histogram};
use qalgo::{estimate_from_bits, qpe_circuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let theta: f64 = arg_or(1, "0.3").parse()?;
    let bits: usize = arg_or(2, "4").parse()?;

    let circuit = qpe_circuit(theta, bits);
    heading(&format!(
        "Traditional QPE for theta = {theta} with {bits} counting qubits ({} qubits total)",
        circuit.num_qubits()
    ));
    print!("{}", qcir::ascii::draw(&circuit));

    let roles = QubitRoles::data_plus_answer(circuit.num_qubits());
    let dynamic = transform(&circuit, &roles, &TransformOptions::default())?;
    heading(&format!(
        "Dynamic (iterative) QPE: 2 qubits, {} iterations",
        dynamic.num_iterations()
    ));
    print!("{}", qcir::ascii::draw(dynamic.circuit()));

    let conditioned = dynamic
        .circuit()
        .iter()
        .filter(|i| i.is_conditioned())
        .count();
    println!("classically controlled phase corrections: {conditioned}");

    let report = verify::compare(&circuit, &roles, &dynamic);
    heading("Verification");
    println!("tvd(traditional, dynamic) = {:.2e} — exact", report.tvd);
    println!("\nphase-estimate distribution (dynamic):");
    print!("{}", histogram(&report.dynamic));
    let best = report.dynamic.argmax().unwrap_or("0").to_string();
    println!(
        "best estimate: {} -> theta ~ {:.4} (true {theta})",
        best,
        estimate_from_bits(&best)
    );
    Ok(())
}
