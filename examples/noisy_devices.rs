//! Dynamic circuits on a synthetic noisy device.
//!
//! The paper's motivation is execution on real hardware; this example
//! sweeps a device-like noise model and shows how (a) the dynamic circuits'
//! depth overhead costs accuracy under noise, while (b) the dynamic-2 vs
//! dynamic-1 ordering survives. `cargo run -p examples --bin noisy_devices`.

use dqc::{transform_with_scheme, verify, DynamicScheme, QubitRoles, TransformOptions};
use examples_support::heading;
use qalgo::{dj_circuit, TruthTable};
use qcir::{Circuit, Clbit};
use qsim::density::exact_distribution_noisy;
use qsim::{Executor, NoiseModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let oracle = TruthTable::and(2);
    let circuit = dj_circuit(&oracle);
    let roles = QubitRoles::data_plus_answer(3);
    let opts = TransformOptions::default();
    let d1 = transform_with_scheme(&circuit, &roles, DynamicScheme::Dynamic1, &opts)?;
    let d2 = transform_with_scheme(&circuit, &roles, DynamicScheme::Dynamic2, &opts)?;
    let expected = verify::compare(&circuit, &roles, &d2).expected_outcome;

    // Traditional circuit with data measurements appended.
    let mut tradi = Circuit::new(circuit.num_qubits(), roles.data().len());
    tradi.extend(&circuit);
    for (i, &d) in roles.data().iter().enumerate() {
        tradi.measure(d, Clbit::new(i));
    }

    heading("Exact expected-outcome probability vs. noise (density backend)");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "noise", "tradi", "dynamic-1", "dynamic-2"
    );
    for scale in [0.0, 0.1, 0.25, 0.5, 1.0, 2.0] {
        let noise = NoiseModel::device_like(scale);
        let pt = exact_distribution_noisy(&tradi, &noise).get(&expected);
        let p1 = exact_distribution_noisy(d1.circuit(), &noise).get(&expected);
        let p2 = exact_distribution_noisy(d2.circuit(), &noise).get(&expected);
        println!("{scale:>6.2} {pt:>10.4} {p1:>10.4} {p2:>10.4}");
    }

    heading("Trajectory sampling agrees with the exact density result");
    let noise = NoiseModel::device_like(1.0);
    let exact = exact_distribution_noisy(d2.circuit(), &noise);
    let sampled = Executor::new()
        .shots(4096)
        .seed(7)
        .noise(noise)
        .run(d2.circuit())
        .to_distribution();
    println!("tvd(exact, 4096-shot sample) = {:.4}", exact.tvd(&sampled));
    Ok(())
}
