//! Bernstein-Vazirani, traditionally and dynamically.
//!
//! Reproduces the paper's Fig. 3 walkthrough for an arbitrary hidden
//! string: `cargo run -p examples --bin bv_dynamic -- 1101`.

use dqc::{transform, verify, QubitRoles, TransformOptions};
use examples_support::{arg_or, heading, histogram};
use qalgo::{bv_circuit, parse_hidden};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hidden_str = arg_or(1, "110");
    let hidden = parse_hidden(&hidden_str);
    let circuit = bv_circuit(&hidden);
    let roles = QubitRoles::data_plus_answer(circuit.num_qubits());

    heading(&format!(
        "Traditional BV for hidden string {hidden_str} ({} qubits)",
        circuit.num_qubits()
    ));
    print!("{}", qcir::ascii::draw(&circuit));

    let dynamic = transform(&circuit, &roles, &TransformOptions::default())?;
    heading(&format!(
        "Dynamic BV (2 qubits, {} iterations)",
        dynamic.num_iterations()
    ));
    print!("{}", qcir::ascii::draw(dynamic.circuit()));

    let report = verify::compare(&circuit, &roles, &dynamic);
    heading("Verification");
    println!(
        "expected outcome (hidden string, MSB first): {}",
        report.expected_outcome
    );
    println!("p(traditional) = {:.4}", report.p_traditional);
    println!("p(dynamic)     = {:.4}", report.p_dynamic);
    println!("tvd            = {:.2e}", report.tvd);
    println!(
        "\ndynamic outcome distribution:\n{}",
        histogram(&report.dynamic)
    );

    heading("OpenQASM 3 of the dynamic circuit");
    print!("{}", qcir::qasm::to_qasm(dynamic.circuit()));
    Ok(())
}
