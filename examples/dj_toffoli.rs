//! Dynamic-1 vs dynamic-2 across the paper's Toffoli benchmarks.
//!
//! The core result of the paper in one run: for each Table II benchmark,
//! transform with both Toffoli schemes and compare their accuracy against
//! the traditional circuit. `cargo run -p examples --bin dj_toffoli`.

use dqc::{transform_with_scheme, verify, DynamicScheme, ResourceSummary, TransformOptions};
use examples_support::heading;
use qalgo::suites::toffoli_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    heading("Dynamic-1 vs dynamic-2 on the Table II benchmarks");
    println!(
        "{:<10} {:>6} {:>6} {:>9} {:>9} {:>10} {:>10}",
        "benchmark", "it d1", "it d2", "tvd d1", "tvd d2", "p_exp d1", "p_exp d2"
    );
    let opts = TransformOptions::default();
    for b in toffoli_suite() {
        let d1 = transform_with_scheme(&b.circuit, &b.roles, DynamicScheme::Dynamic1, &opts)?;
        let d2 = transform_with_scheme(&b.circuit, &b.roles, DynamicScheme::Dynamic2, &opts)?;
        let r1 = verify::compare(&b.circuit, &b.roles, &d1);
        let r2 = verify::compare(&b.circuit, &b.roles, &d2);
        println!(
            "{:<10} {:>6} {:>6} {:>9.4} {:>9.4} {:>10.4} {:>10.4}",
            b.name,
            d1.num_iterations(),
            d2.num_iterations(),
            r1.tvd,
            r2.tvd,
            r1.p_dynamic,
            r2.p_dynamic,
        );
    }

    heading("What dynamic-2 pays for the accuracy");
    for b in toffoli_suite().into_iter().take(1) {
        let d1 = transform_with_scheme(&b.circuit, &b.roles, DynamicScheme::Dynamic1, &opts)?;
        let d2 = transform_with_scheme(&b.circuit, &b.roles, DynamicScheme::Dynamic2, &opts)?;
        let s1 = ResourceSummary::of_dynamic(&d1);
        let s2 = ResourceSummary::of_dynamic(&d2);
        println!("{} dynamic-1: {s1}", b.name);
        println!("{} dynamic-2: {s2}", b.name);
        println!(
            "extra cost: {} reset(s), {} classically controlled op(s)",
            s2.resets - s1.resets,
            s2.conditioned.max(s1.conditioned) - s1.conditioned.min(s2.conditioned)
        );
        println!("\ndynamic-2 circuit:");
        print!("{}", qcir::ascii::draw(d2.circuit()));
    }
    Ok(())
}
