//! Shared helpers for the example binaries.

use qsim::Distribution;

/// Prints a section heading.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// Renders a distribution as sorted `key: probability` lines with a text
/// bar, most probable outcome first.
#[must_use]
pub fn histogram(dist: &Distribution) -> String {
    let mut entries: Vec<(String, f64)> = dist.iter().map(|(k, p)| (k.to_string(), p)).collect();
    entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = String::new();
    for (key, p) in entries {
        let bar = "#".repeat((p * 40.0).round() as usize);
        out.push_str(&format!("  {key}  {p:>7.4}  {bar}\n"));
    }
    out
}

/// Returns CLI argument `index`, falling back to `default`.
#[must_use]
pub fn arg_or(index: usize, default: &str) -> String {
    std::env::args()
        .nth(index)
        .unwrap_or_else(|| default.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_sorts_by_probability() {
        let mut d = Distribution::new();
        d.set("00", 0.25);
        d.set("11", 0.75);
        let h = histogram(&d);
        let first = h.lines().next().unwrap();
        assert!(first.contains("11"));
        assert!(first.contains('#'));
    }

    #[test]
    fn arg_or_falls_back() {
        assert_eq!(arg_or(99, "fallback"), "fallback");
    }
}
