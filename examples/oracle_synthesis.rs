//! Oracle synthesis from an arbitrary truth table, end to end.
//!
//! Pass the output column as a bitstring (length a power of two):
//! `cargo run -p examples --bin oracle_synthesis -- 0110` synthesizes the
//! XOR oracle, builds the DJ circuit, transforms it dynamically and checks
//! the result.

use dqc::{transform_with_scheme, verify, DynamicScheme, QubitRoles, TransformOptions};
use examples_support::{arg_or, heading, histogram};
use qalgo::{dj_circuit, TruthTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let column = arg_or(1, "0001");
    let bits: Vec<bool> = column
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid truth-table character '{other}'")),
        })
        .collect::<Result<_, _>>()?;
    let tt = TruthTable::from_bits(bits);

    heading(&format!("Truth table {tt}"));
    println!(
        "constant: {} | balanced: {} | weight: {}",
        tt.is_constant(),
        tt.is_balanced(),
        tt.weight()
    );

    heading("PPRM expansion (XOR of monomials)");
    let monomials = tt.pprm();
    if monomials.is_empty() {
        println!("f = 0");
    } else {
        let rendered: Vec<String> = monomials
            .iter()
            .map(|m| {
                if m.is_empty() {
                    "1".to_string()
                } else {
                    m.iter()
                        .map(|i| format!("x{i}"))
                        .collect::<Vec<_>>()
                        .join("·")
                }
            })
            .collect();
        println!("f = {}", rendered.join(" ⊕ "));
    }

    let circuit = dj_circuit(&tt);
    heading("DJ circuit with the synthesized oracle");
    print!("{}", qcir::ascii::draw(&circuit));

    let roles = QubitRoles::data_plus_answer(circuit.num_qubits());
    let dynamic = transform_with_scheme(
        &circuit,
        &roles,
        DynamicScheme::Dynamic2,
        &TransformOptions::default(),
    )?;
    let report = verify::compare(&circuit, &roles, &dynamic);
    heading("Dynamic-2 realization");
    println!(
        "2 qubits, {} iterations, tvd vs traditional = {:.4}",
        dynamic.num_iterations(),
        report.tvd
    );
    println!("outcome distribution:\n{}", histogram(&report.dynamic));
    Ok(())
}
