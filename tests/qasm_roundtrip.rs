//! OpenQASM 3 round-trips of realistic dynamic circuits: the serialized
//! form parses back to the identical instruction stream and, independently,
//! to the identical exact outcome distribution.

use bench::runners::transform_both;
use dqc::{transform, TransformOptions};
use qalgo::suites::{toffoli_free_suite, toffoli_suite};
use qcir::qasm::{from_qasm, to_qasm};
use qsim::branch::exact_distribution;

#[test]
fn every_toffoli_free_dynamic_circuit_round_trips() {
    for b in toffoli_free_suite() {
        let d = transform(&b.circuit, &b.roles, &TransformOptions::default()).unwrap();
        let text = to_qasm(d.circuit());
        let parsed = from_qasm(&text).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(
            parsed.instructions(),
            d.circuit().instructions(),
            "{}",
            b.name
        );
    }
}

#[test]
fn every_toffoli_dynamic_circuit_round_trips_with_semantics() {
    for b in toffoli_suite() {
        let (d1, d2) = transform_both(&b);
        for (label, d) in [("dyn1", d1), ("dyn2", d2)] {
            let text = to_qasm(d.circuit());
            let parsed = from_qasm(&text).unwrap();
            let before = exact_distribution(d.circuit());
            let after = exact_distribution(&parsed);
            assert!(
                before.tvd(&after) < 1e-12,
                "{} {label}: distribution changed through QASM",
                b.name
            );
        }
    }
}

#[test]
fn traditional_circuits_round_trip_too() {
    for b in toffoli_suite() {
        let text = to_qasm(&b.circuit);
        let parsed = from_qasm(&text).unwrap();
        assert_eq!(
            parsed.instructions(),
            b.circuit.instructions(),
            "{}",
            b.name
        );
    }
}

#[test]
fn qasm_text_declares_dynamic_primitives() {
    let b = &toffoli_suite()[0];
    let (_, d2) = transform_both(b);
    let text = to_qasm(d2.circuit());
    assert!(text.contains("reset q[0];"), "missing reset:\n{text}");
    assert!(text.contains("= measure q[0];"), "missing measure:\n{text}");
    assert!(
        text.contains("if (c["),
        "missing classical control:\n{text}"
    );
    assert!(text.contains("ctrl @ sx"), "missing CV gate:\n{text}");
}
