//! QASM ingestion hardening: property-based round-trips over random dynamic
//! circuits (including voted conditions) and seeded, deterministic
//! corruption of well-formed files.
//!
//! The corruption loop is the repo's no-dependency stand-in for a fuzzer:
//! every case derives from a fixed seed, so failures replay exactly. The
//! contract under test: `from_qasm` never panics — it either returns a
//! typed one-line error or a circuit that passes `Circuit::validate`.

use proptest::prelude::*;
use qcir::qasm::{from_qasm, to_qasm};
use qcir::{Circuit, Clbit, Condition, Gate, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NQ: usize = 4;
const NC: usize = 6;

/// One random circuit operation, including the dynamic/conditioned forms.
#[derive(Debug, Clone)]
enum Op {
    Gate(Gate, Vec<usize>),
    Measure(usize, usize),
    Reset(usize),
    /// X conditioned on a single bit compared against `value`.
    BitCond(usize, usize, bool),
    /// X conditioned on a two-bit register value.
    RegCond(usize, usize, u64),
    /// X conditioned on a majority vote over three ballots (plus `value`
    /// selecting the wanted vote outcome).
    VotedCond(usize, usize, bool),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let one = (0usize..NQ).prop_flat_map(|q| {
        prop_oneof![
            Just(Gate::H),
            Just(Gate::X),
            Just(Gate::Z),
            Just(Gate::S),
            Just(Gate::T),
            Just(Gate::V),
        ]
        .prop_map(move |g| (g, vec![q]))
    });
    let two = (0usize..NQ, 0usize..NQ - 1).prop_map(|(a, b)| {
        let b = if b >= a { b + 1 } else { b };
        (Gate::Cx, vec![a, b])
    });
    prop_oneof![
        3 => prop_oneof![one, two].prop_map(|(g, qs)| Op::Gate(g, qs)),
        2 => (0usize..NQ, 0usize..NC).prop_map(|(q, c)| Op::Measure(q, c)),
        1 => (0usize..NQ).prop_map(Op::Reset),
        1 => (0usize..NQ, 0usize..NC, any::<bool>())
            .prop_map(|(q, c, v)| Op::BitCond(q, c, v)),
        1 => (0usize..NQ, 0usize..NC - 1, 0u64..4)
            .prop_map(|(q, c, v)| Op::RegCond(q, c, v)),
        1 => (0usize..NQ, 0usize..NC - 2, any::<bool>())
            .prop_map(|(q, c, v)| Op::VotedCond(q, c, v)),
    ]
}

fn build(ops: Vec<Op>) -> Circuit {
    let mut circ = Circuit::new(NQ, NC);
    for op in ops {
        match op {
            Op::Gate(g, qs) => {
                let qubits: Vec<Qubit> = qs.into_iter().map(Qubit::new).collect();
                circ.gate(g, &qubits);
            }
            Op::Measure(q, c) => {
                circ.measure(Qubit::new(q), Clbit::new(c));
            }
            Op::Reset(q) => {
                circ.reset(Qubit::new(q));
            }
            Op::BitCond(q, c, v) => {
                let cond = if v {
                    Condition::bit(Clbit::new(c))
                } else {
                    Condition::bit_zero(Clbit::new(c))
                };
                circ.gate_if(Gate::X, &[Qubit::new(q)], cond);
            }
            Op::RegCond(q, c, v) => {
                circ.gate_if(
                    Gate::X,
                    &[Qubit::new(q)],
                    Condition::register(vec![Clbit::new(c), Clbit::new(c + 1)], v),
                );
            }
            Op::VotedCond(q, c, v) => {
                circ.gate_if(
                    Gate::X,
                    &[Qubit::new(q)],
                    Condition::voted(
                        vec![vec![Clbit::new(c), Clbit::new(c + 1), Clbit::new(c + 2)]],
                        u64::from(v),
                    ),
                );
            }
        }
    }
    circ
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_dynamic_circuits_round_trip(ops in proptest::collection::vec(arb_op(), 0..30)) {
        let circ = build(ops);
        prop_assert!(circ.validate().is_ok());
        let text = to_qasm(&circ);
        let parsed = from_qasm(&text).expect("serialized circuit must parse");
        prop_assert_eq!(parsed.instructions(), circ.instructions());
        prop_assert_eq!(parsed.num_qubits(), circ.num_qubits());
        prop_assert!(parsed.validate().is_ok());
    }
}

/// A representative dynamic-circuit QASM file used as corruption fodder:
/// declarations, gates, measurement assignment, reset, bit / register /
/// voted conditions.
fn corruption_fodder() -> String {
    let mut circ = Circuit::new(3, 5);
    circ.h(Qubit::new(0));
    circ.measure(Qubit::new(0), Clbit::new(0));
    circ.measure(Qubit::new(0), Clbit::new(1));
    circ.measure(Qubit::new(0), Clbit::new(2));
    circ.gate_if(
        Gate::X,
        &[Qubit::new(1)],
        Condition::voted(vec![vec![Clbit::new(0), Clbit::new(1), Clbit::new(2)]], 1),
    );
    circ.reset(Qubit::new(0));
    circ.gate(Gate::Cx, &[Qubit::new(1), Qubit::new(2)]);
    circ.measure(Qubit::new(2), Clbit::new(3));
    circ.gate_if(
        Gate::H,
        &[Qubit::new(2)],
        Condition::register(vec![Clbit::new(3), Clbit::new(4)], 0b01),
    );
    to_qasm(&circ)
}

/// Applies one seeded mutation to the text, staying valid UTF-8.
fn mutate(text: &str, rng: &mut StdRng) -> String {
    let printable = |rng: &mut StdRng| (rng.gen_range(0x20u64..0x7f) as u8) as char;
    let mut s: Vec<char> = text.chars().collect();
    match rng.gen_range(0u64..6) {
        0 if !s.is_empty() => {
            // Replace one character.
            let i = rng.gen_range(0..s.len() as u64) as usize;
            s[i] = printable(rng);
        }
        1 if !s.is_empty() => {
            // Delete one character.
            let i = rng.gen_range(0..s.len() as u64) as usize;
            s.remove(i);
        }
        2 => {
            // Insert one character.
            let i = rng.gen_range(0..(s.len() as u64 + 1)) as usize;
            let ch = printable(rng);
            s.insert(i, ch);
        }
        3 if !s.is_empty() => {
            // Truncate.
            let i = rng.gen_range(0..s.len() as u64) as usize;
            s.truncate(i);
        }
        4 => {
            // Duplicate a random line in place.
            let lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let i = rng.gen_range(0..lines.len() as u64) as usize;
                let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
                out.extend_from_slice(&lines[..=i]);
                out.extend_from_slice(&lines[i..]);
                return out.join("\n");
            }
        }
        _ => {
            // Splice a digit into a random position (targets indices/sizes).
            let i = rng.gen_range(0..(s.len() as u64 + 1)) as usize;
            let d = char::from(b'0' + rng.gen_range(0u64..10) as u8);
            s.insert(i, d);
        }
    }
    s.into_iter().collect()
}

#[test]
fn seeded_corruption_never_panics_the_parser() {
    let fodder = corruption_fodder();
    assert!(from_qasm(&fodder).is_ok(), "fodder must start valid");
    let mut rejected = 0u32;
    for seed in 0u64..400 {
        let mut rng = StdRng::seed_from_u64(0x51ED_F00D ^ seed);
        let mut garbled = fodder.clone();
        let rounds = 1 + rng.gen_range(0u64..3);
        for _ in 0..rounds {
            garbled = mutate(&garbled, &mut rng);
        }
        match from_qasm(&garbled) {
            Ok(circ) => {
                // A mutation that still parses must yield a well-formed
                // circuit — corruption must never smuggle invalid structure
                // past the ingestion boundary.
                assert!(
                    circ.validate().is_ok(),
                    "seed {seed}: parsed circuit fails validate:\n{garbled}"
                );
            }
            Err(e) => {
                rejected += 1;
                let msg = e.to_string();
                assert!(!msg.is_empty(), "seed {seed}: empty error");
                assert!(!msg.contains('\n'), "seed {seed}: multi-line error: {msg}");
            }
        }
    }
    // Sanity: the mutator is actually producing malformed files.
    assert!(rejected > 100, "only {rejected}/400 cases rejected");
}

#[test]
fn hand_picked_garbles_yield_typed_errors() {
    let cases = [
        "qubit[2] q;\ncx q[0];\n",
        "qubit[2] q;\ncx q[0], q[0];\n",
        "qubit[2] q;\nbit[1] c;\nif (c[0] == 1) { barrier q[0], q[1]; }\n",
        "qubit[2] q;\nctrl(0) @ x q[0], q[1];\n",
        "qubit[999999999] q;\n",
        "qubit[2] q;\nbit[3] c;\nif (c[0] + c[1] >= 2) { x q[0]; }\n",
        "qubit[2] q;\nbit[3] c;\nif (c[0] + c[1] + c[2] >= 1) { x q[0]; }\n",
        "qubit[1] q;\nbit[1] c;\nif (c[0] == 1) { x q[0];\n",
        "qubit[1] q;\nh q[5];\n",
        "qubit[1] q;\nbit[1] c;\nc[7] = measure q[0];\n",
    ];
    for qasm in cases {
        let err = from_qasm(qasm).expect_err(qasm);
        let msg = err.to_string();
        assert!(!msg.is_empty() && !msg.contains('\n'), "{qasm}: {msg}");
    }
}
