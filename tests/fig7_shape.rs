//! Fig. 7 shape: dynamic-2 tracks the traditional expected-outcome
//! probabilities; dynamic-1 deviates — exactly and at 1024 shots.

use bench::runners::{fig7, transform_both};
use dqc::verify;
use qalgo::suites::toffoli_suite;
use qsim::Executor;

#[test]
fn exact_probabilities_follow_the_papers_shape() {
    for b in toffoli_suite() {
        let (d1, d2) = transform_both(&b);
        let r1 = verify::compare(&b.circuit, &b.roles, &d1);
        let r2 = verify::compare(&b.circuit, &b.roles, &d2);
        if b.name == "CARRY" {
            // Structural deviation (see equivalence.rs); but the ordering
            // dynamic-2 < dynamic-1 still holds.
            assert!(r2.tvd < r1.tvd, "CARRY ordering violated");
            continue;
        }
        // Single-Toffoli rows: dynamic-2 equals the traditional
        // probability; dynamic-1 is off by at least 0.25 in probability.
        assert!(
            (r2.p_dynamic - r2.p_traditional).abs() < 1e-9,
            "{}: dynamic-2 p {} vs {}",
            b.name,
            r2.p_dynamic,
            r2.p_traditional
        );
        assert!(
            (r1.p_dynamic - r1.p_traditional).abs() > 0.2,
            "{}: dynamic-1 unexpectedly accurate ({} vs {})",
            b.name,
            r1.p_dynamic,
            r1.p_traditional
        );
    }
}

#[test]
fn shot_sampling_reproduces_the_exact_values_within_noise() {
    // 1024 shots, as the paper runs; binomial std dev at p=0.25 is ~0.014,
    // allow 4 sigma.
    let tol = 0.06;
    for b in toffoli_suite() {
        let (d1, d2) = transform_both(&b);
        let r1 = verify::compare(&b.circuit, &b.roles, &d1);
        let r2 = verify::compare(&b.circuit, &b.roles, &d2);
        let exec = Executor::new().shots(1024).seed(0xF1607);
        let s1 = exec.run(d1.circuit()).probability(&r1.expected_outcome);
        let s2 = exec.run(d2.circuit()).probability(&r2.expected_outcome);
        assert!(
            (s1 - r1.p_dynamic).abs() < tol,
            "{}: dyn1 sampled {} vs exact {}",
            b.name,
            s1,
            r1.p_dynamic
        );
        assert!(
            (s2 - r2.p_dynamic).abs() < tol,
            "{}: dyn2 sampled {} vs exact {}",
            b.name,
            s2,
            r2.p_dynamic
        );
    }
}

#[test]
fn fig7_table_separates_the_schemes() {
    let t = fig7(512, 3);
    let csv = t.to_csv();
    let mut dyn1_worse = 0usize;
    for line in csv.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        let tvd1: f64 = cells[8].parse().unwrap();
        let tvd2: f64 = cells[9].parse().unwrap();
        if tvd1 > tvd2 + 0.1 {
            dyn1_worse += 1;
        }
    }
    assert_eq!(dyn1_worse, 9, "dynamic-1 should lose on every benchmark");
}
