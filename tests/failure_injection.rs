//! Failure injection: every rejection path of the public API, exercised
//! end to end with realistic inputs.

use dqc::{transform, DqcError, Pipeline, QubitRoles, TransformOptions};
use qcir::qasm::from_qasm;
use qcir::{Circuit, CircuitError, Clbit, Gate, Instruction, Qubit};

fn q(i: usize) -> Qubit {
    Qubit::new(i)
}

#[test]
fn transform_rejects_measurement_in_input() {
    let mut c = Circuit::new(3, 1);
    c.h(q(0)).measure(q(0), Clbit::new(0));
    let err = transform(
        &c,
        &QubitRoles::data_plus_answer(3),
        &TransformOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, DqcError::Unrealizable { .. }));
    assert!(err.to_string().contains("measurement-free"));
}

#[test]
fn transform_rejects_reset_in_input() {
    let mut c = Circuit::new(2, 0);
    c.reset(q(0));
    assert!(transform(
        &c,
        &QubitRoles::data_plus_answer(2),
        &TransformOptions::default()
    )
    .is_err());
}

#[test]
fn transform_rejects_incomplete_roles() {
    let mut c = Circuit::new(3, 0);
    c.h(q(0));
    let roles = QubitRoles::new(vec![q(0)], vec![], vec![q(2)]); // q1 missing
    let err = transform(&c, &roles, &TransformOptions::default()).unwrap_err();
    assert!(matches!(err, DqcError::InvalidRoles { .. }));
}

#[test]
fn transform_rejects_swap_between_data_qubits() {
    let mut c = Circuit::new(3, 0);
    c.swap(q(0), q(1));
    let err = transform(
        &c,
        &QubitRoles::data_plus_answer(3),
        &TransformOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, DqcError::Unrealizable { .. }));
}

#[test]
fn transform_rejects_cycles_with_qubit_list() {
    let mut c = Circuit::new(4, 0);
    c.cx(q(0), q(1)).cx(q(1), q(2)).cx(q(2), q(0));
    let err = transform(
        &c,
        &QubitRoles::data_plus_answer(4),
        &TransformOptions::default(),
    )
    .unwrap_err();
    match err {
        DqcError::CyclicDependency { qubits } => {
            assert_eq!(qubits.len(), 3);
        }
        other => panic!("expected cycle, got {other}"),
    }
}

#[test]
fn cv_between_data_qubits_with_wrong_basis_is_handled() {
    // CV(d0, d1) then H(d0): the control wire is released (the paper's
    // approximation), so this *transforms* — the accuracy story is
    // dynamic-1's. Validate that it at least stays realizable.
    let mut c = Circuit::new(3, 0);
    c.h(q(0)).h(q(1)).cv(q(0), q(1)).h(q(0)).cx(q(1), q(2));
    let d = transform(
        &c,
        &QubitRoles::data_plus_answer(3),
        &TransformOptions::default(),
    );
    assert!(d.is_ok());
    let d = d.unwrap();
    // The CV must show up as a classically conditioned V.
    assert!(d
        .circuit()
        .iter()
        .any(|i| i.is_conditioned() && i.as_gate() == Some(&Gate::V)));
}

#[test]
fn circuit_builder_rejects_bad_wires_with_error_values() {
    let mut c = Circuit::new(1, 1);
    assert!(matches!(
        c.try_push(Instruction::gate(Gate::H, vec![q(3)])),
        Err(CircuitError::QubitOutOfRange {
            qubit: 3,
            num_qubits: 1
        })
    ));
    assert!(matches!(
        c.try_push(Instruction::measure(q(0), Clbit::new(4))),
        Err(CircuitError::ClbitOutOfRange {
            clbit: 4,
            num_clbits: 1
        })
    ));
}

#[test]
fn inverse_of_dynamic_circuit_is_rejected() {
    let mut c = Circuit::new(1, 1);
    c.h(q(0)).measure(q(0), Clbit::new(0));
    assert!(matches!(c.inverse(), Err(CircuitError::NotUnitary { .. })));
}

#[test]
fn qasm_parser_rejects_malformed_documents() {
    for (text, needle) in [
        ("qubit[1] q;\nwarble q[0];\n", "unsupported gate"),
        ("qubit[1] q;\nh q[9];\n", "out of range"),
        ("qubit[1] q;\nif (c[0] = 1) { x q[0]; }\n", "=="),
        ("qubit[1] q;\nctrl(9) @ y q[0];\n", "unsupported"),
        ("qubit[x] q;\n", "bad register size"),
    ] {
        let err = from_qasm(text).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "text {text:?} gave: {err}"
        );
    }
}

#[test]
fn pipeline_propagates_role_errors() {
    let c = Circuit::new(2, 0);
    let roles = QubitRoles::new(vec![q(0), q(1)], vec![], vec![]); // no answer
    assert!(matches!(
        Pipeline::new().run(&c, &roles),
        Err(DqcError::InvalidRoles { .. })
    ));
}

#[test]
fn statevector_guards_against_misuse() {
    let result = std::panic::catch_unwind(|| {
        let mut sv = qsim::StateVector::zero_state(2);
        sv.apply_gate(&Gate::Cx, &[0]); // arity mismatch
    });
    assert!(result.is_err());
    let result = std::panic::catch_unwind(|| {
        let _ = qsim::StateVector::basis_state(2, 7); // out of range
    });
    assert!(result.is_err());
}

#[test]
fn noise_model_constructors_validate_probabilities() {
    for bad in [
        || qsim::KrausChannel::bit_flip(-0.1),
        || qsim::KrausChannel::bit_flip(1.1),
        || qsim::KrausChannel::amplitude_damping(2.0),
    ] {
        assert!(std::panic::catch_unwind(bad).is_err());
    }
}
