//! Basis-lowered execution: every benchmark's dynamic circuit still
//! produces the identical outcome distribution after translation to the
//! Clifford+T + dynamic-ops basis.

use bench::runners::transform_both;
use dqc::{transform, TransformOptions};
use qalgo::suites::{toffoli_free_suite, toffoli_suite};
use qcir::basis::{is_basis_gate, lower_to_clifford_t};
use qcir::OpKind;
use qsim::branch::exact_distribution;

#[test]
fn lowered_dynamic_circuits_keep_their_distributions() {
    for b in toffoli_suite() {
        let (d1, d2) = transform_both(&b);
        for (label, d) in [("dyn1", d1), ("dyn2", d2)] {
            let lowered = lower_to_clifford_t(d.circuit())
                .unwrap_or_else(|e| panic!("{} {label}: {e}", b.name));
            let before = exact_distribution(d.circuit());
            let after = exact_distribution(&lowered);
            assert!(
                before.tvd(&after) < 1e-9,
                "{} {label}: lowering changed the distribution by {}",
                b.name,
                before.tvd(&after)
            );
        }
    }
}

#[test]
fn lowered_circuits_contain_only_basis_operations() {
    for b in toffoli_free_suite().into_iter().take(6) {
        let d = transform(&b.circuit, &b.roles, &TransformOptions::default()).unwrap();
        let lowered = lower_to_clifford_t(d.circuit()).unwrap();
        for inst in lowered.iter() {
            match inst.kind() {
                OpKind::Gate(g) => {
                    assert!(is_basis_gate(g), "{}: non-basis gate {g} survived", b.name)
                }
                OpKind::Measure | OpKind::Reset | OpKind::Barrier => {}
            }
        }
    }
}

#[test]
fn lowering_matches_the_papers_clifford_t_counts() {
    // Lowering the raw (un-peepholed) dynamic-1 AND circuit to Clifford+T
    // and cancelling adjacent inverses lands on the paper's ballpark.
    let b = toffoli_suite().into_iter().next().unwrap(); // AND
    let d1 = dqc::transform_with_scheme(
        &b.circuit,
        &b.roles,
        dqc::DynamicScheme::Dynamic1,
        &TransformOptions::default(),
    )
    .unwrap();
    let lowered = lower_to_clifford_t(d1.circuit()).unwrap();
    let cleaned = qcir::passes::cancel_adjacent_inverses(&lowered);
    let stats = qcir::CircuitStats::of(&cleaned);
    // Paper: 28 (dynamic gate count, measures excluded).
    let ours = stats.gate_count - stats.measure_count;
    assert!(
        (24..=30).contains(&ours),
        "lowered dynamic-1 AND count {ours} far from paper's 28"
    );
}

#[test]
fn traditional_lowered_circuits_agree_with_ccx_level() {
    use qsim::circuits_equivalent;
    for b in toffoli_suite().into_iter().take(4) {
        let lowered = lower_to_clifford_t(&b.circuit).unwrap();
        assert!(
            circuits_equivalent(&b.circuit, &lowered, 1e-8).unwrap(),
            "{}",
            b.name
        );
    }
}
