//! Design-space extensions, exercised across crates: iterative QPE, Simon,
//! Grover and the one-stop pipeline.

use dqc::{transform, verify, DynamicScheme, Pipeline, QubitRoles, TransformOptions};
use qalgo::{
    grover_circuit, optimal_iterations, qpe_circuit, run_simon, simon_circuit, TruthTable,
};
use qcir::Qubit;
use qsim::branch::exact_distribution_with_final_measure;

#[test]
fn dynamic_qpe_recovers_iterative_qpe_for_many_phases() {
    for k in 0..8u32 {
        let theta = f64::from(k) / 8.0 + 0.03;
        let circ = qpe_circuit(theta, 3);
        let roles = QubitRoles::data_plus_answer(4);
        let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
        let report = verify::compare(&circ, &roles, &d);
        assert!(report.equivalent(1e-8), "theta = {theta}: {report}");
        assert_eq!(d.circuit().num_qubits(), 2);
    }
}

#[test]
fn simon_hybrid_algorithm_runs_on_the_dynamic_circuit() {
    // Transform Simon's circuit, then run the classical recovery loop on
    // the *dynamic* realization's samples.
    let secret = vec![true, false, true];
    let n = secret.len();
    let circ = simon_circuit(&secret);
    let roles = QubitRoles::new(
        (0..n).map(Qubit::new).collect(),
        Vec::new(),
        (n..2 * n).map(Qubit::new).collect(),
    );
    let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
    assert_eq!(d.circuit().num_qubits(), n + 1);

    // Collect orthogonality equations from the dynamic circuit's exact
    // distribution support.
    let dist = verify::dynamic_distribution(&d);
    let mut rows = Vec::new();
    for (key, p) in dist.iter() {
        if p > 1e-12 {
            let y = u64::from_str_radix(key, 2).unwrap();
            if y != 0 {
                rows.push(y);
            }
        }
    }
    let found = qalgo::solve_gf2_nullspace(&rows, n).expect("full rank support");
    assert_eq!(found, secret);
}

#[test]
fn full_simon_driver_finds_secrets() {
    assert_eq!(
        run_simon(&[true, true, false], 300, 9).unwrap(),
        vec![true, true, false]
    );
}

#[test]
fn grover_traditional_works_where_dynamic_fails() {
    let n = 3;
    let marked = 0b110;
    let circ = grover_circuit(marked, n, optimal_iterations(n));
    let all: Vec<Qubit> = (0..n).map(Qubit::new).collect();
    let tradi = exact_distribution_with_final_measure(&circ, &all);
    assert!(tradi.get("110") > 0.9);

    let roles = QubitRoles::data_plus_answer(n);
    let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
    // The dynamic data register cannot reproduce the amplified marginal.
    let dyn_dist = verify::dynamic_distribution(&d);
    let marked_data = "10"; // data bits (q1, q0) of 0b110, MSB first
    let tradi_data_marginal: f64 = tradi
        .iter()
        .filter(|(k, _)| k.ends_with(marked_data))
        .map(|(_, p)| p)
        .sum();
    assert!(tradi_data_marginal > 0.9);
    assert!(dyn_dist.get(marked_data) < 0.9);
}

#[test]
fn pipeline_reports_match_direct_calls() {
    let circuit = qalgo::dj_circuit(&TruthTable::or(2));
    let roles = QubitRoles::data_plus_answer(3);
    let result = Pipeline::new()
        .scheme(DynamicScheme::Dynamic2)
        .run(&circuit, &roles)
        .unwrap();
    let d = dqc::transform_with_scheme(
        &circuit,
        &roles,
        DynamicScheme::Dynamic2,
        &TransformOptions::default(),
    )
    .unwrap();
    let report = verify::compare(&circuit, &roles, &d);
    assert_eq!(result.report.tvd, report.tvd);
    assert_eq!(
        result.resources.gates,
        dqc::ResourceSummary::of_dynamic(&d).gates
    );
    assert_eq!(result.qubit_saving(), 1);
}

#[test]
fn pauli_observables_distinguish_dynamic_collapse() {
    // After the dynamic transformation, a measured-then-reset data qubit
    // carries no coherence: check with <X> on the final state of a shot.
    use qsim::PauliString;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let circuit = qalgo::dj_circuit(&TruthTable::and(2));
    let roles = QubitRoles::data_plus_answer(3);
    let d = transform(&circuit, &roles, &TransformOptions::default()).unwrap();
    let exec = qsim::Executor::new();
    let mut rng = StdRng::seed_from_u64(3);
    let (_bits, state) = exec.run_shot_with_state(d.circuit(), &mut rng);
    let x0: PauliString = "XI".parse().unwrap();
    // The data wire was just measured: no X coherence.
    assert!(x0.expectation(&state).abs() < 1e-9);
}
