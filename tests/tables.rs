//! Table regeneration sanity: the harness reproduces the paper's row sets
//! and the unambiguous cells exactly.

use bench::paper;
use bench::runners::{table1, table2};
use dqc::{transform, ResourceSummary, TransformOptions};
use qalgo::suites::{toffoli_free_suite, toffoli_suite};
use qcir::decompose::{decompose_ccx, ToffoliStyle};

#[test]
fn table1_row_set_matches_paper() {
    let t = table1();
    assert_eq!(t.len(), paper::TABLE1.len());
    let rendered = t.render();
    for row in &paper::TABLE1 {
        assert!(rendered.contains(row.name), "missing {}", row.name);
    }
}

#[test]
fn table2_row_set_matches_paper() {
    let t = table2();
    assert_eq!(t.len(), paper::TABLE2.len());
}

#[test]
fn traditional_gate_counts_match_paper_exactly() {
    // Table I: traditional circuits are unambiguous; our generator must hit
    // the published counts exactly.
    for b in toffoli_free_suite() {
        let p = paper::table1_row(&b.name).unwrap();
        assert_eq!(b.circuit.num_qubits(), p.qubits.0, "{} qubits", b.name);
        assert_eq!(b.circuit.len(), p.gates.0, "{} gates", b.name);
    }
    // Table II: after Clifford+T lowering.
    for b in toffoli_suite() {
        let p = paper::table2_row(&b.name).unwrap();
        let lowered = decompose_ccx(&b.circuit, ToffoliStyle::CliffordT);
        assert_eq!(lowered.num_qubits(), p.qubits.0, "{} qubits", b.name);
        assert_eq!(lowered.len(), p.gates.0, "{} gates", b.name);
    }
}

#[test]
fn bv_traditional_depths_match_paper_exactly() {
    for b in toffoli_free_suite() {
        if !b.name.starts_with("BV") {
            continue;
        }
        let p = paper::table1_row(&b.name).unwrap();
        assert_eq!(qcir::depth(&b.circuit), p.depth.0, "{}", b.name);
    }
}

#[test]
fn bv_dynamic_gate_counts_match_paper_convention() {
    // The paper's dynamic gate counts include resets but not measurements.
    // For the BV family our transform matches them exactly (up to the two
    // rows where the paper's own numbers are internally inconsistent with
    // their siblings: BV_1000 is listed as 9 where 8 matches the pattern).
    let mut exact = 0;
    let mut total = 0;
    for b in toffoli_free_suite() {
        if !b.name.starts_with("BV") {
            continue;
        }
        let p = paper::table1_row(&b.name).unwrap();
        let d = transform(&b.circuit, &b.roles, &TransformOptions::default()).unwrap();
        let ours = ResourceSummary::of_dynamic(&d).gates_excluding_measures();
        total += 1;
        if ours == p.gates.1 {
            exact += 1;
        }
        assert!(
            (ours as i64 - p.gates.1 as i64).abs() <= 1,
            "{}: ours {} vs paper {}",
            b.name,
            ours,
            p.gates.1
        );
    }
    assert!(exact >= total - 1, "only {exact}/{total} exact matches");
}

#[test]
fn dynamic_circuits_always_use_two_qubits() {
    for b in toffoli_free_suite() {
        let d = transform(&b.circuit, &b.roles, &TransformOptions::default()).unwrap();
        assert_eq!(d.circuit().num_qubits(), 2, "{}", b.name);
    }
}

#[test]
fn dynamic_depth_overhead_is_in_the_published_range() {
    // The paper reports roughly 2-3x depth for dynamic realizations.
    for b in toffoli_free_suite() {
        let d = transform(&b.circuit, &b.roles, &TransformOptions::default()).unwrap();
        let t_depth = qcir::depth(&b.circuit) as f64;
        let d_depth = qcir::depth(d.circuit()) as f64;
        let ratio = d_depth / t_depth;
        assert!(
            (1.0..=3.5).contains(&ratio),
            "{}: depth ratio {ratio:.2}",
            b.name
        );
    }
}

#[test]
fn csv_output_is_well_formed() {
    let csv = table2().to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 10);
    let cols = lines[0].split(',').count();
    for l in &lines {
        assert_eq!(l.split(',').count(), cols);
    }
}
