//! Differential suite for the prefix-sharing branch-tree shot engine: over
//! the paper's benchmarks and every reuse width, the prefix engine must
//! reproduce the per-shot executor bit-for-bit — same counts, same memory
//! rows, same executor counters — at the same seed and any thread count,
//! with and without tree-eligible (readout/reset) noise.

use dqc::{plan_with_scheme, CostModel, DynamicScheme, QubitRoles, ReuseMode, TransformOptions};
use qalgo::suites::{toffoli_free_suite, toffoli_suite};
use qalgo::{grover_circuit, optimal_iterations};
use qcir::Circuit;
use qsim::{Engine, Executor, NoiseModel};

/// BV, DJ, Toffoli (incl. CARRY) and Grover dynamic circuits across the
/// reuse design space: no reuse, the paper's single-lane scheme, and the
/// cost-model optimum.
fn suite_circuits() -> Vec<(String, Circuit)> {
    let mut sources: Vec<(String, Circuit, QubitRoles)> = toffoli_free_suite()
        .into_iter()
        .filter(|b| b.name == "BV_110" || b.name == "DJ_XOR")
        .chain(
            toffoli_suite()
                .into_iter()
                .filter(|b| b.name == "AND" || b.name == "CARRY"),
        )
        .map(|b| (b.name, b.circuit, b.roles))
        .collect();
    let grover = grover_circuit(0b101, 3, optimal_iterations(3));
    let roles = QubitRoles::data_plus_answer(grover.num_qubits());
    sources.push(("GROVER_3".to_string(), grover, roles));

    let mut out = Vec::new();
    for (name, circ, roles) in &sources {
        for (label, mode) in [
            ("off", ReuseMode::Off),
            ("1", ReuseMode::Width(1)),
            ("auto", ReuseMode::Auto),
        ] {
            let Ok((dynamic, _)) = plan_with_scheme(
                circ,
                roles,
                DynamicScheme::Dynamic2,
                mode,
                &CostModel::default(),
                &TransformOptions::default(),
            ) else {
                continue; // width infeasible for this benchmark
            };
            out.push((format!("{name}/reuse={label}"), dynamic.circuit().clone()));
        }
    }
    assert!(out.len() >= 12, "suite shrank to {} circuits", out.len());
    out
}

fn executor(engine: Engine, threads: usize, noise: &NoiseModel) -> Executor {
    Executor::new()
        .shots(99)
        .seed(0xD1FF)
        .threads(threads)
        .noise(noise.clone())
        .engine(engine)
}

fn assert_engines_agree(label: &str, circ: &Circuit, noise: &NoiseModel) {
    for threads in [1, 8] {
        let shots = executor(Engine::Shots, threads, noise);
        let prefix = executor(Engine::Prefix, threads, noise);
        assert_eq!(
            shots.run(circ),
            prefix.run(circ),
            "{label}: counts diverge at {threads} thread(s)"
        );
        assert_eq!(
            shots.run_memory(circ),
            prefix.run_memory(circ),
            "{label}: memory rows diverge at {threads} thread(s)"
        );
    }
}

#[test]
fn prefix_counts_match_per_shot_across_suite_and_reuse_widths() {
    let ideal = NoiseModel::ideal();
    for (label, circ) in suite_circuits() {
        assert_engines_agree(&label, &circ, &ideal);
    }
}

#[test]
fn prefix_counts_match_per_shot_under_readout_and_reset_noise() {
    let noise = NoiseModel {
        readout_flip: 0.25,
        reset_error: 0.125,
        ..NoiseModel::ideal()
    };
    for (label, circ) in suite_circuits() {
        assert_engines_agree(&label, &circ, &noise);
    }
}

#[test]
fn prefix_executor_counters_match_per_shot_on_carry() {
    let carry = toffoli_suite()
        .into_iter()
        .find(|b| b.name == "CARRY")
        .expect("CARRY is in the Table II suite");
    let (dynamic, _) = plan_with_scheme(
        &carry.circuit,
        &carry.roles,
        DynamicScheme::Dynamic2,
        ReuseMode::Width(1),
        &CostModel::default(),
        &TransformOptions::default(),
    )
    .expect("the paper's scheme transforms CARRY");
    let counters = |engine: Engine| {
        let obs = qobs::Observer::metrics_only();
        executor(engine, 4, &NoiseModel::ideal())
            .observer(obs.clone())
            .run(dynamic.circuit());
        let keys = [
            "executor.shots",
            "executor.resets",
            "executor.measurements",
            "executor.mid_circuit_measurements",
            "executor.cc_fired",
            "executor.cc_skipped",
            "executor.noise_injections",
        ];
        let m = obs.metrics();
        keys.map(|k| (k, m.counter(k)))
    };
    assert_eq!(counters(Engine::Shots), counters(Engine::Prefix));
}
