//! Routing: semantics-preserving SWAP insertion for traditional circuits,
//! and the dynamic circuits' zero-overhead property.

use dqc::{transform_with_scheme, DynamicScheme, TransformOptions};
use integration_tests::with_data_measurements;
use qalgo::suites::{toffoli_free_suite, toffoli_suite};
use qcir::decompose::{decompose_ccx, decompose_cv, ToffoliStyle};
use qcir::routing::{route, CouplingMap};
use qsim::branch::exact_distribution;

#[test]
fn routing_preserves_measured_distributions() {
    for b in toffoli_free_suite().into_iter().take(6) {
        let measured = with_data_measurements(&b.circuit, &b.roles);
        let n = measured.num_qubits();
        for map in [CouplingMap::line(n), CouplingMap::star(n)] {
            let routed = route(&measured, &map).unwrap();
            let before = exact_distribution(&measured);
            let after = exact_distribution(&routed.circuit);
            assert!(
                before.tvd(&after) < 1e-9,
                "{}: routing changed outcomes by {}",
                b.name,
                before.tvd(&after)
            );
        }
    }
}

#[test]
fn toffoli_benchmarks_route_after_lowering() {
    for b in toffoli_suite() {
        let lowered = decompose_ccx(&b.circuit, ToffoliStyle::CliffordT);
        let measured = with_data_measurements(&lowered, &b.roles);
        let map = CouplingMap::line(measured.num_qubits());
        let routed = route(&measured, &map).unwrap();
        let before = exact_distribution(&measured);
        let after = exact_distribution(&routed.circuit);
        assert!(before.tvd(&after) < 1e-9, "{}", b.name);
        if b.name == "CARRY" {
            assert!(
                routed.swaps_inserted > 0,
                "CARRY should need swaps on a line"
            );
        }
    }
}

#[test]
fn dynamic_circuits_need_no_swaps_anywhere() {
    for b in toffoli_suite().into_iter().take(4) {
        let d = transform_with_scheme(
            &b.circuit,
            &b.roles,
            DynamicScheme::Dynamic2,
            &TransformOptions::default(),
        )
        .unwrap();
        // CV gates are 2-qubit; the router takes them directly.
        let lowered = decompose_cv(d.circuit());
        for map in [
            CouplingMap::line(2),
            CouplingMap::line(6),
            CouplingMap::ring(5),
        ] {
            let routed = route(&lowered, &map).unwrap();
            assert_eq!(routed.swaps_inserted, 0, "{}", b.name);
        }
    }
}

#[test]
fn routed_dynamic_circuit_still_matches_traditional() {
    let b = toffoli_suite().into_iter().next().unwrap(); // AND
    let d = transform_with_scheme(
        &b.circuit,
        &b.roles,
        DynamicScheme::Dynamic2,
        &TransformOptions::default(),
    )
    .unwrap();
    let routed = route(d.circuit(), &CouplingMap::line(2)).unwrap();
    let dyn_dist = exact_distribution(&routed.circuit);
    let tradi = dqc::verify::traditional_distribution(&b.circuit, &b.roles);
    assert!(tradi.tvd(&dyn_dist) < 1e-9);
}
