//! The exactness analysis validated against exact measurements: whenever
//! the static verdict says Exact, the measured total-variation distance
//! must be zero — across every workload family in the workspace.

use dqc::{analysis, transform, verify, Exactness, QubitRoles, TransformOptions};
use qalgo::{bv_circuit, dj_circuit, parse_hidden, qpe_circuit, simon_circuit, TruthTable};
use qcir::decompose::{decompose_ccx, ToffoliStyle};
use qcir::Qubit;

/// Analysis + transformation + exact comparison for one instance.
fn verdict_and_tvd(circuit: &qcir::Circuit, roles: &QubitRoles) -> (bool, f64) {
    let a = analysis::analyze(circuit, roles).expect("analyzable");
    let d = transform(circuit, roles, &TransformOptions::default()).expect("transforms");
    let report = verify::compare(circuit, roles, &d);
    (a.is_exact(), report.tvd)
}

#[test]
fn exact_verdicts_imply_zero_tvd() {
    let mut cases: Vec<(String, qcir::Circuit, QubitRoles)> = Vec::new();
    for s in ["11", "101", "0110"] {
        let c = bv_circuit(&parse_hidden(s));
        let roles = QubitRoles::data_plus_answer(c.num_qubits());
        cases.push((format!("BV_{s}"), c, roles));
    }
    for (theta, n) in [(0.25, 2), (0.3, 3)] {
        let c = qpe_circuit(theta, n);
        let roles = QubitRoles::data_plus_answer(c.num_qubits());
        cases.push((format!("QPE_{theta}_{n}"), c, roles));
    }
    for s in [vec![true, true], vec![true, false, true]] {
        let n = s.len();
        let c = simon_circuit(&s);
        let roles = QubitRoles::new(
            (0..n).map(Qubit::new).collect(),
            Vec::new(),
            (n..2 * n).map(Qubit::new).collect(),
        );
        cases.push((format!("SIMON_{n}"), c, roles));
    }
    for (name, circuit, roles) in cases {
        let (exact, tvd) = verdict_and_tvd(&circuit, &roles);
        assert!(exact, "{name}: analysis should say Exact");
        assert!(tvd < 1e-9, "{name}: verdict Exact but tvd = {tvd}");
    }
}

#[test]
fn toffoli_lowerings_are_flagged_approximate() {
    for (name, tt) in [
        ("AND", TruthTable::and(2)),
        ("CARRY", TruthTable::majority3()),
    ] {
        let circ = dj_circuit(&tt);
        let roles = QubitRoles::data_plus_answer(circ.num_qubits());
        // Dynamic-1 lowering introduces CX between the Toffoli controls,
        // followed by the closing Hadamards.
        let lowered = decompose_ccx(&circ, ToffoliStyle::CvChain);
        let a = analysis::analyze(&lowered, &roles).unwrap();
        assert!(
            matches!(a.exactness, Exactness::Approximate { .. }),
            "{name}: dynamic-1 lowering should be approximate"
        );
        assert!(a.classicalized_gates > 0);
    }
}

#[test]
fn dynamic2_lowering_of_carry_is_flagged_but_single_toffoli_conflicts_differ() {
    // Dynamic-2 lowering routes everything through the ancilla; the
    // conflicts are the data-to-ancilla CXs followed by the closing H's.
    let circ = dj_circuit(&TruthTable::and(2));
    let roles = QubitRoles::data_plus_answer(3);
    let ancillas = qcir::decompose::cv_ancilla_wires(&circ);
    let lowered = decompose_ccx(&circ, ToffoliStyle::CvAncilla);
    let mut roles2 = roles;
    for a in ancillas {
        roles2 = roles2.with_extra_ancilla(a);
    }
    let a = analysis::analyze(&lowered, &roles2).unwrap();
    // Statically approximate — yet measured exactly equivalent for this
    // benchmark (product-distribution coincidence): the analysis is
    // conservative, as documented.
    assert!(matches!(a.exactness, Exactness::Approximate { .. }));
    let d = transform(&lowered, &roles2, &TransformOptions::default()).unwrap();
    let report = verify::compare(&lowered, &roles2, &d);
    assert!(report.tvd < 1e-9);
}

#[test]
fn conflicts_name_the_guilty_gates() {
    let circ = dj_circuit(&TruthTable::and(2));
    let roles = QubitRoles::data_plus_answer(3);
    let lowered = decompose_ccx(&circ, ToffoliStyle::CvChain);
    let a = analysis::analyze(&lowered, &roles).unwrap();
    if let Exactness::Approximate { conflicts } = a.exactness {
        for c in &conflicts {
            assert!(c.classicalized < c.disturbance);
            let text = c.to_string();
            assert!(text.contains("classically"));
        }
    } else {
        panic!("expected approximate verdict");
    }
}
