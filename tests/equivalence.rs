//! The paper's Section V-A claim, verified exactly: every Toffoli-free
//! benchmark's dynamic realization is functionally equivalent to its
//! traditional circuit, and the Toffoli benchmarks behave per scheme.

use dqc::{transform, transform_with_scheme, verify, DynamicScheme, TransformOptions};
use qalgo::suites::{toffoli_free_suite, toffoli_suite};

#[test]
fn every_toffoli_free_benchmark_is_exactly_equivalent() {
    for b in toffoli_free_suite() {
        let d = transform(&b.circuit, &b.roles, &TransformOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let report = verify::compare(&b.circuit, &b.roles, &d);
        assert!(
            report.equivalent(1e-9),
            "{}: tvd = {} ({report})",
            b.name,
            report.tvd
        );
        assert_eq!(d.circuit().num_qubits(), 2, "{}", b.name);
    }
}

#[test]
fn every_toffoli_benchmark_transforms_under_both_schemes() {
    let opts = TransformOptions::default();
    for b in toffoli_suite() {
        for scheme in [DynamicScheme::Dynamic1, DynamicScheme::Dynamic2] {
            let d = transform_with_scheme(&b.circuit, &b.roles, scheme, &opts)
                .unwrap_or_else(|e| panic!("{} {scheme}: {e}", b.name));
            assert_eq!(d.circuit().num_qubits(), 2, "{} {scheme}", b.name);
            assert!(d.circuit().is_dynamic(), "{} {scheme}", b.name);
        }
    }
}

#[test]
fn dynamic2_is_exact_on_all_single_toffoli_benchmarks() {
    let opts = TransformOptions::default();
    for b in toffoli_suite() {
        if b.name == "CARRY" {
            continue; // see carry_has_a_parity_obstruction below
        }
        let d2 =
            transform_with_scheme(&b.circuit, &b.roles, DynamicScheme::Dynamic2, &opts).unwrap();
        let report = verify::compare(&b.circuit, &b.roles, &d2);
        assert!(
            report.equivalent(1e-9),
            "{}: dynamic-2 tvd = {}",
            b.name,
            report.tvd
        );
    }
}

#[test]
fn dynamic1_deviates_on_every_toffoli_benchmark() {
    let opts = TransformOptions::default();
    for b in toffoli_suite() {
        let d1 =
            transform_with_scheme(&b.circuit, &b.roles, DynamicScheme::Dynamic1, &opts).unwrap();
        let report = verify::compare(&b.circuit, &b.roles, &d1);
        assert!(
            report.tvd > 0.2,
            "{}: dynamic-1 tvd only {}",
            b.name,
            report.tvd
        );
    }
}

#[test]
fn dynamic2_never_loses_to_dynamic1_on_the_benchmarks() {
    let opts = TransformOptions::default();
    for b in toffoli_suite() {
        let d1 =
            transform_with_scheme(&b.circuit, &b.roles, DynamicScheme::Dynamic1, &opts).unwrap();
        let d2 =
            transform_with_scheme(&b.circuit, &b.roles, DynamicScheme::Dynamic2, &opts).unwrap();
        let r1 = verify::compare(&b.circuit, &b.roles, &d1);
        let r2 = verify::compare(&b.circuit, &b.roles, &d2);
        assert!(
            r2.tvd <= r1.tvd + 1e-9,
            "{}: dynamic-2 tvd {} > dynamic-1 tvd {}",
            b.name,
            r2.tvd,
            r1.tvd
        );
    }
}

/// CARRY (three Toffolis over three data qubits) is the one benchmark where
/// even dynamic-2 cannot be exact: the traditional DJ output is supported
/// only on odd-parity outcomes — a three-way correlation — while a dynamic
/// realization with no data-data interaction produces a product
/// distribution, which cannot express that parity constraint. The deviation
/// is therefore structural, not a bug; we pin its exact value.
#[test]
fn carry_has_a_parity_obstruction() {
    let opts = TransformOptions::default();
    let carry = toffoli_suite()
        .into_iter()
        .find(|b| b.name == "CARRY")
        .unwrap();
    let d2 = transform_with_scheme(&carry.circuit, &carry.roles, DynamicScheme::Dynamic2, &opts)
        .unwrap();
    let report = verify::compare(&carry.circuit, &carry.roles, &d2);
    // Traditional: uniform over {001, 010, 100, 111}. Dynamic-2: the three
    // local double-quarter-phases make each data qubit deterministic |1>,
    // i.e. the point distribution on 111. TVD = 1 - 1/4 = 3/4.
    assert!((report.tvd - 0.75).abs() < 1e-9, "tvd = {}", report.tvd);
    assert!((report.dynamic.get("111") - 1.0).abs() < 1e-9);
    // Still strictly better than dynamic-1, which misses the support
    // entirely.
    let d1 = transform_with_scheme(&carry.circuit, &carry.roles, DynamicScheme::Dynamic1, &opts)
        .unwrap();
    let r1 = verify::compare(&carry.circuit, &carry.roles, &d1);
    assert!(r1.tvd > report.tvd);
}

#[test]
fn transformed_circuits_have_one_result_bit_per_data_qubit() {
    for b in toffoli_free_suite() {
        let d = transform(&b.circuit, &b.roles, &TransformOptions::default()).unwrap();
        assert_eq!(d.result_bits().len(), b.roles.data().len(), "{}", b.name);
        assert_eq!(
            d.iterations().iter().filter(|i| i.measured).count(),
            b.roles.data().len(),
            "{}",
            b.name
        );
    }
}
