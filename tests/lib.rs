//! Shared helpers for the cross-crate integration tests.

use dqc::QubitRoles;
use qcir::{Circuit, Clbit};

/// Appends measurements of the role partition's data qubits into classical
/// bits ordered by data index — the layout the dynamic transformation uses.
#[must_use]
pub fn with_data_measurements(circuit: &Circuit, roles: &QubitRoles) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits(), roles.data().len());
    out.extend(circuit);
    for (i, &d) in roles.data().iter().enumerate() {
        out.measure(d, Clbit::new(i));
    }
    out
}
