//! Cross-backend consistency: the shot-based executor, the pure-state
//! branch enumerator and the density-matrix backend must agree on every
//! benchmark's dynamic circuit.

use bench::runners::transform_both;
use integration_tests::with_data_measurements;
use qalgo::suites::{toffoli_free_suite, toffoli_suite};
use qsim::branch::exact_distribution;
use qsim::density::exact_distribution_noisy;
use qsim::{Executor, NoiseModel};

#[test]
fn branch_and_density_backends_agree_on_dynamic_circuits() {
    for b in toffoli_suite() {
        let (d1, d2) = transform_both(&b);
        for (label, d) in [("dyn1", &d1), ("dyn2", &d2)] {
            let pure = exact_distribution(d.circuit());
            let mixed = exact_distribution_noisy(d.circuit(), &NoiseModel::ideal());
            assert!(
                pure.tvd(&mixed) < 1e-9,
                "{} {label}: backends disagree by {}",
                b.name,
                pure.tvd(&mixed)
            );
        }
    }
}

#[test]
fn branch_and_density_backends_agree_on_traditional_circuits() {
    for b in toffoli_free_suite().into_iter().take(8) {
        let measured = with_data_measurements(&b.circuit, &b.roles);
        let pure = exact_distribution(&measured);
        let mixed = exact_distribution_noisy(&measured, &NoiseModel::ideal());
        assert!(pure.tvd(&mixed) < 1e-9, "{}", b.name);
    }
}

#[test]
fn executor_converges_to_branch_enumeration() {
    for b in toffoli_suite().into_iter().take(3) {
        let (_, d2) = transform_both(&b);
        let exact = exact_distribution(d2.circuit());
        let sampled = Executor::new()
            .shots(20_000)
            .seed(11)
            .run(d2.circuit())
            .to_distribution();
        let tvd = exact.tvd(&sampled);
        assert!(tvd < 0.02, "{}: tvd {tvd}", b.name);
    }
}

#[test]
fn noisy_trajectories_converge_to_noisy_density() {
    let b = toffoli_suite().into_iter().next().unwrap();
    let (_, d2) = transform_both(&b);
    let noise = NoiseModel::device_like(1.0);
    let exact = exact_distribution_noisy(d2.circuit(), &noise);
    let sampled = Executor::new()
        .shots(20_000)
        .seed(12)
        .noise(noise)
        .run(d2.circuit())
        .to_distribution();
    let tvd = exact.tvd(&sampled);
    assert!(tvd < 0.02, "tvd {tvd}");
}

#[test]
fn deterministic_seeds_are_reproducible_across_runs() {
    let b = toffoli_suite().into_iter().next().unwrap();
    let (d1, _) = transform_both(&b);
    let a = Executor::new().shots(1000).seed(5).run(d1.circuit());
    let c = Executor::new().shots(1000).seed(5).run(d1.circuit());
    assert_eq!(a, c);
}
