//! The content-hash transform cache.
//!
//! Transforming and equivalence-checking a circuit dominates small jobs,
//! and a batch service sees the same BV/DJ/Grover templates over and over.
//! The cache keys on everything that determines the transform — the
//! circuit's canonical [`qcir::Circuit::content_hash`], the role
//! partition, and the scheme — and stores the verified pipeline output, so
//! a repeated template skips straight to simulation. Because the cached
//! transform was equivalence-checked when it was filled, cache hits return
//! results exactly as trustworthy as cold runs.
//!
//! Bounded FIFO eviction: the cache never exceeds its capacity, and under
//! template-heavy traffic (the intended workload) the hot entries are
//! re-filled at worst once per eviction cycle.

use dqc::DynamicScheme;
use qcir::Circuit;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// A verified transform, ready to re-simulate.
#[derive(Debug)]
pub struct CachedTransform {
    /// The hardened dynamic circuit.
    pub circuit: Circuit,
    /// Total variation distance recorded by the equivalence check.
    pub tvd: f64,
}

/// The cache key: circuit content + role partition + scheme, folded into
/// one 64-bit digest with the same FNV construction the circuit hash uses.
#[must_use]
pub fn cache_key(
    circuit: &Circuit,
    answer: &[usize],
    data: &[usize],
    ancilla: &[usize],
    scheme: DynamicScheme,
) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = circuit.content_hash();
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    };
    for (tag, list) in [(1u64, answer), (2, data), (3, ancilla)] {
        mix(tag);
        mix(list.len() as u64);
        for &i in list {
            mix(i as u64);
        }
    }
    mix(match scheme {
        DynamicScheme::Direct => 0x10,
        DynamicScheme::Dynamic1 => 0x11,
        DynamicScheme::Dynamic2 => 0x12,
    });
    h
}

/// A bounded, thread-safe transform cache with hit/miss accounting left to
/// the caller (the server owns the metrics registry).
#[derive(Debug)]
pub struct TransformCache {
    capacity: usize,
    inner: Mutex<CacheState>,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<u64, Arc<CachedTransform>>,
    order: VecDeque<u64>,
}

impl TransformCache {
    /// An empty cache holding at most `capacity` transforms (0 disables
    /// caching entirely — every lookup misses).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(CacheState::default()),
        }
    }

    /// Looks up a transform by key.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<Arc<CachedTransform>> {
        match self.inner.lock() {
            Ok(state) => state.entries.get(&key).cloned(),
            Err(_) => None, // a poisoned cache serves misses, never panics
        }
    }

    /// Inserts a transform, evicting the oldest entry when full.
    pub fn insert(&self, key: u64, value: Arc<CachedTransform>) {
        if self.capacity == 0 {
            return;
        }
        let Ok(mut state) = self.inner.lock() else {
            return;
        };
        if state.entries.insert(key, value).is_none() {
            state.order.push_back(key);
            while state.order.len() > self.capacity {
                if let Some(evicted) = state.order.pop_front() {
                    state.entries.remove(&evicted);
                }
            }
        }
    }

    /// How many transforms are currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().map_or(0, |s| s.entries.len())
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Qubit;

    fn probe(n: usize) -> Circuit {
        let mut c = Circuit::new(n.max(1), 0);
        for i in 0..n.max(1) {
            c.h(Qubit::new(i));
        }
        c
    }

    fn entry() -> Arc<CachedTransform> {
        Arc::new(CachedTransform {
            circuit: probe(1),
            tvd: 0.0,
        })
    }

    #[test]
    fn keys_separate_roles_and_schemes() {
        let c = probe(3);
        let base = cache_key(&c, &[2], &[0, 1], &[], DynamicScheme::Dynamic2);
        assert_eq!(
            base,
            cache_key(&c, &[2], &[0, 1], &[], DynamicScheme::Dynamic2)
        );
        assert_ne!(
            base,
            cache_key(&c, &[1], &[0, 2], &[], DynamicScheme::Dynamic2)
        );
        assert_ne!(
            base,
            cache_key(&c, &[2], &[0, 1], &[], DynamicScheme::Dynamic1)
        );
        assert_ne!(
            base,
            cache_key(&probe(4), &[2], &[0, 1], &[], DynamicScheme::Dynamic2)
        );
        // Role boundary ambiguity: answer=[1], data=[2] must differ from
        // answer=[1,2], data=[] (length prefixes in the fold).
        assert_ne!(
            cache_key(&c, &[1], &[2], &[], DynamicScheme::Direct),
            cache_key(&c, &[1, 2], &[], &[], DynamicScheme::Direct)
        );
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = TransformCache::new(2);
        cache.insert(1, entry());
        cache.insert(2, entry());
        cache.insert(1, entry()); // re-insert must not double-count
        assert_eq!(cache.len(), 2);
        cache.insert(3, entry());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_none(), "oldest key evicted");
        assert!(cache.get(2).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = TransformCache::new(0);
        cache.insert(1, entry());
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
    }
}
