//! The crash-only write-ahead journal behind `dqctd --journal`.
//!
//! # Why a journal
//!
//! PR 9's service contract — *an accepted job always gets exactly one
//! response* — only survives process death if admission is durable. The
//! journal records every admitted job before it is queued and every
//! completion after it is answered; on restart, [`Journal::open`] replays
//! the log and hands the server (a) the admitted-but-never-completed jobs
//! to re-run and (b) a completion index serving duplicate submissions
//! byte-identically without re-running. Because the executor's
//! counter-based RNG makes every shot a pure function of
//! `(seed, shot, circuit)`, the replayed runs themselves are
//! *bit-identical* to what the dead process would have produced — recovery
//! is exact, not best-effort.
//!
//! # Record layout
//!
//! The journal reuses the wire protocol's length-prefix discipline, plus a
//! per-record checksum so a torn or bit-rotted tail is detected rather
//! than replayed:
//!
//! ```text
//! +----------------+-------------------+-------------------+
//! | length: u32 BE | body (len bytes)  | crc32(body): u32 BE |
//! +----------------+-------------------+-------------------+
//! ```
//!
//! The body is one kind byte followed by the payload:
//!
//! * kind `1` (**admitted**) — the *resolved* submission, rendered with
//!   [`crate::protocol::render_submit`]: the server fills every default
//!   (shots, seed, scheme, deadline) before journaling, so replay needs no
//!   knowledge of the admitting process's configuration;
//! * kind `2` (**completed**) — `id_len: u32 BE | id | response bytes`,
//!   where the response bytes are the exact rendered frame payload the
//!   client was (or would have been) sent. Serving a duplicate submission
//!   from this record is byte-identical by construction.
//!
//! # Torn tails
//!
//! Appends are atomic only down to the filesystem's promises, which are
//! none: a crash can leave half a record. [`Journal::open`] scans from the
//! start and truncates the file at the first record that is incomplete,
//! fails its CRC, or does not decode — everything before it is intact
//! (each record was validated), everything after it is unreachable
//! garbage. Truncation repositions the append cursor so the next record
//! lands on a clean boundary.
//!
//! # Durability policy
//!
//! [`FsyncPolicy`] trades write latency for crash-window size: `always`
//! fsyncs every append (no admitted job is ever lost), `batch` fsyncs
//! every [`BATCH_SYNC_RECORDS`] appends (bounded loss window, an order of
//! magnitude cheaper under load), `off` leaves flushing to the OS (test
//! and bulk-replay use). Loss here means *the journal forgets the job*,
//! never that it invents one: an unsynced torn tail is truncated away.

use crate::protocol::{parse_request, render_submit, JobSpec, Request};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Record kind byte: an admitted job (resolved submission).
const KIND_ADMITTED: u8 = 1;
/// Record kind byte: a completion (id + rendered response).
const KIND_COMPLETED: u8 = 2;

/// `batch` fsync cadence: at most this many appends ride between two
/// `fsync` calls.
pub const BATCH_SYNC_RECORDS: u32 = 16;

/// Hard cap on one journal record's body (matches the wire protocol's
/// frame cap plus completion framing headroom): anything larger mid-file
/// is treated as corruption, so a flipped length byte cannot demand a
/// multi-gigabyte allocation.
const MAX_RECORD_BYTES: u32 = (1 << 20) + 4096;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3` flavour) of
/// `data` — the per-record integrity check. Zero dependencies: a 256-entry
/// table built at compile time.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// When appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every record: an admitted job is durable before its
    /// client could observe the admission.
    Always,
    /// `fsync` every [`BATCH_SYNC_RECORDS`] records: a crash can forget at
    /// most one batch of admissions (it can never fabricate one). The
    /// default.
    #[default]
    Batch,
    /// Never `fsync`; the OS flushes when it pleases. For tests and
    /// throwaway instances.
    Off,
}

impl FsyncPolicy {
    /// Parses the CLI spelling (`always` / `batch` / `off`).
    #[must_use]
    pub fn parse(name: &str) -> Option<FsyncPolicy> {
        match name {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            "off" => Some(FsyncPolicy::Off),
            _ => None,
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Batch => write!(f, "batch"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// One journal record, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job passed admission: the fully resolved submission.
    Admitted(JobSpec),
    /// A job was answered: the exact response bytes it was answered with.
    Completed {
        /// The client job id.
        id: String,
        /// The rendered response frame payload, verbatim.
        response: Vec<u8>,
    },
}

/// Encodes one record into its on-disk framing
/// (`len | body | crc32(body)`).
#[must_use]
pub fn encode_record(record: &Record) -> Vec<u8> {
    let mut body = Vec::new();
    match record {
        Record::Admitted(spec) => {
            body.push(KIND_ADMITTED);
            body.extend_from_slice(&render_submit(spec));
        }
        Record::Completed { id, response } => {
            body.push(KIND_COMPLETED);
            body.extend_from_slice(&(id.len() as u32).to_be_bytes());
            body.extend_from_slice(id.as_bytes());
            body.extend_from_slice(response);
        }
    }
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    let crc = crc32(&body);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// What [`decode_record`] found at the scan position.
#[derive(Debug)]
pub enum Decoded {
    /// A full, CRC-valid record occupying `consumed` bytes.
    Record {
        /// The decoded record.
        record: Record,
        /// Total framing bytes consumed (length prefix + body + CRC).
        consumed: usize,
    },
    /// The buffer ends inside this record (a torn tail) or the record
    /// fails validation (CRC mismatch, oversized length, unknown kind,
    /// undecodable payload). Either way the log is valid only up to the
    /// scan position.
    Corrupt,
}

/// Decodes the record starting at `buf[0]`. Corruption and truncation are
/// deliberately indistinguishable here: both end the valid prefix.
#[must_use]
pub fn decode_record(buf: &[u8]) -> Decoded {
    if buf.len() < 4 {
        return Decoded::Corrupt;
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len == 0 || len > MAX_RECORD_BYTES {
        return Decoded::Corrupt;
    }
    let body_end = 4 + len as usize;
    let Some(stored) = buf.get(body_end..body_end + 4) else {
        return Decoded::Corrupt;
    };
    let body = &buf[4..body_end];
    let crc = u32::from_be_bytes([stored[0], stored[1], stored[2], stored[3]]);
    if crc32(body) != crc {
        return Decoded::Corrupt;
    }
    let record = match body[0] {
        KIND_ADMITTED => match parse_request(&body[1..]) {
            Ok(Request::Submit(spec)) => Record::Admitted(*spec),
            _ => return Decoded::Corrupt,
        },
        KIND_COMPLETED => {
            let payload = &body[1..];
            if payload.len() < 4 {
                return Decoded::Corrupt;
            }
            let id_len =
                u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
            let Some(id_bytes) = payload.get(4..4 + id_len) else {
                return Decoded::Corrupt;
            };
            let Ok(id) = std::str::from_utf8(id_bytes) else {
                return Decoded::Corrupt;
            };
            Record::Completed {
                id: id.to_string(),
                response: payload[4 + id_len..].to_vec(),
            }
        }
        _ => return Decoded::Corrupt,
    };
    Decoded::Record {
        record,
        consumed: body_end + 4,
    }
}

/// What [`Journal::open`] reconstructed from an existing log.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Admitted jobs with no completion record, in admission order — the
    /// work the dead process still owed a response for.
    pub incomplete: Vec<JobSpec>,
    /// Completion index: client job id → the exact response bytes it was
    /// answered with. Duplicate submissions are served from here verbatim.
    pub completed: HashMap<String, Vec<u8>>,
    /// Valid records scanned.
    pub records: u64,
    /// Bytes cut off the tail (0 on a clean log).
    pub truncated_bytes: u64,
}

struct Inner {
    file: File,
    policy: FsyncPolicy,
    unsynced: u32,
    records_written: u64,
}

/// An open append-only journal. Appends are serialized behind one mutex —
/// the records are small next to the simulations they describe, and a
/// single writer keeps the "valid prefix" invariant trivial.
pub struct Journal {
    path: PathBuf,
    inner: Mutex<Inner>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal").field("path", &self.path).finish()
    }
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, recovers its
    /// valid prefix, truncates any torn tail, and leaves the append cursor
    /// at the end of the valid data.
    ///
    /// # Errors
    ///
    /// Only on real I/O failures (open, read, truncate, seek). Corruption
    /// is not an error: the valid prefix wins and the damage is reported
    /// in [`Recovery::truncated_bytes`].
    pub fn open(path: &Path, policy: FsyncPolicy) -> io::Result<(Journal, Recovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;

        let mut recovery = Recovery::default();
        let mut admitted: Vec<JobSpec> = Vec::new();
        let mut offset = 0usize;
        while offset < buf.len() {
            match decode_record(&buf[offset..]) {
                Decoded::Record { record, consumed } => {
                    recovery.records += 1;
                    offset += consumed;
                    match record {
                        Record::Admitted(spec) => admitted.push(spec),
                        Record::Completed { id, response } => {
                            recovery.completed.insert(id, response);
                        }
                    }
                }
                Decoded::Corrupt => {
                    recovery.truncated_bytes = (buf.len() - offset) as u64;
                    file.set_len(offset as u64)?;
                    break;
                }
            }
        }
        file.seek(SeekFrom::Start(offset as u64))?;
        recovery.incomplete = admitted
            .into_iter()
            .filter(|spec| !recovery.completed.contains_key(&spec.id))
            .collect();
        Ok((
            Journal {
                path: path.to_path_buf(),
                inner: Mutex::new(Inner {
                    file,
                    policy,
                    unsynced: 0,
                    records_written: 0,
                }),
            },
            recovery,
        ))
    }

    /// Appends an admission record. Call *before* enqueueing the job: once
    /// this returns under [`FsyncPolicy::Always`], the job survives any
    /// crash.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures; the caller should reject the job
    /// rather than accept work it cannot make durable.
    pub fn append_admitted(&self, spec: &JobSpec) -> io::Result<()> {
        self.append(&encode_record(&Record::Admitted(spec.clone())))
    }

    /// Appends a completion record carrying the exact `response` bytes the
    /// job was answered with.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures. The response has already been
    /// sent; a failed completion append means a future restart re-runs the
    /// job (idempotent by determinism), never that a response is lost.
    pub fn append_completed(&self, id: &str, response: &[u8]) -> io::Result<()> {
        self.append(&encode_record(&Record::Completed {
            id: id.to_string(),
            response: response.to_vec(),
        }))
    }

    fn append(&self, framed: &[u8]) -> io::Result<()> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.file.write_all(framed)?;
        inner.records_written += 1;
        match inner.policy {
            FsyncPolicy::Always => inner.file.sync_data()?,
            FsyncPolicy::Batch => {
                inner.unsynced += 1;
                if inner.unsynced >= BATCH_SYNC_RECORDS {
                    inner.file.sync_data()?;
                    inner.unsynced = 0;
                }
            }
            FsyncPolicy::Off => {}
        }
        Ok(())
    }

    /// Forces any batched appends to disk — the drain path calls this so a
    /// clean shutdown never rides on the batch window.
    ///
    /// # Errors
    ///
    /// Propagates the fsync failure.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.unsynced = 0;
        inner.file.sync_data()
    }

    /// Records appended through this handle (excludes recovered ones).
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .records_written
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "dqctd-journal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            id: id.to_string(),
            shots: Some(64),
            seed: Some(7),
            answer: vec![2],
            data: vec![0, 1],
            ancilla: Vec::new(),
            scheme: Some("dynamic2".into()),
            deadline_ms: Some(5000),
            qasm: "OPENQASM 3.0;\nqubit[3] q;\nbit[1] c;\nccx q[0], q[1], q[2];\nc[0] = measure q[2];\n".into(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_policy_spellings_round_trip() {
        for policy in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Off] {
            assert_eq!(FsyncPolicy::parse(&policy.to_string()), Some(policy));
        }
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn records_encode_and_decode_exactly() {
        let admitted = Record::Admitted(spec("job-1"));
        let completed = Record::Completed {
            id: "job-1".into(),
            response: br#"{"type":"result","id":"job-1"}"#.to_vec(),
        };
        for record in [admitted, completed] {
            let framed = encode_record(&record);
            match decode_record(&framed) {
                Decoded::Record {
                    record: decoded,
                    consumed,
                } => {
                    assert_eq!(decoded, record);
                    assert_eq!(consumed, framed.len());
                }
                Decoded::Corrupt => panic!("fresh record decoded as corrupt"),
            }
        }
    }

    #[test]
    fn a_flipped_bit_fails_the_crc() {
        let framed = encode_record(&Record::Completed {
            id: "j".into(),
            response: b"payload".to_vec(),
        });
        for i in 4..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(decode_record(&bad), Decoded::Corrupt),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn open_recovers_incomplete_jobs_and_completions() {
        let path = temp_path("recover");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, recovery) =
                Journal::open(&path, FsyncPolicy::Always).expect("fresh open");
            assert!(recovery.incomplete.is_empty());
            assert_eq!(recovery.records, 0);
            journal.append_admitted(&spec("done")).expect("admit done");
            journal.append_admitted(&spec("lost")).expect("admit lost");
            journal
                .append_completed("done", b"{\"type\":\"result\"}")
                .expect("complete done");
            assert_eq!(journal.records_written(), 3);
        }
        let (_journal, recovery) = Journal::open(&path, FsyncPolicy::Off).expect("reopen");
        assert_eq!(recovery.records, 3);
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.incomplete, vec![spec("lost")]);
        assert_eq!(
            recovery.completed.get("done").map(Vec::as_slice),
            Some(&b"{\"type\":\"result\"}"[..])
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume_cleanly() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, _) = Journal::open(&path, FsyncPolicy::Off).expect("open");
            journal.append_admitted(&spec("a")).expect("admit a");
            journal.append_admitted(&spec("b")).expect("admit b");
        }
        let full = std::fs::read(&path).expect("read back");
        let first_len = {
            let len = u32::from_be_bytes([full[0], full[1], full[2], full[3]]) as usize;
            4 + len + 4
        };
        // Tear the second record in half.
        let torn_at = first_len + (full.len() - first_len) / 2;
        std::fs::write(&path, &full[..torn_at]).expect("tear");
        let (journal, recovery) = Journal::open(&path, FsyncPolicy::Off).expect("reopen torn");
        assert_eq!(recovery.incomplete, vec![spec("a")]);
        assert_eq!(recovery.truncated_bytes, (torn_at - first_len) as u64);
        // The file was truncated to the valid prefix...
        assert_eq!(
            std::fs::metadata(&path).expect("stat").len(),
            first_len as u64
        );
        // ...and a post-recovery append lands on the clean boundary.
        journal.append_admitted(&spec("c")).expect("append after");
        drop(journal);
        let (_j, recovery) = Journal::open(&path, FsyncPolicy::Off).expect("final open");
        assert_eq!(recovery.incomplete, vec![spec("a"), spec("c")]);
        assert_eq!(recovery.truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_length_prefix_is_corruption_not_allocation() {
        let path = temp_path("oversize");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, u32::MAX.to_be_bytes()).expect("write bogus prefix");
        let (_j, recovery) = Journal::open(&path, FsyncPolicy::Off).expect("open");
        assert_eq!(recovery.records, 0);
        assert_eq!(recovery.truncated_bytes, 4);
        assert_eq!(std::fs::metadata(&path).expect("stat").len(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
