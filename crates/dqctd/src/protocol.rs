//! The `dqctd` wire protocol: length-prefixed frames, text requests, JSON
//! responses.
//!
//! # Frame layout
//!
//! Every message — in either direction — is one frame:
//!
//! ```text
//! +----------------+---------------------+
//! | length: u32 BE | payload (len bytes) |
//! +----------------+---------------------+
//! ```
//!
//! The length covers the payload only. A reader enforces a maximum payload
//! size *before* allocating: an oversized prefix is rejected without
//! reading the body, so a hostile 4 GiB announcement costs four bytes. EOF
//! on the length prefix boundary is a clean close; EOF anywhere else is a
//! truncated frame.
//!
//! # Requests (client → server, UTF-8 text)
//!
//! The first line is the verb:
//!
//! * `submit` — header lines (`key value`, one per line) up to the first
//!   blank line, then the OpenQASM 3 circuit. Keys: `id` (required),
//!   `shots`, `seed`, `answer`, `data`, `ancilla` (comma-separated qubit
//!   indices), `scheme` (`direct` / `dynamic1` / `dynamic2`),
//!   `deadline-ms`.
//! * `cancel <id>` — cancel a queued or running job.
//! * `metrics` — fetch the service metrics registry.
//! * `ping` — liveness probe.
//! * `drain` — begin graceful drain (same semantics as SIGTERM).
//!
//! # Responses (server → client, JSON)
//!
//! One JSON object per frame, discriminated by `"type"`: `result`,
//! `rejected` (reason `queue-full` / `too-large` / `invalid` / `draining`,
//! with a `retry_after_ms` backoff hint where retrying can help), `error`,
//! `metrics`, `pong`, `draining`. Responses to `submit` arrive when the
//! job finishes, not when it is accepted; a connection may therefore have
//! many submits in flight and receives results in completion order, keyed
//! by `id`.

use qobs::json::JsonWriter;
use std::io::{self, Read, Write};

/// Default cap on one frame's payload (1 MiB) — far above any reasonable
/// QASM job, far below a memory-exhaustion vector.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The announced payload length exceeds the reader's cap. The body was
    /// not read; the connection should answer and close.
    TooLarge {
        /// The announced length.
        len: u32,
        /// The reader's cap.
        max: u32,
    },
    /// The peer closed mid-frame (inside the prefix or the payload).
    Truncated,
    /// The underlying transport failed.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

/// Reads one frame. `Ok(None)` is a clean close (EOF exactly on a frame
/// boundary); any other premature EOF is [`FrameError::Truncated`].
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the announced length exceeds `max` (the
/// body is left unread), [`FrameError::Truncated`] on mid-frame EOF,
/// [`FrameError::Io`] on transport failure.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    match r.read_exact(&mut payload) {
        Ok(()) => Ok(Some(payload)),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Truncated),
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// Propagates transport errors; the caller decides whether a failed write
/// is fatal (it usually means the client disconnected).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// A parsed job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen job identifier, echoed on every response.
    pub id: String,
    /// Shots to run (`None` = the server's default).
    pub shots: Option<u64>,
    /// Base RNG seed (`None` = the server's default).
    pub seed: Option<u64>,
    /// Answer qubit indices.
    pub answer: Vec<usize>,
    /// Data qubit indices (unlisted qubits default to data).
    pub data: Vec<usize>,
    /// Ancilla qubit indices.
    pub ancilla: Vec<usize>,
    /// Toffoli realization scheme (`None` = the server's default,
    /// dynamic-2).
    pub scheme: Option<String>,
    /// Per-job deadline in milliseconds (`None` = the server's default).
    pub deadline_ms: Option<u64>,
    /// The OpenQASM 3 source of the traditional circuit.
    pub qasm: String,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job.
    Submit(Box<JobSpec>),
    /// Cancel a queued or running job by id.
    Cancel(String),
    /// Fetch the service metrics registry as JSON.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Begin graceful drain.
    Drain,
}

fn parse_index_list(value: &str, key: &str) -> Result<Vec<usize>, String> {
    value
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .map_err(|_| format!("{key}: '{t}' is not a qubit index"))
        })
        .collect()
}

/// Parses a request payload.
///
/// # Errors
///
/// Returns a one-line human-readable message on non-UTF-8 payloads,
/// unknown verbs, missing/duplicate/unknown submit headers, and malformed
/// header values. QASM is *not* parsed here — circuit-level validation is
/// an admission decision and yields a typed `rejected` response instead.
pub fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_string())?;
    let (verb_line, rest) = match text.split_once('\n') {
        Some((v, r)) => (v.trim_end_matches('\r'), r),
        None => (text.trim_end_matches('\r'), ""),
    };
    match verb_line {
        "submit" => parse_submit(rest).map(|spec| Request::Submit(Box::new(spec))),
        "metrics" => Ok(Request::Metrics),
        "ping" => Ok(Request::Ping),
        "drain" => Ok(Request::Drain),
        other => match other.strip_prefix("cancel ") {
            Some(id) if !id.trim().is_empty() => Ok(Request::Cancel(id.trim().to_string())),
            Some(_) => Err("cancel needs a job id".to_string()),
            None => Err(format!("unknown verb '{other}'")),
        },
    }
}

fn parse_submit(rest: &str) -> Result<JobSpec, String> {
    let mut spec = JobSpec {
        id: String::new(),
        shots: None,
        seed: None,
        answer: Vec::new(),
        data: Vec::new(),
        ancilla: Vec::new(),
        scheme: None,
        deadline_ms: None,
        qasm: String::new(),
    };
    let mut lines = rest.split('\n');
    for line in lines.by_ref() {
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            break;
        }
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("malformed header line '{line}' (expected 'key value')"))?;
        let value = value.trim();
        match key {
            "id" => spec.id = value.to_string(),
            "shots" => {
                spec.shots = Some(
                    value
                        .parse()
                        .map_err(|_| format!("shots: '{value}' is not a shot count"))?,
                )
            }
            "seed" => {
                spec.seed = Some(
                    value
                        .parse()
                        .map_err(|_| format!("seed: '{value}' is not a seed"))?,
                )
            }
            "answer" => spec.answer = parse_index_list(value, "answer")?,
            "data" => spec.data = parse_index_list(value, "data")?,
            "ancilla" => spec.ancilla = parse_index_list(value, "ancilla")?,
            "scheme" => spec.scheme = Some(value.to_string()),
            "deadline-ms" => {
                spec.deadline_ms = Some(
                    value
                        .parse()
                        .map_err(|_| format!("deadline-ms: '{value}' is not a duration"))?,
                )
            }
            other => return Err(format!("unknown submit header '{other}'")),
        }
    }
    if spec.id.is_empty() {
        return Err("submit needs an 'id' header".to_string());
    }
    // Everything after the blank line is the circuit, verbatim.
    spec.qasm = lines.collect::<Vec<_>>().join("\n");
    if spec.qasm.trim().is_empty() {
        return Err("submit carries no QASM body".to_string());
    }
    Ok(spec)
}

/// Renders a submit request frame payload (the client half of `submit`).
#[must_use]
pub fn render_submit(spec: &JobSpec) -> Vec<u8> {
    let mut out = String::from("submit\n");
    out.push_str(&format!("id {}\n", spec.id));
    if let Some(shots) = spec.shots {
        out.push_str(&format!("shots {shots}\n"));
    }
    if let Some(seed) = spec.seed {
        out.push_str(&format!("seed {seed}\n"));
    }
    for (key, list) in [
        ("answer", &spec.answer),
        ("data", &spec.data),
        ("ancilla", &spec.ancilla),
    ] {
        if !list.is_empty() {
            let rendered: Vec<String> = list.iter().map(usize::to_string).collect();
            out.push_str(&format!("{key} {}\n", rendered.join(",")));
        }
    }
    if let Some(scheme) = &spec.scheme {
        out.push_str(&format!("scheme {scheme}\n"));
    }
    if let Some(ms) = spec.deadline_ms {
        out.push_str(&format!("deadline-ms {ms}\n"));
    }
    out.push('\n');
    out.push_str(&spec.qasm);
    out.into_bytes()
}

/// Why a submission was turned away at the door.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The bounded queue is full; retry after the hinted backoff.
    QueueFull {
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// The job exceeds a hard size limit (frame bytes, qubits or shots);
    /// retrying the same job cannot help.
    TooLarge {
        /// Which limit, and by how much.
        detail: String,
    },
    /// The job is malformed (bad QASM, bad roles); retrying cannot help.
    Invalid {
        /// The validation failure.
        detail: String,
    },
    /// The server is draining and accepts no new work; retry against a
    /// replacement instance after the hinted backoff.
    Draining {
        /// Suggested client backoff before retrying elsewhere.
        retry_after_ms: u64,
    },
}

/// One finished job's accounting, rendered into a `result` response.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job id.
    pub id: String,
    /// The run's [`qsim::Termination`], rendered (`completed`, `deadline`,
    /// `failed-shot-budget`, `aborted`, `cancelled`).
    pub termination: String,
    /// Shots requested.
    pub requested: u64,
    /// Shots completed and recorded.
    pub completed: u64,
    /// Shots that panicked and were isolated.
    pub failed: u64,
    /// Shots dropped by the drift guard.
    pub discarded: u64,
    /// Measured counts, in bitstring order.
    pub counts: Vec<(String, u64)>,
    /// Whether the transform came from the content-hash cache.
    pub cache_hit: bool,
    /// Time spent queued before a worker picked the job up.
    pub queue_ms: f64,
    /// Time spent transforming + simulating.
    pub run_ms: f64,
    /// Total variation distance from the verified transform.
    pub tvd: f64,
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// Acknowledges a `drain` request.
    Draining,
    /// The metrics registry (pre-rendered JSON object).
    Metrics(String),
    /// A submission was rejected at admission.
    Rejected {
        /// The job id the rejection answers.
        id: String,
        /// Why.
        reason: RejectReason,
    },
    /// A request failed outside admission (malformed request frame, or a
    /// job that failed in the pipeline).
    Error {
        /// The job id, when the error is job-scoped.
        id: Option<String>,
        /// What went wrong.
        detail: String,
    },
    /// A finished job.
    Result(Box<JobOutcome>),
}

impl Response {
    /// Renders the response as its JSON frame payload.
    #[must_use]
    pub fn render(&self) -> Vec<u8> {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("type");
        match self {
            Response::Pong => w.string("pong"),
            Response::Draining => w.string("draining"),
            Response::Metrics(registry) => {
                w.string("metrics");
                w.key("registry");
                w.raw(registry);
            }
            Response::Rejected { id, reason } => {
                w.string("rejected");
                w.key("id");
                w.string(id);
                w.key("reason");
                match reason {
                    RejectReason::QueueFull { retry_after_ms } => {
                        w.string("queue-full");
                        w.key("retry_after_ms");
                        w.uint(*retry_after_ms);
                    }
                    RejectReason::TooLarge { detail } => {
                        w.string("too-large");
                        w.key("detail");
                        w.string(detail);
                    }
                    RejectReason::Invalid { detail } => {
                        w.string("invalid");
                        w.key("detail");
                        w.string(detail);
                    }
                    RejectReason::Draining { retry_after_ms } => {
                        w.string("draining");
                        w.key("retry_after_ms");
                        w.uint(*retry_after_ms);
                    }
                }
            }
            Response::Error { id, detail } => {
                w.string("error");
                if let Some(id) = id {
                    w.key("id");
                    w.string(id);
                }
                w.key("detail");
                w.string(detail);
            }
            Response::Result(outcome) => {
                w.string("result");
                w.key("id");
                w.string(&outcome.id);
                w.key("termination");
                w.string(&outcome.termination);
                w.key("requested");
                w.uint(outcome.requested);
                w.key("completed");
                w.uint(outcome.completed);
                w.key("failed");
                w.uint(outcome.failed);
                w.key("discarded");
                w.uint(outcome.discarded);
                w.key("cache");
                w.string(if outcome.cache_hit { "hit" } else { "miss" });
                w.key("queue_ms");
                w.float(outcome.queue_ms);
                w.key("run_ms");
                w.float(outcome.run_ms);
                w.key("tvd");
                w.float(outcome.tvd);
                w.key("counts");
                w.begin_object();
                for (bits, n) in &outcome.counts {
                    w.key(bits);
                    w.uint(*n);
                }
                w.end_object();
            }
        }
        w.end_object();
        w.finish().into_bytes()
    }
}

/// Pulls a string field out of a rendered response (`"key":"value"`).
/// A deliberate non-parser for clients and tests: the protocol's response
/// surface is flat enough that field extraction never needs a JSON tree.
#[must_use]
pub fn field_str<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = json.find(&needle)? + needle.len();
    let end = json[start..].find('"')?;
    Some(&json[start..start + end])
}

/// Pulls an unsigned number field out of a rendered response
/// (`"key":123`).
#[must_use]
pub fn field_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let digits: String = json[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Pulls the raw `"counts":{...}` object (brace to brace) out of a
/// `result` response — the exact byte sequence, usable for bit-identity
/// comparisons without parsing.
#[must_use]
pub fn field_counts(json: &str) -> Option<&str> {
    let needle = "\"counts\":{";
    let start = json.find(needle)? + needle.len() - 1;
    let end = json[start..].find('}')?;
    Some(&json[start..=start + end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        let mut r = buf.as_slice();
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).expect("frame 1"),
            Some(b"hello".to_vec())
        );
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).expect("frame 2"),
            Some(Vec::new())
        );
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).expect("eof"), None);
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"body that never gets read");
        match read_frame(&mut buf.as_slice(), 1024) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_distinguished_from_clean_close() {
        // Cut inside the prefix.
        assert!(matches!(
            read_frame(&mut [0u8, 0].as_slice(), 1024),
            Err(FrameError::Truncated)
        ));
        // Cut inside the payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"shor");
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn submit_round_trips_through_render_and_parse() {
        let spec = JobSpec {
            id: "job-1".into(),
            shots: Some(128),
            seed: Some(7),
            answer: vec![2],
            data: vec![0, 1],
            ancilla: Vec::new(),
            scheme: Some("dynamic2".into()),
            deadline_ms: Some(500),
            qasm: "OPENQASM 3.0;\nqubit[3] q;\n".into(),
        };
        let parsed = parse_request(&render_submit(&spec)).expect("parse");
        assert_eq!(parsed, Request::Submit(Box::new(spec)));
    }

    #[test]
    fn control_verbs_parse() {
        assert_eq!(parse_request(b"ping").expect("ping"), Request::Ping);
        assert_eq!(parse_request(b"ping\n").expect("ping nl"), Request::Ping);
        assert_eq!(
            parse_request(b"metrics").expect("metrics"),
            Request::Metrics
        );
        assert_eq!(parse_request(b"drain").expect("drain"), Request::Drain);
        assert_eq!(
            parse_request(b"cancel job-9").expect("cancel"),
            Request::Cancel("job-9".into())
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        for (payload, why) in [
            (&b"\xff\xfe"[..], "not UTF-8"),
            (b"frobnicate", "unknown verb"),
            (b"cancel ", "missing id"),
            (b"submit\nid j\nshots many\n\nx", "bad shots"),
            (b"submit\nid j\nbogus 1\n\nx", "unknown header"),
            (b"submit\nshots 4\n\nqasm", "missing id"),
            (b"submit\nid j\n\n", "missing qasm"),
            (b"submit\nid j\nnoseparator\n\nx", "malformed header"),
        ] {
            assert!(parse_request(payload).is_err(), "{why}");
        }
    }

    #[test]
    fn responses_render_typed_json() {
        let rejected = Response::Rejected {
            id: "j1".into(),
            reason: RejectReason::QueueFull { retry_after_ms: 40 },
        }
        .render();
        let text = String::from_utf8(rejected).expect("utf8");
        qobs::json::validate(&text).expect("valid JSON");
        assert_eq!(field_str(&text, "type"), Some("rejected"));
        assert_eq!(field_str(&text, "reason"), Some("queue-full"));
        assert_eq!(field_u64(&text, "retry_after_ms"), Some(40));

        let outcome = Response::Result(Box::new(JobOutcome {
            id: "j2".into(),
            termination: "completed".into(),
            requested: 64,
            completed: 64,
            failed: 0,
            discarded: 0,
            counts: vec![("00".into(), 30), ("11".into(), 34)],
            cache_hit: true,
            queue_ms: 0.5,
            run_ms: 2.25,
            tvd: 0.0,
        }))
        .render();
        let text = String::from_utf8(outcome).expect("utf8");
        qobs::json::validate(&text).expect("valid JSON");
        assert_eq!(field_str(&text, "termination"), Some("completed"));
        assert_eq!(field_counts(&text), Some(r#"{"00":30,"11":34}"#));
    }
}
