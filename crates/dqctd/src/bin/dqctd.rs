//! The `dqctd` daemon binary: a TCP accept loop (or stdio transport)
//! around [`dqctd::Server`], with SIGTERM/SIGINT wired to a graceful
//! drain — stop accepting, finish every accepted job, exit 0.

use dqctd::{Config, FsyncPolicy, Server};
use qfault::FaultPlan;
use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
dqctd - resilient batch simulation service for dynamic quantum circuits

USAGE:
    dqctd [OPTIONS]

OPTIONS:
    --addr HOST:PORT     listen address (default 127.0.0.1:7817; port 0 = ephemeral)
    --workers N          simulation worker threads (default 2)
    --queue N            bounded queue capacity (default 64)
    --max-qubits N       largest accepted circuit (default 16)
    --max-shots N        largest accepted shot count (default 1048576)
    --default-shots N    shots when a job does not say (default 1024)
    --deadline-ms N      default per-job deadline (default 5000)
    --cache N            transform cache capacity, 0 disables (default 256)
    --journal PATH       crash-only write-ahead journal: admitted jobs and
                         completions survive SIGKILL and replay on restart
    --fsync POLICY       journal durability: always | batch | off (default batch)
    --max-inflight-mb N  in-flight statevector memory budget in MiB (default 256)
    --stall-ms N         worker heartbeat stall threshold before the watchdog
                         cancels, then replaces, a wedged worker (default 2000)
    --inject SPEC        chaos drill: qfault plan applied at job scope
                         (e.g. 'seed=9,panic=0.1,delay=0.05,delay-ms=20')
    --port-file PATH     write the bound port number to PATH after listening
    --stdio              serve one connection on stdin/stdout, then exit
    --help               print this help

SIGTERM and SIGINT trigger a graceful drain: admission stops, every
accepted job is finished and answered, then the process exits 0.";

/// SIGTERM/SIGINT handling with no dependencies: the libc `signal`
/// function installing a handler that only stores to a static atomic
/// (async-signal-safe); the accept loop polls the flag.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: the handler is a plain fn that only stores to a static
        // AtomicBool, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
            signal(SIGINT, on_term as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicBool;

    pub static TERM: AtomicBool = AtomicBool::new(false);

    pub fn install() {}
}

struct Options {
    addr: String,
    port_file: Option<String>,
    stdio: bool,
    config: Config,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options {
        addr: "127.0.0.1:7817".to_string(),
        port_file: None,
        stdio: false,
        config: Config::default(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--stdio" => options.stdio = true,
            "--addr" => options.addr = value("--addr")?,
            "--port-file" => options.port_file = Some(value("--port-file")?),
            "--workers" => options.config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue" => {
                options.config.queue_capacity = parse_num(&value("--queue")?, "--queue")?;
            }
            "--max-qubits" => {
                options.config.max_qubits = parse_num(&value("--max-qubits")?, "--max-qubits")?;
            }
            "--max-shots" => {
                options.config.max_shots = parse_num(&value("--max-shots")?, "--max-shots")?;
            }
            "--default-shots" => {
                options.config.default_shots =
                    parse_num(&value("--default-shots")?, "--default-shots")?;
            }
            "--deadline-ms" => {
                options.config.default_deadline =
                    Duration::from_millis(parse_num(&value("--deadline-ms")?, "--deadline-ms")?);
            }
            "--cache" => {
                options.config.cache_capacity = parse_num(&value("--cache")?, "--cache")?;
            }
            "--journal" => {
                options.config.journal = Some(std::path::PathBuf::from(value("--journal")?));
            }
            "--fsync" => {
                let spec = value("--fsync")?;
                options.config.fsync = FsyncPolicy::parse(&spec)
                    .ok_or_else(|| format!("--fsync: '{spec}' is not always, batch, or off"))?;
            }
            "--max-inflight-mb" => {
                let mib: u64 = parse_num(&value("--max-inflight-mb")?, "--max-inflight-mb")?;
                options.config.max_inflight_bytes = mib.saturating_mul(1 << 20);
            }
            "--stall-ms" => {
                options.config.stall_after =
                    Duration::from_millis(parse_num(&value("--stall-ms")?, "--stall-ms")?);
            }
            "--inject" => {
                let spec = value("--inject")?;
                let plan = FaultPlan::parse(&spec).map_err(|e| format!("--inject: {e}"))?;
                options.config.chaos = Some(plan);
            }
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    Ok(Some(options))
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: '{text}' is not a valid number"))
}

fn main() -> ExitCode {
    // `--inject` chaos panics are caught and isolated per shot by the
    // resilient executor; keep them off stderr while letting real panics
    // through.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("qfault: injected panic"));
        if !injected {
            default_hook(info);
        }
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("dqctd: {message}");
            return ExitCode::FAILURE;
        }
    };
    sig::install();
    match run(options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dqctd: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(options: Options) -> Result<(), String> {
    let server = Server::try_start(options.config.clone())?;
    if options.stdio {
        return run_stdio(&server);
    }
    run_tcp(&server, &options)
}

/// One protocol session over stdin/stdout — the transport the protocol
/// robustness tests and quick local experiments use.
fn run_stdio(server: &Arc<Server>) -> Result<(), String> {
    let stdin = std::io::stdin();
    let mut reader = stdin.lock();
    server.serve_connection(&mut reader, Box::new(std::io::stdout()));
    server.join();
    Ok(())
}

fn run_tcp(server: &Arc<Server>, options: &Options) -> Result<(), String> {
    let listener = TcpListener::bind(&options.addr)
        .map_err(|e| format!("cannot listen on {}: {e}", options.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve the bound address: {e}"))?;
    if let Some(path) = &options.port_file {
        let rendered = format!("{}\n", local.port());
        std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll the listener: {e}"))?;
    eprintln!("dqctd: listening on {local}");
    loop {
        if sig::TERM.load(Ordering::SeqCst) || server.is_draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let server = Arc::clone(server);
                std::thread::spawn(move || {
                    let mut reader = match stream.try_clone() {
                        Ok(reader) => reader,
                        Err(_) => return,
                    };
                    server.serve_connection(&mut reader, Box::new(stream));
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(format!("accept failed: {e}")),
        }
    }
    eprintln!(
        "dqctd: draining ({} accepted jobs in flight)",
        server.pending()
    );
    server.join();
    let _ = std::io::stderr().flush();
    eprintln!("dqctd: drained cleanly");
    Ok(())
}
