//! The service core: bounded admission queue, sharded worker pool,
//! per-job budgets, cancellation, chaos scoping and graceful drain.
//!
//! # Admission-control policy
//!
//! A submission is examined *before* it is accepted, in order of
//! increasing cost: drain state, QASM parse, structural validation, size
//! limits (qubits, shots), role partition, queue capacity. Every rejection
//! is typed ([`RejectReason`]) and, where retrying can help (`queue-full`,
//! `draining`), carries a `retry_after_ms` backoff hint derived from the
//! observed job-latency EMA and the current backlog. Once a job is
//! accepted it is never dropped: every accepted job gets exactly one
//! `result` or `error` response, even across drain.
//!
//! # Drain semantics
//!
//! [`Server::drain`] (wired to SIGTERM and the `drain` verb by the binary)
//! stops admission — new submissions answer `rejected`/`draining` — while
//! the workers finish every already-accepted job. Jobs whose deadline
//! expired while queued return partial results with their usual
//! `deadline` termination; cancelled jobs answer `cancelled`; nothing is
//! silently discarded. [`Server::join`] returns once the queue is empty
//! and every worker has exited.

use crate::cache::{cache_key, CachedTransform, TransformCache};
use crate::protocol::{
    parse_request, read_frame, write_frame, FrameError, JobOutcome, JobSpec, RejectReason, Request,
    Response,
};
use dqc::{DqcError, DynamicScheme, Pipeline, QubitRoles};
use qcir::qasm::from_qasm;
use qcir::{Circuit, Qubit};
use qfault::FaultPlan;
use qobs::Observer;
use qsim::{CancelToken, Executor, FaultSite, Termination};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Derives the deterministic job-scope key a chaos plan is consulted with:
/// FNV-1a of the client-chosen job id. Both the server and its chaos drill
/// can compute the faulted set from ids alone, with no shared state.
#[must_use]
pub fn job_scope_key(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker threads simulating jobs (each runs single-threaded shots).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame_bytes: u32,
    /// Largest circuit accepted, in qubits (statevector cost is 2^n).
    pub max_qubits: usize,
    /// Largest shot count accepted per job.
    pub max_shots: u64,
    /// Shots when a job does not say (`shots` header).
    pub default_shots: u64,
    /// Seed when a job does not say (`seed` header).
    pub default_seed: u64,
    /// Per-job wall-clock budget when a job does not say (`deadline-ms`).
    /// The budget starts at *admission*, so time spent queued counts — a
    /// job that waited out its whole deadline returns an immediate
    /// `deadline` partial rather than occupying a worker.
    pub default_deadline: Duration,
    /// Transform-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Chaos drill: a fault plan consulted at **job** scope (see
    /// [`FaultPlan::job_fault`]). Faulted jobs run under a per-job scoped
    /// hook; unfaulted jobs run bit-identically to a chaos-free server.
    pub chaos: Option<FaultPlan>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            max_frame_bytes: crate::protocol::MAX_FRAME_BYTES,
            max_qubits: 16,
            max_shots: 1 << 20,
            default_shots: 1024,
            default_seed: 7,
            default_deadline: Duration::from_secs(5),
            cache_capacity: 256,
            chaos: None,
        }
    }
}

/// A writer shared between the connection thread (control responses) and
/// the workers (job responses).
type Sink = Arc<Mutex<Box<dyn Write + Send>>>;

/// One accepted job.
struct Job {
    conn: u64,
    id: String,
    circuit: Circuit,
    answer: Vec<usize>,
    data: Vec<usize>,
    ancilla: Vec<usize>,
    roles: QubitRoles,
    scheme: DynamicScheme,
    shots: u64,
    seed: u64,
    deadline: Duration,
    accepted: Instant,
    token: CancelToken,
    sink: Sink,
}

struct State {
    config: Config,
    observer: Observer,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    draining: AtomicBool,
    cache: TransformCache,
    pending: AtomicU64,
    ema_job_us: AtomicU64,
    next_conn: AtomicU64,
    tokens: Mutex<HashMap<(u64, String), CancelToken>>,
}

/// The running service: a worker pool behind a bounded queue, plus the
/// connection driver ([`Server::serve_connection`]) the transport layer
/// (TCP accept loop, stdio, or an in-memory test harness) feeds.
pub struct Server {
    state: Arc<State>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Starts the worker pool and returns the ready service.
    #[must_use]
    pub fn start(config: Config) -> Arc<Server> {
        let state = Arc::new(State {
            cache: TransformCache::new(config.cache_capacity),
            config,
            observer: Observer::metrics_only(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            draining: AtomicBool::new(false),
            pending: AtomicU64::new(0),
            ema_job_us: AtomicU64::new(0),
            next_conn: AtomicU64::new(0),
            tokens: Mutex::new(HashMap::new()),
        });
        let workers = (0..state.config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        Arc::new(Server {
            state,
            workers: Mutex::new(workers),
        })
    }

    /// Drives one client connection: reads request frames until the peer
    /// closes (or a frame-level error forces a close), dispatching
    /// submissions into the queue. Job responses are written by the
    /// workers through the shared `writer`; this call returns when the
    /// read side is done, which may be before in-flight jobs respond.
    pub fn serve_connection<R: Read>(&self, reader: &mut R, writer: Box<dyn Write + Send>) {
        let conn = self.state.next_conn.fetch_add(1, Ordering::Relaxed);
        let sink: Sink = Arc::new(Mutex::new(writer));
        loop {
            match read_frame(reader, self.state.config.max_frame_bytes) {
                Ok(Some(payload)) => match parse_request(&payload) {
                    Ok(request) => {
                        if !self.dispatch(conn, request, &sink) {
                            return;
                        }
                    }
                    Err(detail) => {
                        respond(&self.state, &sink, &Response::Error { id: None, detail });
                    }
                },
                // Clean close: the peer is done submitting.
                Ok(None) => return,
                // An oversized announcement gets a typed answer, then the
                // connection closes (the unread body makes resync
                // impossible). Truncation and transport errors just close.
                Err(FrameError::TooLarge { len, max }) => {
                    respond(
                        &self.state,
                        &sink,
                        &Response::Error {
                            id: None,
                            detail: format!("frame of {len} bytes exceeds the {max}-byte limit"),
                        },
                    );
                    return;
                }
                Err(_) => return,
            }
        }
    }

    /// Handles one parsed request; `false` ends the connection.
    fn dispatch(&self, conn: u64, request: Request, sink: &Sink) -> bool {
        let state = &self.state;
        match request {
            Request::Ping => respond(state, sink, &Response::Pong),
            Request::Metrics => {
                let registry = state.observer.metrics().to_json();
                respond(state, sink, &Response::Metrics(registry));
            }
            Request::Drain => {
                self.drain();
                respond(state, sink, &Response::Draining);
            }
            Request::Cancel(id) => {
                let token = state
                    .tokens
                    .lock()
                    .ok()
                    .and_then(|tokens| tokens.get(&(conn, id.clone())).cloned());
                match token {
                    Some(token) => token.cancel(), // the job's own response reports "cancelled"
                    None => respond(
                        state,
                        sink,
                        &Response::Error {
                            id: Some(id),
                            detail: "no such active job on this connection".to_string(),
                        },
                    ),
                }
            }
            Request::Submit(spec) => {
                if let Some(rejection) = self.admit(conn, *spec, sink) {
                    respond(state, sink, &rejection);
                }
            }
        }
        true
    }

    /// Admission control: accepts the job into the queue (returning
    /// `None`) or returns the typed rejection to send.
    fn admit(&self, conn: u64, spec: JobSpec, sink: &Sink) -> Option<Response> {
        let state = &self.state;
        let obs = &state.observer;
        let reject = |counter: &str, reason: RejectReason| {
            obs.counter_add(counter, 1);
            if matches!(
                reason,
                RejectReason::QueueFull { .. } | RejectReason::Draining { .. }
            ) {
                obs.counter_add("service.retry_hints", 1);
            }
            Some(Response::Rejected {
                id: spec.id.clone(),
                reason,
            })
        };
        if state.draining.load(Ordering::Relaxed) {
            return reject(
                "service.rejected.draining",
                RejectReason::Draining {
                    retry_after_ms: self.backoff_hint(),
                },
            );
        }
        let circuit = match from_qasm(&spec.qasm) {
            Ok(c) => c,
            Err(e) => {
                return reject(
                    "service.rejected.invalid",
                    RejectReason::Invalid {
                        detail: e.to_string(),
                    },
                )
            }
        };
        if let Err(e) = circuit.validate() {
            return reject(
                "service.rejected.invalid",
                RejectReason::Invalid {
                    detail: e.to_string(),
                },
            );
        }
        if circuit.num_qubits() > state.config.max_qubits {
            return reject(
                "service.rejected.too_large",
                RejectReason::TooLarge {
                    detail: format!(
                        "{} qubits exceeds the {}-qubit limit",
                        circuit.num_qubits(),
                        state.config.max_qubits
                    ),
                },
            );
        }
        let shots = spec.shots.unwrap_or(state.config.default_shots);
        if shots > state.config.max_shots {
            return reject(
                "service.rejected.too_large",
                RejectReason::TooLarge {
                    detail: format!(
                        "{shots} shots exceeds the {}-shot limit",
                        state.config.max_shots
                    ),
                },
            );
        }
        let scheme = match spec.scheme.as_deref() {
            None => DynamicScheme::Dynamic2,
            Some("direct") => DynamicScheme::Direct,
            Some("dynamic1") | Some("dynamic-1") => DynamicScheme::Dynamic1,
            Some("dynamic2") | Some("dynamic-2") => DynamicScheme::Dynamic2,
            Some(other) => {
                return reject(
                    "service.rejected.invalid",
                    RejectReason::Invalid {
                        detail: format!("unknown scheme '{other}'"),
                    },
                )
            }
        };
        let roles = match build_roles(&circuit, &spec.answer, &spec.data, &spec.ancilla) {
            Ok(r) => r,
            Err(detail) => {
                return reject("service.rejected.invalid", RejectReason::Invalid { detail })
            }
        };
        let token = CancelToken::new();
        let job = Job {
            conn,
            id: spec.id.clone(),
            circuit,
            answer: spec.answer,
            data: spec.data,
            ancilla: spec.ancilla,
            roles,
            scheme,
            shots,
            seed: spec.seed.unwrap_or(state.config.default_seed),
            deadline: spec
                .deadline_ms
                .map_or(state.config.default_deadline, Duration::from_millis),
            accepted: Instant::now(),
            token: token.clone(),
            sink: Arc::clone(sink),
        };
        {
            let Ok(mut queue) = state.queue.lock() else {
                return reject(
                    "service.rejected.invalid",
                    RejectReason::Invalid {
                        detail: "service queue unavailable".to_string(),
                    },
                );
            };
            if queue.len() >= state.config.queue_capacity {
                drop(queue);
                return reject(
                    "service.rejected.queue_full",
                    RejectReason::QueueFull {
                        retry_after_ms: self.backoff_hint(),
                    },
                );
            }
            queue.push_back(job);
            obs.gauge_set("service.queue_depth", queue.len() as f64);
        }
        if let Ok(mut tokens) = state.tokens.lock() {
            tokens.insert((conn, spec.id), token);
        }
        state.pending.fetch_add(1, Ordering::SeqCst);
        obs.counter_add("service.accepted", 1);
        self.state.available.notify_one();
        None
    }

    /// The `retry_after_ms` hint: how long until a queue slot should free
    /// up, from the job-latency EMA and the configured parallelism.
    fn backoff_hint(&self) -> u64 {
        let ema_us = self.state.ema_job_us.load(Ordering::Relaxed);
        if ema_us == 0 {
            return 25;
        }
        let per_slot_ms = ema_us / 1000 / self.state.config.workers.max(1) as u64;
        per_slot_ms.clamp(10, 2000)
    }

    /// Stops admission; already-accepted work keeps running. Idempotent.
    pub fn drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.available.notify_all();
    }

    /// `true` once [`Server::drain`] was called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// Drains and blocks until every accepted job has been answered and
    /// every worker has exited.
    pub fn join(&self) {
        self.drain();
        let handles: Vec<JoinHandle<()>> = match self.workers.lock() {
            Ok(mut workers) => workers.drain(..).collect(),
            Err(_) => return,
        };
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Accepted jobs not yet answered.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.state.pending.load(Ordering::SeqCst)
    }

    /// The service metrics registry as JSON.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.state.observer.metrics().to_json()
    }
}

/// Builds the role partition with the CLI's defaulting rule (unlisted
/// qubits are data) and validates it against the circuit.
fn build_roles(
    circuit: &Circuit,
    answer: &[usize],
    data: &[usize],
    ancilla: &[usize],
) -> Result<QubitRoles, String> {
    if answer.is_empty() {
        return Err("at least one answer qubit is required (answer header)".to_string());
    }
    for &i in answer.iter().chain(data).chain(ancilla) {
        if i >= circuit.num_qubits() {
            return Err(format!(
                "qubit index {i} out of range for a {}-qubit circuit",
                circuit.num_qubits()
            ));
        }
    }
    let data: Vec<Qubit> = if data.is_empty() {
        (0..circuit.num_qubits())
            .filter(|i| !answer.contains(i) && !ancilla.contains(i))
            .map(Qubit::new)
            .collect()
    } else {
        data.iter().map(|&i| Qubit::new(i)).collect()
    };
    let roles = QubitRoles::new(
        data,
        ancilla.iter().map(|&i| Qubit::new(i)).collect(),
        answer.iter().map(|&i| Qubit::new(i)).collect(),
    );
    roles.validate(circuit).map_err(|e| e.to_string())?;
    Ok(roles)
}

/// Writes a response frame to a connection, counting (never propagating)
/// write failures: a mid-job disconnect must not take a worker down, and
/// the accepted-work accounting stays truthful either way.
fn respond(state: &State, sink: &Sink, response: &Response) {
    let payload = response.render();
    let Ok(mut writer) = sink.lock() else {
        state.observer.counter_add("service.disconnects", 1);
        return;
    };
    if write_frame(&mut *writer, &payload).is_err() {
        state.observer.counter_add("service.disconnects", 1);
    }
}

/// One worker: pop, run, answer — until drain empties the queue.
fn worker_loop(state: &Arc<State>) {
    loop {
        let job = {
            let Ok(mut queue) = state.queue.lock() else {
                return;
            };
            loop {
                if let Some(job) = queue.pop_front() {
                    state
                        .observer
                        .gauge_set("service.queue_depth", queue.len() as f64);
                    break Some(job);
                }
                if state.draining.load(Ordering::SeqCst) {
                    break None;
                }
                match state.available.wait(queue) {
                    Ok(q) => queue = q,
                    Err(_) => return,
                }
            }
        };
        let Some(job) = job else { return };
        let queue_wait = job.accepted.elapsed();
        let started = Instant::now();
        let response = run_job(state, &job, queue_wait);
        respond(state, &job.sink, &response);
        let elapsed = started.elapsed();
        let obs = &state.observer;
        obs.metrics().observe_duration("service.job_ns", elapsed);
        obs.metrics()
            .observe_duration("service.queue_wait_ns", queue_wait);
        // EMA with alpha 1/4, in integer microseconds: cheap, lock-free,
        // plenty for a backoff hint.
        let sample_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let previous = state.ema_job_us.load(Ordering::Relaxed);
        let next = if previous == 0 {
            sample_us
        } else {
            previous - previous / 4 + sample_us / 4
        };
        state.ema_job_us.store(next, Ordering::Relaxed);
        if let Ok(mut tokens) = state.tokens.lock() {
            tokens.remove(&(job.conn, job.id.clone()));
        }
        state.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Transforms (through the cache) and simulates one job.
fn run_job(state: &Arc<State>, job: &Job, queue_wait: Duration) -> Response {
    let obs = &state.observer;
    let queue_ms = queue_wait.as_secs_f64() * 1e3;
    if job.token.is_cancelled() {
        obs.counter_add("service.cancelled", 1);
        return Response::Result(Box::new(JobOutcome {
            id: job.id.clone(),
            termination: Termination::Cancelled.to_string(),
            requested: job.shots,
            completed: 0,
            failed: 0,
            discarded: 0,
            counts: Vec::new(),
            cache_hit: false,
            queue_ms,
            run_ms: 0.0,
            tvd: 0.0,
        }));
    }
    let started = Instant::now();

    // Transform, through the content-hash cache.
    let key = cache_key(
        &job.circuit,
        &job.answer,
        &job.data,
        &job.ancilla,
        job.scheme,
    );
    let (transform, cache_hit) = match state.cache.get(key) {
        Some(hit) => {
            obs.counter_add("service.cache.hit", 1);
            (hit, true)
        }
        None => {
            obs.counter_add("service.cache.miss", 1);
            let result: Result<_, DqcError> = Pipeline::new()
                .scheme(job.scheme)
                .run(&job.circuit, &job.roles);
            match result {
                Ok(result) => {
                    let entry = Arc::new(CachedTransform {
                        circuit: result.dynamic.circuit().clone(),
                        tvd: result.report.tvd,
                    });
                    state.cache.insert(key, Arc::clone(&entry));
                    (entry, false)
                }
                Err(e) => {
                    obs.counter_add("service.errors", 1);
                    return Response::Error {
                        id: Some(job.id.clone()),
                        detail: format!("transform failed: {e}"),
                    };
                }
            }
        }
    };

    // Chaos scoping: a job-faulted job runs under a scoped per-shot hook;
    // everything else runs with no hook at all (bit-identical to a
    // chaos-free server).
    let mut executor = Executor::new()
        .shots(job.shots)
        .seed(job.seed)
        .threads(1)
        .deadline(job.deadline.saturating_sub(job.accepted.elapsed()))
        .cancel_token(job.token.clone());
    if let Some(plan) = &state.config.chaos {
        let scope = job_scope_key(&job.id);
        let fault = plan.job_fault(scope);
        if fault.is_faulted() {
            obs.counter_add("service.chaos.faulted_jobs", 1);
            // The per-shot hook expresses exactly the job-level decision:
            // the two shot sites are cleared and the drawn faults
            // re-raised to certainty, so a panic-faulted job fails every
            // shot and a delay-only job stays bit-identical, just slow.
            let mut scoped = plan
                .scoped(scope)
                .with_rate(FaultSite::ShotPanic, 0.0)
                .with_rate(FaultSite::ShotDelay, 0.0);
            if fault.panic {
                scoped = scoped.with_rate(FaultSite::ShotPanic, 1.0);
            }
            if let Some(delay) = fault.delay {
                scoped = scoped
                    .with_rate(FaultSite::ShotDelay, 1.0)
                    .with_delay(delay);
            }
            executor = executor.fault_hook(Arc::new(scoped));
        }
    }

    let (counts, report) = executor.run_resilient(transform.circuit());
    match report.termination {
        Termination::Cancelled => obs.counter_add("service.cancelled", 1),
        Termination::Deadline => obs.counter_add("service.deadline", 1),
        _ => {}
    }
    obs.counter_add("service.completed", 1);
    Response::Result(Box::new(JobOutcome {
        id: job.id.clone(),
        termination: report.termination.to_string(),
        requested: report.requested,
        completed: report.completed,
        failed: report.failed,
        discarded: report.discarded,
        counts: counts
            .iter()
            .map(|(bits, n)| (bits.to_string(), n))
            .collect(),
        cache_hit,
        queue_ms,
        run_ms: started.elapsed().as_secs_f64() * 1e3,
        tvd: transform.tvd,
    }))
}

impl CachedTransform {
    /// The cached dynamic circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }
}
