//! The service core: bounded admission queue, sharded worker pool,
//! per-job budgets, cancellation, chaos scoping and graceful drain.
//!
//! # Admission-control policy
//!
//! A submission is examined *before* it is accepted, in order of
//! increasing cost: drain state, QASM parse, structural validation, size
//! limits (qubits, shots), role partition, queue capacity. Every rejection
//! is typed ([`RejectReason`]) and, where retrying can help (`queue-full`,
//! `draining`), carries a `retry_after_ms` backoff hint derived from the
//! observed job-latency EMA and the current backlog. Once a job is
//! accepted it is never dropped: every accepted job gets exactly one
//! `result` or `error` response, even across drain.
//!
//! # Drain semantics
//!
//! [`Server::drain`] (wired to SIGTERM and the `drain` verb by the binary)
//! stops admission — new submissions answer `rejected`/`draining` — while
//! the workers finish every already-accepted job. Jobs whose deadline
//! expired while queued return partial results with their usual
//! `deadline` termination; cancelled jobs answer `cancelled`; nothing is
//! silently discarded. [`Server::join`] returns once the queue is empty
//! and every worker has exited.
//!
//! # Durability and supervision (DESIGN.md §15)
//!
//! With [`Config::journal`] set, every admission and completion is
//! recorded in a crash-only write-ahead journal (see [`crate::journal`]).
//! On restart, admitted-but-unanswered jobs are replayed through the
//! deterministic pipeline (bit-identical counts by the executor's
//! counter-based RNG), and duplicate submissions with an already-completed
//! client job id are served the journaled response verbatim — client
//! retries are idempotent.
//!
//! Each worker carries a heartbeat the executor ticks at least once per
//! shot; a watchdog thread samples the heartbeats and escalates a stalled
//! worker in two stages: first cancel the wedged job's [`CancelToken`]
//! (a cooperative executor honours it between shots), then — if the
//! heartbeat still does not move — retire the worker thread, answer the
//! job with a typed supervisor error, and respawn a fresh worker. Every
//! job therefore still gets exactly one response: a respond-once guard
//! makes the worker and the watchdog race-safe.

use crate::cache::{cache_key, CachedTransform, TransformCache};
use crate::journal::{FsyncPolicy, Journal};
use crate::protocol::{
    parse_request, read_frame, write_frame, FrameError, JobOutcome, JobSpec, RejectReason, Request,
    Response,
};
use dqc::{DqcError, DynamicScheme, Pipeline, QubitRoles};
use qcir::qasm::from_qasm;
use qcir::{Circuit, Qubit};
use qfault::FaultPlan;
use qobs::Observer;
use qsim::{CancelToken, Executor, FaultSite, Termination};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Derives the deterministic job-scope key a chaos plan is consulted with:
/// FNV-1a of the client-chosen job id. Both the server and its chaos drill
/// can compute the faulted set from ids alone, with no shared state.
#[must_use]
pub fn job_scope_key(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cold-start stand-in for the job-latency EMA (50 ms — a mid-size
/// transform + simulation) used by [`Server`]'s `retry_after_ms` hints
/// before the first completion has produced a real sample.
const COLD_START_JOB_US: u64 = 50_000;
/// Floor on every `retry_after_ms` hint: never tell a client to hammer.
const MIN_RETRY_HINT_MS: u64 = 10;
/// Ceiling on every `retry_after_ms` hint: never tell a client to
/// disappear for minutes because one pathological job skewed the EMA.
const MAX_RETRY_HINT_MS: u64 = 2000;

/// The statevector footprint of an `n`-qubit job: `2^n` `Complex64`
/// amplitudes at 16 bytes each (saturating, so a hostile width cannot
/// overflow the accounting into a free pass).
#[must_use]
fn statevector_bytes(num_qubits: usize) -> u64 {
    if num_qubits >= 60 {
        return u64::MAX;
    }
    16u64 << num_qubits
}

/// The CLI/wire spelling of a scheme, for journaling resolved specs.
fn scheme_name(scheme: DynamicScheme) -> &'static str {
    match scheme {
        DynamicScheme::Direct => "direct",
        DynamicScheme::Dynamic1 => "dynamic1",
        DynamicScheme::Dynamic2 => "dynamic2",
    }
}

/// The fully resolved submission that goes into the journal: every
/// server-side default (shots, seed, scheme, deadline) made explicit, so
/// replay after a restart — possibly under a different configuration —
/// reproduces exactly the job that was admitted.
fn resolved_spec(
    spec: &JobSpec,
    shots: u64,
    seed: u64,
    deadline: Duration,
    scheme: DynamicScheme,
) -> JobSpec {
    JobSpec {
        id: spec.id.clone(),
        shots: Some(shots),
        seed: Some(seed),
        answer: spec.answer.clone(),
        data: spec.data.clone(),
        ancilla: spec.ancilla.clone(),
        scheme: Some(scheme_name(scheme).to_string()),
        deadline_ms: Some(u64::try_from(deadline.as_millis()).unwrap_or(u64::MAX)),
        qasm: spec.qasm.clone(),
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker threads simulating jobs (each runs single-threaded shots).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame_bytes: u32,
    /// Largest circuit accepted, in qubits (statevector cost is 2^n).
    pub max_qubits: usize,
    /// Largest shot count accepted per job.
    pub max_shots: u64,
    /// Shots when a job does not say (`shots` header).
    pub default_shots: u64,
    /// Seed when a job does not say (`seed` header).
    pub default_seed: u64,
    /// Per-job wall-clock budget when a job does not say (`deadline-ms`).
    /// The budget starts at *admission*, so time spent queued counts — a
    /// job that waited out its whole deadline returns an immediate
    /// `deadline` partial rather than occupying a worker.
    pub default_deadline: Duration,
    /// Transform-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Chaos drill: a fault plan consulted at **job** scope (see
    /// [`FaultPlan::job_fault`]). Faulted jobs run under a per-job scoped
    /// hook; unfaulted jobs run bit-identically to a chaos-free server.
    pub chaos: Option<FaultPlan>,
    /// Write-ahead journal path (`--journal`); `None` runs without
    /// durability.
    pub journal: Option<PathBuf>,
    /// When journal appends reach the disk (`--fsync`).
    pub fsync: FsyncPolicy,
    /// Global in-flight statevector memory budget in bytes: admission
    /// sheds work whose `16 * 2^qubits` statevector would push the sum of
    /// queued + running jobs past it, *before* any allocation happens. A
    /// job too large for the whole budget rejects `too-large`; a job that
    /// merely does not fit right now rejects `queue-full` with a retry
    /// hint.
    pub max_inflight_bytes: u64,
    /// How long a busy worker's heartbeat may stand still before the
    /// watchdog intervenes (stage one: cancel; after a second interval,
    /// stage two: retire + respawn). Must exceed the worst single-shot
    /// latency — the heartbeat ticks per shot, not per instruction.
    pub stall_after: Duration,
    /// Watchdog sampling cadence.
    pub watchdog_interval: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            max_frame_bytes: crate::protocol::MAX_FRAME_BYTES,
            max_qubits: 16,
            max_shots: 1 << 20,
            default_shots: 1024,
            default_seed: 7,
            default_deadline: Duration::from_secs(5),
            cache_capacity: 256,
            chaos: None,
            journal: None,
            fsync: FsyncPolicy::Batch,
            max_inflight_bytes: 256 << 20,
            stall_after: Duration::from_secs(2),
            watchdog_interval: Duration::from_millis(100),
        }
    }
}

/// A writer shared between the connection thread (control responses) and
/// the workers (job responses).
type Sink = Arc<Mutex<Box<dyn Write + Send>>>;

/// One accepted job.
struct Job {
    conn: u64,
    id: String,
    circuit: Circuit,
    answer: Vec<usize>,
    data: Vec<usize>,
    ancilla: Vec<usize>,
    roles: QubitRoles,
    scheme: DynamicScheme,
    shots: u64,
    seed: u64,
    deadline: Duration,
    accepted: Instant,
    token: CancelToken,
    sink: Sink,
    /// Statevector bytes reserved against [`Config::max_inflight_bytes`].
    bytes: u64,
    /// Respond-once guard shared with the watchdog: whoever flips it
    /// first answers the job and settles its accounting.
    answered: Arc<AtomicBool>,
    /// `true` for journal-replayed jobs: their admission is already on
    /// disk and their original connection is gone.
    recovered: bool,
}

/// One worker's supervision surface, shared between the worker thread,
/// the executor (heartbeat) and the watchdog.
struct WorkerSlot {
    id: u64,
    /// Ticked at least once per shot by the executor, and at job
    /// pick-up/finish by the worker loop.
    beat: Arc<AtomicU64>,
    /// Set by the watchdog at stage two: the thread (which may be wedged
    /// inside a shot) must exit at its next loop boundary instead of
    /// serving more jobs alongside its replacement.
    retired: AtomicBool,
    /// What the worker is running right now, for the watchdog's
    /// escalation path.
    active: Mutex<Option<ActiveJob>>,
}

/// The watchdog-visible face of a running job.
#[derive(Clone)]
struct ActiveJob {
    conn: u64,
    id: String,
    shots: u64,
    token: CancelToken,
    sink: Sink,
    answered: Arc<AtomicBool>,
    bytes: u64,
    recovered: bool,
}

struct State {
    config: Config,
    observer: Observer,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    draining: AtomicBool,
    cache: TransformCache,
    pending: AtomicU64,
    ema_job_us: AtomicU64,
    next_conn: AtomicU64,
    tokens: Mutex<HashMap<(u64, String), CancelToken>>,
    journal: Option<Journal>,
    /// Completion index: client job id → the exact response bytes it was
    /// answered with (recovered from the journal, extended live).
    completions: Mutex<HashMap<String, Vec<u8>>>,
    /// Ids currently queued or running, so a duplicate of an in-flight
    /// job is rejected instead of racing two runs of one id.
    inflight_ids: Mutex<HashSet<String>>,
    /// Sum of queued + running statevector bytes.
    inflight_bytes: AtomicU64,
    /// Live worker slots (retired zombies are pruned by the watchdog).
    slots: Mutex<Vec<Arc<WorkerSlot>>>,
    /// Worker join handles keyed by slot id; an abandoned worker's handle
    /// is dropped (detached), never joined — it may be wedged forever.
    handles: Mutex<HashMap<u64, JoinHandle<()>>>,
    next_slot: AtomicU64,
}

/// The running service: a worker pool behind a bounded queue, plus the
/// connection driver ([`Server::serve_connection`]) the transport layer
/// (TCP accept loop, stdio, or an in-memory test harness) feeds.
pub struct Server {
    state: Arc<State>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Starts the worker pool and returns the ready service.
    ///
    /// # Panics
    ///
    /// Panics when the configured journal cannot be opened — use
    /// [`Server::try_start`] where that is an expected failure mode.
    #[must_use]
    pub fn start(config: Config) -> Arc<Server> {
        match Self::try_start(config) {
            Ok(server) => server,
            Err(message) => panic!("dqctd: {message}"),
        }
    }

    /// Starts the worker pool, recovering the journal first when one is
    /// configured: admitted-but-unanswered jobs re-enter the queue (their
    /// deadline clock restarts — the original admission instant died with
    /// the original process) and completed jobs seed the idempotency
    /// index.
    ///
    /// # Errors
    ///
    /// A human-readable message when the journal cannot be opened or
    /// recovered.
    pub fn try_start(config: Config) -> Result<Arc<Server>, String> {
        let mut recovery = None;
        let journal = match &config.journal {
            Some(path) => {
                let (journal, recovered) = Journal::open(path, config.fsync)
                    .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
                recovery = Some(recovered);
                Some(journal)
            }
            None => None,
        };
        let state = Arc::new(State {
            cache: TransformCache::new(config.cache_capacity),
            config,
            observer: Observer::metrics_only(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            draining: AtomicBool::new(false),
            pending: AtomicU64::new(0),
            ema_job_us: AtomicU64::new(0),
            next_conn: AtomicU64::new(0),
            tokens: Mutex::new(HashMap::new()),
            journal,
            completions: Mutex::new(HashMap::new()),
            inflight_ids: Mutex::new(HashSet::new()),
            inflight_bytes: AtomicU64::new(0),
            slots: Mutex::new(Vec::new()),
            handles: Mutex::new(HashMap::new()),
            next_slot: AtomicU64::new(0),
        });
        if let Some(recovery) = recovery {
            replay_recovery(&state, recovery);
        }
        for _ in 0..state.config.workers.max(1) {
            spawn_worker(&state);
        }
        let watchdog = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || watchdog_loop(&state))
        };
        Ok(Arc::new(Server {
            state,
            watchdog: Mutex::new(Some(watchdog)),
        }))
    }

    /// Drives one client connection: reads request frames until the peer
    /// closes (or a frame-level error forces a close), dispatching
    /// submissions into the queue. Job responses are written by the
    /// workers through the shared `writer`; this call returns when the
    /// read side is done, which may be before in-flight jobs respond.
    pub fn serve_connection<R: Read>(&self, reader: &mut R, writer: Box<dyn Write + Send>) {
        let conn = self.state.next_conn.fetch_add(1, Ordering::Relaxed);
        let sink: Sink = Arc::new(Mutex::new(writer));
        loop {
            match read_frame(reader, self.state.config.max_frame_bytes) {
                Ok(Some(payload)) => match parse_request(&payload) {
                    Ok(request) => {
                        if !self.dispatch(conn, request, &sink) {
                            return;
                        }
                    }
                    Err(detail) => {
                        respond(&self.state, &sink, &Response::Error { id: None, detail });
                    }
                },
                // Clean close: the peer is done submitting.
                Ok(None) => return,
                // An oversized announcement gets a typed answer, then the
                // connection closes (the unread body makes resync
                // impossible). Truncation and transport errors just close.
                Err(FrameError::TooLarge { len, max }) => {
                    respond(
                        &self.state,
                        &sink,
                        &Response::Error {
                            id: None,
                            detail: format!("frame of {len} bytes exceeds the {max}-byte limit"),
                        },
                    );
                    return;
                }
                Err(_) => return,
            }
        }
    }

    /// Handles one parsed request; `false` ends the connection.
    fn dispatch(&self, conn: u64, request: Request, sink: &Sink) -> bool {
        let state = &self.state;
        match request {
            Request::Ping => respond(state, sink, &Response::Pong),
            Request::Metrics => {
                let registry = state.observer.metrics().to_json();
                respond(state, sink, &Response::Metrics(registry));
            }
            Request::Drain => {
                self.drain();
                respond(state, sink, &Response::Draining);
            }
            Request::Cancel(id) => {
                let token = state
                    .tokens
                    .lock()
                    .ok()
                    .and_then(|tokens| tokens.get(&(conn, id.clone())).cloned());
                match token {
                    Some(token) => token.cancel(), // the job's own response reports "cancelled"
                    None => respond(
                        state,
                        sink,
                        &Response::Error {
                            id: Some(id),
                            detail: "no such active job on this connection".to_string(),
                        },
                    ),
                }
            }
            Request::Submit(spec) => {
                if let Some(rejection) = self.admit(conn, *spec, sink) {
                    respond(state, sink, &rejection);
                }
            }
        }
        true
    }

    /// Admission control: accepts the job into the queue (returning
    /// `None`) or returns the typed rejection to send.
    fn admit(&self, conn: u64, spec: JobSpec, sink: &Sink) -> Option<Response> {
        let state = &self.state;
        let obs = &state.observer;
        // Idempotent retries: a client job id that already completed is
        // served its recorded response verbatim — byte-identical by
        // construction, no re-run, and available even while draining.
        let served = state
            .completions
            .lock()
            .ok()
            .and_then(|done| done.get(&spec.id).cloned());
        if let Some(response) = served {
            obs.counter_add("journal.dedup_served", 1);
            if let Ok(mut writer) = sink.lock() {
                if write_frame(&mut *writer, &response).is_err() {
                    obs.counter_add("service.disconnects", 1);
                }
            }
            return None;
        }
        let reject = |counter: &str, reason: RejectReason| {
            obs.counter_add(counter, 1);
            if matches!(
                reason,
                RejectReason::QueueFull { .. } | RejectReason::Draining { .. }
            ) {
                obs.counter_add("service.retry_hints", 1);
            }
            Some(Response::Rejected {
                id: spec.id.clone(),
                reason,
            })
        };
        // One id, one run: a duplicate of a job still in flight is turned
        // away instead of racing two runs (and two responses) for one id.
        if state
            .inflight_ids
            .lock()
            .is_ok_and(|ids| ids.contains(&spec.id))
        {
            return reject(
                "service.rejected.invalid",
                RejectReason::Invalid {
                    detail: format!("job id '{}' is already in flight", spec.id),
                },
            );
        }
        if state.draining.load(Ordering::Relaxed) {
            return reject(
                "service.rejected.draining",
                RejectReason::Draining {
                    retry_after_ms: self.backoff_hint(),
                },
            );
        }
        let circuit = match from_qasm(&spec.qasm) {
            Ok(c) => c,
            Err(e) => {
                return reject(
                    "service.rejected.invalid",
                    RejectReason::Invalid {
                        detail: e.to_string(),
                    },
                )
            }
        };
        if let Err(e) = circuit.validate() {
            return reject(
                "service.rejected.invalid",
                RejectReason::Invalid {
                    detail: e.to_string(),
                },
            );
        }
        if circuit.num_qubits() > state.config.max_qubits {
            return reject(
                "service.rejected.too_large",
                RejectReason::TooLarge {
                    detail: format!(
                        "{} qubits exceeds the {}-qubit limit",
                        circuit.num_qubits(),
                        state.config.max_qubits
                    ),
                },
            );
        }
        let shots = spec.shots.unwrap_or(state.config.default_shots);
        if shots > state.config.max_shots {
            return reject(
                "service.rejected.too_large",
                RejectReason::TooLarge {
                    detail: format!(
                        "{shots} shots exceeds the {}-shot limit",
                        state.config.max_shots
                    ),
                },
            );
        }
        let scheme = match spec.scheme.as_deref() {
            None => DynamicScheme::Dynamic2,
            Some("direct") => DynamicScheme::Direct,
            Some("dynamic1") | Some("dynamic-1") => DynamicScheme::Dynamic1,
            Some("dynamic2") | Some("dynamic-2") => DynamicScheme::Dynamic2,
            Some(other) => {
                return reject(
                    "service.rejected.invalid",
                    RejectReason::Invalid {
                        detail: format!("unknown scheme '{other}'"),
                    },
                )
            }
        };
        let roles = match build_roles(&circuit, &spec.answer, &spec.data, &spec.ancilla) {
            Ok(r) => r,
            Err(detail) => {
                return reject("service.rejected.invalid", RejectReason::Invalid { detail })
            }
        };
        // Memory admission: shed work the statevector budget cannot hold
        // *before* any allocation. The traditional circuit's width bounds
        // the transformed one (reuse only narrows), so this is
        // conservative.
        let bytes = statevector_bytes(circuit.num_qubits());
        if bytes > state.config.max_inflight_bytes {
            return reject(
                "service.rejected.too_large",
                RejectReason::TooLarge {
                    detail: format!(
                        "a {}-qubit statevector ({bytes} bytes) exceeds the {}-byte memory budget",
                        circuit.num_qubits(),
                        state.config.max_inflight_bytes
                    ),
                },
            );
        }
        let seed = spec.seed.unwrap_or(state.config.default_seed);
        let deadline = spec
            .deadline_ms
            .map_or(state.config.default_deadline, Duration::from_millis);
        let token = CancelToken::new();
        let job = Job {
            conn,
            id: spec.id.clone(),
            circuit,
            answer: spec.answer.clone(),
            data: spec.data.clone(),
            ancilla: spec.ancilla.clone(),
            roles,
            scheme,
            shots,
            seed,
            deadline,
            accepted: Instant::now(),
            token: token.clone(),
            sink: Arc::clone(sink),
            bytes,
            answered: Arc::new(AtomicBool::new(false)),
            recovered: false,
        };
        {
            let Ok(mut queue) = state.queue.lock() else {
                return reject(
                    "service.rejected.invalid",
                    RejectReason::Invalid {
                        detail: "service queue unavailable".to_string(),
                    },
                );
            };
            if queue.len() >= state.config.queue_capacity {
                drop(queue);
                return reject(
                    "service.rejected.queue_full",
                    RejectReason::QueueFull {
                        retry_after_ms: self.backoff_hint(),
                    },
                );
            }
            let inflight = state.inflight_bytes.load(Ordering::Relaxed);
            if inflight + bytes > state.config.max_inflight_bytes {
                drop(queue);
                obs.counter_add("service.rejected.memory", 1);
                return reject(
                    "service.rejected.queue_full",
                    RejectReason::QueueFull {
                        retry_after_ms: self.backoff_hint(),
                    },
                );
            }
            // Journal the admission *after* every shedding decision and
            // *before* the push: a crash between the two forgets a job no
            // client was promised, and replay never resurrects a job that
            // was actually rejected.
            if let Some(journal) = &state.journal {
                let resolved = resolved_spec(&spec, shots, seed, deadline, job.scheme);
                if let Err(e) = journal.append_admitted(&resolved) {
                    drop(queue);
                    obs.counter_add("journal.append_failed", 1);
                    return reject(
                        "service.rejected.invalid",
                        RejectReason::Invalid {
                            detail: format!("cannot make the job durable: {e}"),
                        },
                    );
                }
                obs.counter_add("journal.records_written", 1);
            }
            queue.push_back(job);
            obs.gauge_set("service.queue_depth", queue.len() as f64);
        }
        if let Ok(mut tokens) = state.tokens.lock() {
            tokens.insert((conn, spec.id.clone()), token);
        }
        if let Ok(mut ids) = state.inflight_ids.lock() {
            ids.insert(spec.id);
        }
        let inflight = state.inflight_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        obs.gauge_set("service.inflight_bytes", inflight as f64);
        state.pending.fetch_add(1, Ordering::SeqCst);
        obs.counter_add("service.accepted", 1);
        self.state.available.notify_one();
        None
    }

    /// The `retry_after_ms` hint: how long until a queue slot should free
    /// up, from the job-latency EMA and the configured parallelism.
    ///
    /// Before the first completion the EMA has no samples; rather than
    /// emit a garbage hint, it is seeded from [`COLD_START_JOB_US`] (a
    /// conservative "typical job" guess), and every hint — cold or warm —
    /// is clamped into `[`[`MIN_RETRY_HINT_MS`]`, `[`MAX_RETRY_HINT_MS`]`]`
    /// so a pathological EMA can never tell clients to hammer the server
    /// or to go away for minutes.
    fn backoff_hint(&self) -> u64 {
        let ema_us = self.state.ema_job_us.load(Ordering::Relaxed);
        let effective_us = if ema_us == 0 {
            COLD_START_JOB_US
        } else {
            ema_us
        };
        let per_slot_ms = effective_us / 1000 / self.state.config.workers.max(1) as u64;
        per_slot_ms.clamp(MIN_RETRY_HINT_MS, MAX_RETRY_HINT_MS)
    }

    /// Stops admission; already-accepted work keeps running. Idempotent.
    pub fn drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.available.notify_all();
    }

    /// `true` once [`Server::drain`] was called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// Drains and blocks until every accepted job has been answered and
    /// every worker has exited.
    ///
    /// Waits on the *pending counter* first, then joins worker handles:
    /// a worker wedged inside a shot is escalated by the watchdog (its job
    /// answered, its handle detached), so the pending counter always
    /// reaches zero and join never hangs on a zombie thread.
    pub fn join(&self) {
        self.drain();
        while self.pending() > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.state.available.notify_all();
        let handles: Vec<JoinHandle<()>> = match self.state.handles.lock() {
            Ok(mut handles) => handles.drain().map(|(_, handle)| handle).collect(),
            Err(_) => return,
        };
        for handle in handles {
            let _ = handle.join();
        }
        let watchdog = self.watchdog.lock().ok().and_then(|mut w| w.take());
        if let Some(watchdog) = watchdog {
            let _ = watchdog.join();
        }
        if let Some(journal) = &self.state.journal {
            let _ = journal.sync();
        }
    }

    /// Accepted jobs not yet answered.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.state.pending.load(Ordering::SeqCst)
    }

    /// The service metrics registry as JSON.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.state.observer.metrics().to_json()
    }
}

/// Builds the role partition with the CLI's defaulting rule (unlisted
/// qubits are data) and validates it against the circuit.
fn build_roles(
    circuit: &Circuit,
    answer: &[usize],
    data: &[usize],
    ancilla: &[usize],
) -> Result<QubitRoles, String> {
    if answer.is_empty() {
        return Err("at least one answer qubit is required (answer header)".to_string());
    }
    for &i in answer.iter().chain(data).chain(ancilla) {
        if i >= circuit.num_qubits() {
            return Err(format!(
                "qubit index {i} out of range for a {}-qubit circuit",
                circuit.num_qubits()
            ));
        }
    }
    let data: Vec<Qubit> = if data.is_empty() {
        (0..circuit.num_qubits())
            .filter(|i| !answer.contains(i) && !ancilla.contains(i))
            .map(Qubit::new)
            .collect()
    } else {
        data.iter().map(|&i| Qubit::new(i)).collect()
    };
    let roles = QubitRoles::new(
        data,
        ancilla.iter().map(|&i| Qubit::new(i)).collect(),
        answer.iter().map(|&i| Qubit::new(i)).collect(),
    );
    roles.validate(circuit).map_err(|e| e.to_string())?;
    Ok(roles)
}

/// Writes a response frame to a connection, counting (never propagating)
/// write failures: a mid-job disconnect must not take a worker down, and
/// the accepted-work accounting stays truthful either way.
fn respond(state: &State, sink: &Sink, response: &Response) {
    let payload = response.render();
    let Ok(mut writer) = sink.lock() else {
        state.observer.counter_add("service.disconnects", 1);
        return;
    };
    if write_frame(&mut *writer, &payload).is_err() {
        state.observer.counter_add("service.disconnects", 1);
    }
}

/// Spawns one supervised worker: a fresh slot (heartbeat + active-job
/// surface), registered in the state's slot and handle tables.
fn spawn_worker(state: &Arc<State>) {
    let id = state.next_slot.fetch_add(1, Ordering::Relaxed);
    let slot = Arc::new(WorkerSlot {
        id,
        beat: Arc::new(AtomicU64::new(0)),
        retired: AtomicBool::new(false),
        active: Mutex::new(None),
    });
    if let Ok(mut slots) = state.slots.lock() {
        slots.push(Arc::clone(&slot));
    }
    let thread_state = Arc::clone(state);
    let thread_slot = Arc::clone(&slot);
    let handle = std::thread::spawn(move || worker_loop(&thread_state, &thread_slot));
    if let Ok(mut handles) = state.handles.lock() {
        handles.insert(id, handle);
    }
}

/// Loads a journal recovery into the live state: completed `result`
/// responses seed the idempotency index; admitted-but-unanswered jobs
/// re-enter the queue on a null sink (their clients died with the old
/// process — the journal's completion record is their response channel,
/// served on retry) with fresh deadline clocks.
fn replay_recovery(state: &Arc<State>, recovery: crate::journal::Recovery) {
    let obs = &state.observer;
    obs.counter_add("journal.truncated_bytes", recovery.truncated_bytes);
    if let Ok(mut done) = state.completions.lock() {
        for (id, bytes) in recovery.completed {
            // Only settled results are worth serving to retries; journaled
            // error completions exist to stop replay, not to be replayed.
            if bytes.starts_with(b"{\"type\":\"result\"") {
                done.insert(id, bytes);
            }
        }
    }
    let mut replayed = 0u64;
    for spec in recovery.incomplete {
        match recovered_job(state, &spec) {
            Ok(job) => {
                let bytes = job.bytes;
                let id = job.id.clone();
                if let Ok(mut queue) = state.queue.lock() {
                    queue.push_back(job);
                } else {
                    continue;
                }
                if let Ok(mut ids) = state.inflight_ids.lock() {
                    ids.insert(id);
                }
                state.inflight_bytes.fetch_add(bytes, Ordering::Relaxed);
                state.pending.fetch_add(1, Ordering::SeqCst);
                replayed += 1;
            }
            Err(detail) => {
                // A journaled admission that no longer materializes (say,
                // a journal written by a different build): settle it with
                // an error completion so the *next* restart does not chew
                // on it again.
                obs.counter_add("journal.replay_failed", 1);
                let response = Response::Error {
                    id: Some(spec.id.clone()),
                    detail: format!("recovery replay failed: {detail}"),
                };
                if let Some(journal) = &state.journal {
                    let _ = journal.append_completed(&spec.id, &response.render());
                }
            }
        }
    }
    obs.counter_add("journal.replayed", replayed);
}

/// Rebuilds a runnable [`Job`] from a journaled (resolved) submission.
fn recovered_job(state: &Arc<State>, spec: &JobSpec) -> Result<Job, String> {
    let circuit = from_qasm(&spec.qasm).map_err(|e| e.to_string())?;
    circuit.validate().map_err(|e| e.to_string())?;
    let scheme = match spec.scheme.as_deref() {
        None | Some("dynamic2") | Some("dynamic-2") => DynamicScheme::Dynamic2,
        Some("direct") => DynamicScheme::Direct,
        Some("dynamic1") | Some("dynamic-1") => DynamicScheme::Dynamic1,
        Some(other) => return Err(format!("unknown scheme '{other}'")),
    };
    let roles = build_roles(&circuit, &spec.answer, &spec.data, &spec.ancilla)?;
    let bytes = statevector_bytes(circuit.num_qubits());
    Ok(Job {
        conn: u64::MAX,
        id: spec.id.clone(),
        circuit,
        answer: spec.answer.clone(),
        data: spec.data.clone(),
        ancilla: spec.ancilla.clone(),
        roles,
        scheme,
        shots: spec.shots.unwrap_or(state.config.default_shots),
        seed: spec.seed.unwrap_or(state.config.default_seed),
        deadline: spec
            .deadline_ms
            .map_or(state.config.default_deadline, Duration::from_millis),
        accepted: Instant::now(),
        token: CancelToken::new(),
        sink: Arc::new(Mutex::new(Box::new(std::io::sink()))),
        bytes,
        answered: Arc::new(AtomicBool::new(false)),
        recovered: true,
    })
}

/// Settles one job exactly once: sends the response (skipped for
/// recovered jobs, whose connection died with the old process), journals
/// the completion, seeds the idempotency index, and releases the job's
/// accounting (token, in-flight id, memory reservation, pending count).
/// Returns `false` when the other contender — worker vs watchdog — got
/// there first.
fn finish_job(state: &Arc<State>, job: &ActiveJob, response: &Response) -> bool {
    if job.answered.swap(true, Ordering::SeqCst) {
        return false;
    }
    let obs = &state.observer;
    let payload = response.render();
    if !job.recovered {
        match job.sink.lock() {
            Ok(mut writer) => {
                if write_frame(&mut *writer, &payload).is_err() {
                    obs.counter_add("service.disconnects", 1);
                }
            }
            Err(_) => obs.counter_add("service.disconnects", 1),
        }
    }
    if matches!(response, Response::Result(_)) {
        if let Ok(mut done) = state.completions.lock() {
            done.insert(job.id.clone(), payload.clone());
        }
    }
    if let Some(journal) = &state.journal {
        if journal.append_completed(&job.id, &payload).is_ok() {
            obs.counter_add("journal.records_written", 1);
        } else {
            obs.counter_add("journal.append_failed", 1);
        }
    }
    if let Ok(mut tokens) = state.tokens.lock() {
        tokens.remove(&(job.conn, job.id.clone()));
    }
    if let Ok(mut ids) = state.inflight_ids.lock() {
        ids.remove(&job.id);
    }
    let before = state.inflight_bytes.fetch_sub(job.bytes, Ordering::Relaxed);
    obs.gauge_set(
        "service.inflight_bytes",
        before.saturating_sub(job.bytes) as f64,
    );
    state.pending.fetch_sub(1, Ordering::SeqCst);
    true
}

/// The watchdog-visible view of a popped job.
fn job_view(job: &Job) -> ActiveJob {
    ActiveJob {
        conn: job.conn,
        id: job.id.clone(),
        shots: job.shots,
        token: job.token.clone(),
        sink: Arc::clone(&job.sink),
        answered: Arc::clone(&job.answered),
        bytes: job.bytes,
        recovered: job.recovered,
    }
}

/// One worker: pop, run, answer — until drain empties the queue or the
/// watchdog retires the slot.
fn worker_loop(state: &Arc<State>, slot: &Arc<WorkerSlot>) {
    loop {
        if slot.retired.load(Ordering::SeqCst) {
            return;
        }
        let job = {
            let Ok(mut queue) = state.queue.lock() else {
                return;
            };
            loop {
                if let Some(job) = queue.pop_front() {
                    state
                        .observer
                        .gauge_set("service.queue_depth", queue.len() as f64);
                    break Some(job);
                }
                if state.draining.load(Ordering::SeqCst) {
                    break None;
                }
                match state.available.wait(queue) {
                    Ok(q) => queue = q,
                    Err(_) => return,
                }
            }
        };
        let Some(job) = job else { return };
        let view = job_view(&job);
        slot.beat.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut active) = slot.active.lock() {
            *active = Some(view.clone());
        }
        let queue_wait = job.accepted.elapsed();
        let started = Instant::now();
        let response = run_job(state, &job, queue_wait, &slot.beat);
        let settled = finish_job(state, &view, &response);
        if let Ok(mut active) = slot.active.lock() {
            *active = None;
        }
        slot.beat.fetch_add(1, Ordering::Relaxed);
        if settled {
            let elapsed = started.elapsed();
            let obs = &state.observer;
            obs.metrics().observe_duration("service.job_ns", elapsed);
            obs.metrics()
                .observe_duration("service.queue_wait_ns", queue_wait);
            // EMA with alpha 1/4, in integer microseconds: cheap,
            // lock-free, plenty for a backoff hint. Watchdog-settled jobs
            // are excluded — a wedged job's latency is not a queue signal.
            let sample_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
            let previous = state.ema_job_us.load(Ordering::Relaxed);
            let next = if previous == 0 {
                sample_us
            } else {
                previous - previous / 4 + sample_us / 4
            };
            state.ema_job_us.store(next, Ordering::Relaxed);
        }
    }
}

/// Per-slot watchdog bookkeeping.
struct Watch {
    last_beat: u64,
    changed_at: Instant,
    stage: Stage,
}

/// Where a stalled slot is in the escalation ladder.
enum Stage {
    /// Heartbeat moving (or not yet stalled for a full interval).
    Healthy,
    /// Stage one fired: the job's cancel token is set; waiting one more
    /// interval for the worker to honour it.
    Cancelled,
}

/// The supervisor: samples worker heartbeats every
/// [`Config::watchdog_interval`] and escalates a stall in two stages —
/// cancel the job cooperatively, then retire the worker, answer the job
/// with a typed error, and respawn. Exits once the server is draining
/// with nothing pending.
fn watchdog_loop(state: &Arc<State>) {
    let mut watches: HashMap<u64, Watch> = HashMap::new();
    loop {
        if state.draining.load(Ordering::SeqCst) && state.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        std::thread::sleep(state.config.watchdog_interval);
        let slots: Vec<Arc<WorkerSlot>> = match state.slots.lock() {
            Ok(slots) => slots.clone(),
            Err(_) => return,
        };
        watches.retain(|id, _| slots.iter().any(|s| s.id == *id));
        for slot in slots {
            let active = match slot.active.lock() {
                Ok(active) => active.clone(),
                Err(_) => continue,
            };
            let Some(job) = active else {
                watches.remove(&slot.id);
                continue;
            };
            let beat = slot.beat.load(Ordering::Relaxed);
            let watch = watches.entry(slot.id).or_insert_with(|| Watch {
                last_beat: beat,
                changed_at: Instant::now(),
                stage: Stage::Healthy,
            });
            if beat != watch.last_beat {
                watch.last_beat = beat;
                watch.changed_at = Instant::now();
                watch.stage = Stage::Healthy;
                continue;
            }
            if watch.changed_at.elapsed() < state.config.stall_after {
                continue;
            }
            match watch.stage {
                Stage::Healthy => {
                    // Stage one: cooperative. A live-but-slow worker honours
                    // this between shots and answers `cancelled` itself.
                    job.token.cancel();
                    state.observer.counter_add("supervisor.stuck_cancelled", 1);
                    watch.stage = Stage::Cancelled;
                    watch.changed_at = Instant::now();
                }
                Stage::Cancelled => {
                    // Stage two: the heartbeat ignored cancellation for a
                    // whole further interval — the worker is wedged inside
                    // a shot. Retire it (it must not serve jobs alongside
                    // its replacement if it ever wakes), answer its job
                    // with a typed supervisor error, detach its handle
                    // (joining a wedged thread would hang the drain), and
                    // respawn a fresh worker.
                    slot.retired.store(true, Ordering::SeqCst);
                    let response = Response::Error {
                        id: Some(job.id.clone()),
                        detail: format!(
                            "supervisor: worker stalled beyond {:?} and was replaced; \
                             job abandoned after {} shots requested",
                            state.config.stall_after, job.shots
                        ),
                    };
                    finish_job(state, &job, &response);
                    if let Ok(mut slots) = state.slots.lock() {
                        slots.retain(|s| s.id != slot.id);
                    }
                    if let Ok(mut handles) = state.handles.lock() {
                        drop(handles.remove(&slot.id));
                    }
                    state.observer.counter_add("supervisor.respawns", 1);
                    watches.remove(&slot.id);
                    spawn_worker(state);
                }
            }
        }
    }
}

/// Transforms (through the cache) and simulates one job.
fn run_job(state: &Arc<State>, job: &Job, queue_wait: Duration, beat: &Arc<AtomicU64>) -> Response {
    let obs = &state.observer;
    let queue_ms = queue_wait.as_secs_f64() * 1e3;
    if job.token.is_cancelled() {
        obs.counter_add("service.cancelled", 1);
        return Response::Result(Box::new(JobOutcome {
            id: job.id.clone(),
            termination: Termination::Cancelled.to_string(),
            requested: job.shots,
            completed: 0,
            failed: 0,
            discarded: 0,
            counts: Vec::new(),
            cache_hit: false,
            queue_ms,
            run_ms: 0.0,
            tvd: 0.0,
        }));
    }
    let started = Instant::now();

    // Transform, through the content-hash cache.
    let key = cache_key(
        &job.circuit,
        &job.answer,
        &job.data,
        &job.ancilla,
        job.scheme,
    );
    let (transform, cache_hit) = match state.cache.get(key) {
        Some(hit) => {
            obs.counter_add("service.cache.hit", 1);
            (hit, true)
        }
        None => {
            obs.counter_add("service.cache.miss", 1);
            let result: Result<_, DqcError> = Pipeline::new()
                .scheme(job.scheme)
                .run(&job.circuit, &job.roles);
            match result {
                Ok(result) => {
                    let entry = Arc::new(CachedTransform {
                        circuit: result.dynamic.circuit().clone(),
                        tvd: result.report.tvd,
                    });
                    state.cache.insert(key, Arc::clone(&entry));
                    (entry, false)
                }
                Err(e) => {
                    obs.counter_add("service.errors", 1);
                    return Response::Error {
                        id: Some(job.id.clone()),
                        detail: format!("transform failed: {e}"),
                    };
                }
            }
        }
    };

    // Chaos scoping: a job-faulted job runs under a scoped per-shot hook;
    // everything else runs with no hook at all (bit-identical to a
    // chaos-free server).
    let mut executor = Executor::new()
        .shots(job.shots)
        .seed(job.seed)
        .threads(1)
        .deadline(job.deadline.saturating_sub(job.accepted.elapsed()))
        .cancel_token(job.token.clone())
        .heartbeat(Arc::clone(beat));
    if let Some(plan) = &state.config.chaos {
        let scope = job_scope_key(&job.id);
        let fault = plan.job_fault(scope);
        if fault.is_faulted() {
            obs.counter_add("service.chaos.faulted_jobs", 1);
            // The per-shot hook expresses exactly the job-level decision:
            // the two shot sites are cleared and the drawn faults
            // re-raised to certainty, so a panic-faulted job fails every
            // shot and a delay-only job stays bit-identical, just slow.
            let mut scoped = plan
                .scoped(scope)
                .with_rate(FaultSite::ShotPanic, 0.0)
                .with_rate(FaultSite::ShotDelay, 0.0);
            if fault.panic {
                scoped = scoped.with_rate(FaultSite::ShotPanic, 1.0);
            }
            if let Some(delay) = fault.delay {
                scoped = scoped
                    .with_rate(FaultSite::ShotDelay, 1.0)
                    .with_delay(delay);
            }
            executor = executor.fault_hook(Arc::new(scoped));
        }
    }

    let (counts, report) = executor.run_resilient(transform.circuit());
    match report.termination {
        Termination::Cancelled => obs.counter_add("service.cancelled", 1),
        Termination::Deadline => obs.counter_add("service.deadline", 1),
        _ => {}
    }
    obs.counter_add("service.completed", 1);
    Response::Result(Box::new(JobOutcome {
        id: job.id.clone(),
        termination: report.termination.to_string(),
        requested: report.requested,
        completed: report.completed,
        failed: report.failed,
        discarded: report.discarded,
        counts: counts
            .iter()
            .map(|(bits, n)| (bits.to_string(), n))
            .collect(),
        cache_hit,
        queue_ms,
        run_ms: started.elapsed().as_secs_f64() * 1e3,
        tvd: transform.tvd,
    }))
}

impl CachedTransform {
    /// The cached dynamic circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }
}
