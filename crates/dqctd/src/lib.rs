//! `dqctd` — a resilient batch simulation service for dynamic quantum
//! circuits.
//!
//! The daemon accepts QASM jobs over a length-prefixed TCP protocol (or
//! the same protocol over stdin/stdout with `--stdio`), runs each through
//! the `dqc` transform pipeline and the `qsim` resilient executor on a
//! bounded worker pool, and answers every request with a typed, framed
//! JSON response. The design goal is *graceful degradation*: under
//! overload the service sheds load with `rejected`/`queue-full` answers
//! carrying `retry_after_ms` backoff hints; under a drain (SIGTERM or the
//! `drain` verb) it stops admission and finishes — never drops — every
//! accepted job; per-job deadlines are lowered onto the executor's run
//! budgets so a stuck job returns a truthful partial result instead of
//! wedging a worker.
//!
//! Module map:
//! - [`protocol`] — wire format: frames, request parsing, response
//!   rendering, plus the string-scanning client-side field extractors.
//! - [`cache`] — the content-hash transform cache keyed on
//!   [`qcir::Circuit::content_hash`] + roles + scheme.
//! - [`journal`] — the crash-only write-ahead journal: durable admission
//!   and completion records, torn-tail recovery, the completion index
//!   behind idempotent retries.
//! - [`server`] — admission control, the worker pool, watchdog
//!   supervision, chaos scoping, drain semantics.
//!
//! The wire format and operational policies are specified in DESIGN.md
//! §14; durability and recovery in §15.

pub mod cache;
pub mod journal;
pub mod protocol;
pub mod server;

pub use cache::{cache_key, CachedTransform, TransformCache};
pub use journal::{FsyncPolicy, Journal, Recovery};
pub use protocol::{
    field_counts, field_str, field_u64, parse_request, read_frame, render_submit, write_frame,
    FrameError, JobOutcome, JobSpec, RejectReason, Request, Response, MAX_FRAME_BYTES,
};
pub use server::{job_scope_key, Config, Server};
