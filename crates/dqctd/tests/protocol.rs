//! Wire-format robustness: malformed frames, oversized length prefixes,
//! truncated payloads, and mid-job disconnects must yield a typed error
//! response or a clean close — never a panic, and never a wedged worker.
//! The seeded-corruption sweep extends the workspace's qfault chaos idiom
//! (deterministic, replayable fault draws) to the protocol layer.

use dqctd::{
    field_str, read_frame, render_submit, write_frame, Config, JobSpec, Server, MAX_FRAME_BYTES,
};
use qalgo::suites::toffoli_free_suite;
use qcir::qasm::to_qasm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut inner = self.0.lock().map_err(|_| io::Error::other("poisoned"))?;
        inner.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A sink whose connection is already gone: every write fails, the way a
/// client disconnecting mid-job looks to the worker pool.
struct BrokenPipe;

impl Write for BrokenPipe {
    fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
        Err(io::Error::from(io::ErrorKind::BrokenPipe))
    }

    fn flush(&mut self) -> io::Result<()> {
        Err(io::Error::from(io::ErrorKind::BrokenPipe))
    }
}

fn frames_of(bytes: &[u8]) -> Vec<String> {
    let mut reader = bytes;
    let mut frames = Vec::new();
    while let Ok(Some(payload)) = read_frame(&mut reader, MAX_FRAME_BYTES) {
        frames.push(String::from_utf8(payload).expect("responses are UTF-8"));
    }
    frames
}

fn wait_for_frames(buf: &SharedBuf, n: usize) -> Vec<String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let frames = frames_of(&buf.0.lock().expect("sink lock"));
        if frames.len() >= n {
            return frames;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {n} responses, have {}",
            frames.len()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn probe_submit(id: &str) -> Vec<u8> {
    let suite = toffoli_free_suite();
    let b = &suite[0];
    render_submit(&JobSpec {
        id: id.to_string(),
        shots: Some(8),
        seed: None,
        answer: b.roles.answer().iter().map(|q| q.index()).collect(),
        data: b.roles.data().iter().map(|q| q.index()).collect(),
        ancilla: b.roles.ancilla().iter().map(|q| q.index()).collect(),
        scheme: None,
        deadline_ms: None,
        qasm: to_qasm(&b.circuit),
    })
}

#[test]
fn oversized_length_prefix_answers_typed_error_then_closes() {
    let server = Server::start(Config {
        workers: 1,
        ..Config::default()
    });
    let sink = SharedBuf::default();
    // A 512 MiB announcement: rejected from the 4-byte prefix alone,
    // before any allocation, with a typed error naming the limit.
    let mut request = (512u32 << 20).to_be_bytes().to_vec();
    request.extend_from_slice(&[0u8; 64]);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let frames = wait_for_frames(&sink, 1);
    assert_eq!(frames.len(), 1, "close after the typed answer: {frames:?}");
    assert_eq!(field_str(&frames[0], "type"), Some("error"));
    assert!(frames[0].contains("limit"), "{}", frames[0]);
    server.join();
}

#[test]
fn truncated_frames_close_cleanly_without_a_response() {
    let server = Server::start(Config {
        workers: 1,
        ..Config::default()
    });
    // A framed "ping" is 8 bytes (4-byte prefix + 4-byte payload); every
    // cut lands mid-prefix or mid-payload.
    for cut in [1, 3, 4, 7] {
        let mut request = Vec::new();
        write_frame(&mut request, b"ping").expect("frame");
        request.truncate(cut);
        let sink = SharedBuf::default();
        server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
        let frames = frames_of(&sink.0.lock().expect("sink lock"));
        assert!(
            frames.is_empty(),
            "a frame cut at byte {cut} is a transport failure, not a request: {frames:?}"
        );
    }
    server.join();
}

#[test]
fn malformed_requests_answer_errors_and_the_connection_survives() {
    let server = Server::start(Config {
        workers: 1,
        ..Config::default()
    });
    let sink = SharedBuf::default();
    let mut request = Vec::new();
    write_frame(&mut request, b"\xff\xfe not UTF-8").expect("frame");
    write_frame(&mut request, b"launch-missiles now").expect("frame");
    write_frame(&mut request, b"submit\nshots nope\n\nx").expect("frame");
    write_frame(&mut request, b"ping").expect("frame");
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let frames = wait_for_frames(&sink, 4);
    assert_eq!(field_str(&frames[0], "type"), Some("error"));
    assert_eq!(field_str(&frames[1], "type"), Some("error"));
    assert_eq!(field_str(&frames[2], "type"), Some("error"));
    assert_eq!(
        field_str(&frames[3], "type"),
        Some("pong"),
        "the connection keeps serving after request-level errors"
    );
    server.join();
}

#[test]
fn mid_job_disconnect_does_not_wedge_the_worker_pool() {
    let server = Server::start(Config {
        workers: 1,
        ..Config::default()
    });
    // First connection submits a job and vanishes: the worker's response
    // write fails, which must be absorbed and accounted, not propagated.
    let request = {
        let mut out = Vec::new();
        write_frame(&mut out, &probe_submit("ghost")).expect("frame");
        out
    };
    server.serve_connection(&mut request.as_slice(), Box::new(BrokenPipe));
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.pending() > 0 {
        assert!(Instant::now() < deadline, "ghost job never finished");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        server.metrics_json().contains("service.disconnects"),
        "the failed response write is accounted: {}",
        server.metrics_json()
    );
    // A second connection is served normally by the same (sole) worker.
    let sink = SharedBuf::default();
    let request = {
        let mut out = Vec::new();
        write_frame(&mut out, &probe_submit("alive")).expect("frame");
        out
    };
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let frames = wait_for_frames(&sink, 1);
    assert_eq!(field_str(&frames[0], "type"), Some("result"));
    assert_eq!(field_str(&frames[0], "termination"), Some("completed"));
    server.join();
}

#[test]
fn seeded_wire_corruption_never_panics_and_always_answers_typed() {
    let server = Server::start(Config {
        workers: 2,
        queue_capacity: 512,
        ..Config::default()
    });
    let pristine = probe_submit("fuzz");
    let mut rng = StdRng::seed_from_u64(0xF022_0000_0D9C_7D17);
    for round in 0..200 {
        let mut payload = pristine.clone();
        match round % 4 {
            // Byte flips anywhere in the payload.
            0 => {
                for _ in 0..rng.gen_range(1usize..8) {
                    let at = rng.gen_range(0usize..payload.len());
                    payload[at] ^= 1 << rng.gen_range(0u32..8) as u8;
                }
            }
            // Truncation at an arbitrary point.
            1 => payload.truncate(rng.gen_range(0usize..payload.len())),
            // Random binary garbage of random length.
            2 => {
                let len = rng.gen_range(1usize..256);
                payload = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
            }
            // Header lines shuffled into the QASM body.
            _ => {
                let at = rng.gen_range(0usize..payload.len());
                payload.rotate_left(at);
            }
        }
        let mut request = Vec::new();
        write_frame(&mut request, &payload).expect("frame");
        // Every fourth round additionally corrupts the length prefix.
        if round % 4 == 3 && request.len() >= 4 {
            request[rng.gen_range(0usize..4)] ^= 0xff;
        }
        let sink = SharedBuf::default();
        server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
        // Whatever came back (possibly nothing, for transport-level
        // corruption) parses as typed frames.
        let deadline = Instant::now() + Duration::from_secs(60);
        while server.pending() > 0 {
            assert!(
                Instant::now() < deadline,
                "round {round}: job never finished"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        for frame in frames_of(&sink.0.lock().expect("sink lock")) {
            let kind = field_str(&frame, "type").expect("typed response");
            assert!(
                ["result", "rejected", "error", "pong", "draining", "metrics"].contains(&kind),
                "round {round}: unexpected response {frame}"
            );
        }
    }
    server.join();
}
