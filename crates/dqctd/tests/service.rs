//! End-to-end service tests over the in-memory transport (the same
//! `serve_connection` the TCP and stdio transports drive), plus one real
//! TCP round trip: submission, caching, load shedding, cancellation,
//! deadlines, drain, and the chaos drill.

use dqctd::{
    field_counts, field_str, field_u64, job_scope_key, read_frame, render_submit, write_frame,
    Config, FsyncPolicy, JobSpec, Journal, Server, MAX_FRAME_BYTES,
};
use qalgo::suites::toffoli_free_suite;
use qcir::qasm::to_qasm;
use qfault::FaultPlan;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A response sink shared with the worker pool, snapshot-readable from
/// the test thread.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut inner = self.0.lock().map_err(|_| io::Error::other("poisoned"))?;
        inner.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Splits a raw response byte stream back into JSON payload strings.
fn frames_of(bytes: &[u8]) -> Vec<String> {
    let mut reader = bytes;
    let mut frames = Vec::new();
    while let Ok(Some(payload)) = read_frame(&mut reader, MAX_FRAME_BYTES) {
        frames.push(String::from_utf8(payload).expect("responses are UTF-8"));
    }
    frames
}

/// Polls the shared sink until `n` complete response frames arrived.
fn wait_for_frames(buf: &SharedBuf, n: usize) -> Vec<String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let frames = frames_of(&buf.0.lock().expect("sink lock"));
        if frames.len() >= n {
            return frames;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {n} responses, have {}: {frames:?}",
            frames.len()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The response frame answering job `id`, if any.
fn response_for<'a>(frames: &'a [String], id: &str) -> Option<&'a String> {
    frames.iter().find(|f| field_str(f, "id") == Some(id))
}

/// The first toffoli-free benchmark as (qasm, answer, data, ancilla).
fn probe_job() -> (String, Vec<usize>, Vec<usize>, Vec<usize>) {
    let suite = toffoli_free_suite();
    let b = &suite[0];
    (
        to_qasm(&b.circuit),
        b.roles.answer().iter().map(|q| q.index()).collect(),
        b.roles.data().iter().map(|q| q.index()).collect(),
        b.roles.ancilla().iter().map(|q| q.index()).collect(),
    )
}

fn spec(id: &str, shots: u64) -> JobSpec {
    let (qasm, answer, data, ancilla) = probe_job();
    JobSpec {
        id: id.to_string(),
        shots: Some(shots),
        seed: None,
        answer,
        data,
        ancilla,
        scheme: None,
        deadline_ms: None,
        qasm,
    }
}

fn framed(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in payloads {
        write_frame(&mut out, p).expect("frame");
    }
    out
}

#[test]
fn submit_runs_and_second_identical_job_hits_the_cache() {
    let server = Server::start(Config::default());
    let sink = SharedBuf::default();
    let request = framed(&[
        render_submit(&spec("j1", 64)),
        render_submit(&spec("j2", 64)),
    ]);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let frames = wait_for_frames(&sink, 2);
    let first = response_for(&frames, "j1").expect("j1 answered");
    let second = response_for(&frames, "j2").expect("j2 answered");
    for frame in [first, second] {
        assert_eq!(field_str(frame, "type"), Some("result"), "{frame}");
        assert_eq!(field_str(frame, "termination"), Some("completed"));
        assert_eq!(field_u64(frame, "completed"), Some(64));
    }
    // Same circuit + roles + scheme + seed: the transform comes from the
    // cache and the counts are bit-identical.
    let caches: Vec<_> = [first, second]
        .iter()
        .map(|f| field_str(f, "cache"))
        .collect();
    assert!(
        caches.contains(&Some("hit")),
        "one of the two identical jobs must hit the cache: {caches:?}"
    );
    assert_eq!(field_counts(first), field_counts(second));
    server.join();
}

#[test]
fn overload_sheds_typed_rejections_and_answers_every_accepted_job() {
    // One worker, a one-slot queue, and every job slowed by an injected
    // 40 ms/shot delay: submissions outrun service capacity immediately.
    let chaos = FaultPlan::parse("seed=3,delay=1.0,delay-ms=40").expect("spec");
    let server = Server::start(Config {
        workers: 1,
        queue_capacity: 1,
        chaos: Some(chaos),
        ..Config::default()
    });
    let sink = SharedBuf::default();
    let payloads: Vec<Vec<u8>> = (0..6)
        .map(|i| render_submit(&spec(&format!("burst-{i}"), 4)))
        .collect();
    let request = framed(&payloads);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let frames = wait_for_frames(&sink, 6);
    let rejected: Vec<_> = frames
        .iter()
        .filter(|f| field_str(f, "type") == Some("rejected"))
        .collect();
    let results: Vec<_> = frames
        .iter()
        .filter(|f| field_str(f, "type") == Some("result"))
        .collect();
    assert_eq!(rejected.len() + results.len(), 6, "{frames:?}");
    assert!(!rejected.is_empty(), "a 6-job burst must shed: {frames:?}");
    assert!(!results.is_empty(), "accepted jobs must finish: {frames:?}");
    for frame in &rejected {
        assert_eq!(field_str(frame, "reason"), Some("queue-full"));
        assert!(
            field_u64(frame, "retry_after_ms").is_some(),
            "shed responses carry a backoff hint: {frame}"
        );
    }
    server.join();
    assert_eq!(server.pending(), 0, "no accepted job left unanswered");
}

#[test]
fn cancellation_reaches_queued_and_running_jobs() {
    let chaos = FaultPlan::parse("seed=3,delay=1.0,delay-ms=30").expect("spec");
    let server = Server::start(Config {
        workers: 1,
        chaos: Some(chaos),
        ..Config::default()
    });
    let sink = SharedBuf::default();
    let mut slow = spec("victim", 1000);
    slow.deadline_ms = Some(60_000);
    let request = framed(&[
        render_submit(&slow),
        b"cancel victim".to_vec(),
        b"cancel no-such-job".to_vec(),
    ]);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let frames = wait_for_frames(&sink, 2);
    let victim = response_for(&frames, "victim").expect("victim answered");
    assert_eq!(field_str(victim, "type"), Some("result"));
    assert_eq!(field_str(victim, "termination"), Some("cancelled"));
    let completed = field_u64(victim, "completed").expect("completed field");
    assert!(
        completed < 1000,
        "a cancelled 30 ms/shot job cannot have finished: {victim}"
    );
    let unknown = response_for(&frames, "no-such-job").expect("unknown id answered");
    assert_eq!(field_str(unknown, "type"), Some("error"));
    server.join();
}

#[test]
fn deadlines_bound_slow_jobs_with_partial_results() {
    let chaos = FaultPlan::parse("seed=3,delay=1.0,delay-ms=20").expect("spec");
    let server = Server::start(Config {
        workers: 1,
        chaos: Some(chaos),
        ..Config::default()
    });
    let sink = SharedBuf::default();
    let mut slow = spec("sluggish", 1000);
    slow.deadline_ms = Some(150);
    let request = framed(&[render_submit(&slow)]);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let frames = wait_for_frames(&sink, 1);
    let frame = &frames[0];
    assert_eq!(field_str(frame, "type"), Some("result"), "{frame}");
    assert_eq!(field_str(frame, "termination"), Some("deadline"));
    let completed = field_u64(frame, "completed").expect("completed field");
    assert!(
        completed < 1000,
        "a 20 s job under a 150 ms deadline must return a partial: {frame}"
    );
    server.join();
}

#[test]
fn drain_stops_admission_but_finishes_accepted_work() {
    let server = Server::start(Config {
        workers: 1,
        ..Config::default()
    });
    let sink = SharedBuf::default();
    let request = framed(&[
        render_submit(&spec("before-1", 32)),
        render_submit(&spec("before-2", 32)),
        b"drain".to_vec(),
        render_submit(&spec("after", 32)),
    ]);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    assert!(server.is_draining());
    server.join();
    assert_eq!(server.pending(), 0);
    let frames = wait_for_frames(&sink, 4);
    for id in ["before-1", "before-2"] {
        let frame = response_for(&frames, id).expect("accepted job answered");
        assert_eq!(field_str(frame, "type"), Some("result"), "{frame}");
        assert_eq!(field_str(frame, "termination"), Some("completed"));
    }
    let after = response_for(&frames, "after").expect("post-drain submission answered");
    assert_eq!(field_str(after, "type"), Some("rejected"));
    assert_eq!(field_str(after, "reason"), Some("draining"));
    assert!(frames.iter().any(|f| f.contains("\"type\":\"draining\"")));
}

#[test]
fn chaos_drill_faults_exactly_the_predicted_jobs_and_spares_the_rest() {
    // The faulted set is a pure function of (plan seed, job id): the
    // drill computes it client-side and checks the server agrees job by
    // job — panics surface as isolated failed shots, everything else is
    // bit-identical to a fault-free server.
    let plan = FaultPlan::parse("seed=9,panic=0.2").expect("spec");
    let ids: Vec<String> = (0..24).map(|i| format!("drill-{i}")).collect();
    let run = |chaos: Option<FaultPlan>| {
        let server = Server::start(Config {
            chaos,
            ..Config::default()
        });
        let sink = SharedBuf::default();
        let payloads: Vec<Vec<u8>> = ids.iter().map(|id| render_submit(&spec(id, 32))).collect();
        let request = framed(&payloads);
        server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
        let frames = wait_for_frames(&sink, ids.len());
        server.join();
        frames
    };
    let clean = run(None);
    let chaotic = run(Some(plan.clone()));
    let faulted: Vec<bool> = ids
        .iter()
        .map(|id| plan.job_fault(job_scope_key(id)).is_faulted())
        .collect();
    assert!(
        faulted.iter().any(|&f| f) && !faulted.iter().all(|&f| f),
        "a 20% rate over 24 jobs should fault some but not all: {faulted:?}"
    );
    for (id, &is_faulted) in ids.iter().zip(&faulted) {
        let clean_frame = response_for(&clean, id).expect("fault-free answer");
        let chaos_frame = response_for(&chaotic, id).expect("chaos answer");
        assert_eq!(field_str(chaos_frame, "type"), Some("result"));
        if is_faulted {
            let failed = field_u64(chaos_frame, "failed").expect("failed field");
            assert!(
                failed > 0,
                "faulted {id} must report failed shots: {chaos_frame}"
            );
        } else {
            assert_eq!(field_u64(chaos_frame, "failed"), Some(0));
            assert_eq!(
                field_counts(clean_frame),
                field_counts(chaos_frame),
                "unfaulted {id} must be bit-identical to the fault-free run"
            );
        }
    }
}

fn temp_journal(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "dqctd-service-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn restart_serves_completed_jobs_byte_identically_from_the_journal() {
    let path = temp_journal("dedup");
    let journalled = |id: &str| {
        let server = Server::start(Config {
            journal: Some(path.clone()),
            fsync: FsyncPolicy::Always,
            ..Config::default()
        });
        let sink = SharedBuf::default();
        let request = framed(&[render_submit(&spec(id, 64))]);
        server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
        let frames = wait_for_frames(&sink, 1);
        server.join();
        frames[0].clone()
    };
    let first = journalled("replay-me");
    assert_eq!(field_str(&first, "termination"), Some("completed"));
    // A fresh process, the same journal, the same client job id: the
    // recorded response is served verbatim — byte-identical, including
    // the original timings — with no re-run.
    let retried = journalled("replay-me");
    assert_eq!(first, retried, "dedup must serve the recorded bytes");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn restart_replays_admitted_but_unanswered_jobs_deterministically() {
    let path = temp_journal("replay");
    let mut lost = spec("lost-at-crash", 64);
    lost.seed = Some(41);
    // Simulate a crash after admission: the journal holds the admitted
    // record with no matching completion (exactly what a SIGKILL between
    // admit and respond leaves behind).
    {
        let (journal, recovery) = Journal::open(&path, FsyncPolicy::Always).expect("open");
        assert_eq!(recovery.records, 0);
        journal.append_admitted(&lost).expect("journal admission");
    }
    // Restarting the service replays the job through the normal pipeline;
    // once pending drains, the completion index answers a retry.
    let server = Server::start(Config {
        journal: Some(path.clone()),
        ..Config::default()
    });
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.pending() > 0 {
        assert!(Instant::now() < deadline, "replayed job never finished");
        std::thread::sleep(Duration::from_millis(5));
    }
    let metrics = server.metrics_json();
    assert!(
        metrics.contains("journal.replayed"),
        "replay must be counted: {metrics}"
    );
    let sink = SharedBuf::default();
    let request = framed(&[render_submit(&lost)]);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let replayed = wait_for_frames(&sink, 1)[0].clone();
    server.join();
    // The replayed outcome is bit-identical to running the same spec on a
    // journal-less server: same seed, same counter-based RNG, same counts.
    let server = Server::start(Config::default());
    let sink = SharedBuf::default();
    let request = framed(&[render_submit(&lost)]);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let direct = wait_for_frames(&sink, 1)[0].clone();
    server.join();
    assert_eq!(field_str(&replayed, "termination"), Some("completed"));
    assert_eq!(
        field_counts(&replayed),
        field_counts(&direct),
        "replayed: {replayed}\ndirect: {direct}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn duplicate_in_flight_ids_are_rejected_not_raced() {
    let chaos = FaultPlan::parse("seed=3,delay=1.0,delay-ms=20").expect("spec");
    let server = Server::start(Config {
        workers: 1,
        chaos: Some(chaos),
        ..Config::default()
    });
    let sink = SharedBuf::default();
    let request = framed(&[
        render_submit(&spec("dup", 200)),
        render_submit(&spec("dup", 200)),
    ]);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let frames = wait_for_frames(&sink, 2);
    let rejected = frames
        .iter()
        .find(|f| field_str(f, "type") == Some("rejected"))
        .expect("second submission rejected");
    assert!(
        rejected.contains("already in flight"),
        "typed duplicate rejection: {rejected}"
    );
    assert!(
        frames
            .iter()
            .any(|f| field_str(f, "type") == Some("result")),
        "first submission still answered: {frames:?}"
    );
    server.join();
}

#[test]
fn memory_admission_sheds_jobs_the_statevector_budget_cannot_hold() {
    let suite = toffoli_free_suite();
    let qubits = suite[0].circuit.num_qubits();
    let bytes = 16u64 << qubits;
    // A budget one byte short of a single statevector: every job is too
    // large on its own, before any allocation happens.
    let server = Server::start(Config {
        max_inflight_bytes: bytes - 1,
        ..Config::default()
    });
    let sink = SharedBuf::default();
    let request = framed(&[render_submit(&spec("heavy", 16))]);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let frames = wait_for_frames(&sink, 1);
    assert_eq!(field_str(&frames[0], "type"), Some("rejected"));
    assert_eq!(field_str(&frames[0], "reason"), Some("too-large"));
    assert!(
        frames[0].contains("memory budget"),
        "typed memory rejection: {}",
        frames[0]
    );
    server.join();

    // A budget that holds exactly one job: the second concurrent
    // submission sheds as queue-full (retryable) while the first runs.
    let chaos = FaultPlan::parse("seed=3,delay=1.0,delay-ms=20").expect("spec");
    let server = Server::start(Config {
        workers: 1,
        max_inflight_bytes: bytes,
        chaos: Some(chaos),
        ..Config::default()
    });
    let sink = SharedBuf::default();
    let request = framed(&[
        render_submit(&spec("fits", 200)),
        render_submit(&spec("overflows", 16)),
    ]);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let frames = wait_for_frames(&sink, 2);
    let shed = response_for(&frames, "overflows").expect("second job answered");
    assert_eq!(field_str(shed, "type"), Some("rejected"));
    assert_eq!(field_str(shed, "reason"), Some("queue-full"));
    assert!(
        field_u64(shed, "retry_after_ms").is_some(),
        "memory shedding is retryable: {shed}"
    );
    server.join();
    let metrics = server.metrics_json();
    assert!(
        metrics.contains("service.rejected.memory"),
        "memory shed must be counted: {metrics}"
    );
}

#[test]
fn cold_start_backoff_hint_is_seeded_and_clamped() {
    // No job has ever completed, so the latency EMA is empty: the hint
    // must come from the cold-start seed (50 ms / 2 workers = 25 ms),
    // not from a zero EMA.
    let server = Server::start(Config {
        workers: 2,
        queue_capacity: 0,
        ..Config::default()
    });
    let sink = SharedBuf::default();
    let request = framed(&[render_submit(&spec("cold", 16))]);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let frames = wait_for_frames(&sink, 1);
    assert_eq!(field_str(&frames[0], "reason"), Some("queue-full"));
    assert_eq!(
        field_u64(&frames[0], "retry_after_ms"),
        Some(25),
        "cold-start hint: {}",
        frames[0]
    );
    server.join();
}

#[test]
fn watchdog_replaces_a_wedged_worker_and_fails_its_job_with_a_typed_reason() {
    // A 2 s per-shot injected delay freezes the worker's heartbeat far
    // beyond the 150 ms stall threshold; the watchdog first cancels
    // (ignored — the worker is asleep inside the shot), then retires the
    // worker, answers its job with a supervisor error, and respawns. The
    // unfaulted job then completes on the replacement worker.
    let plan = FaultPlan::parse("seed=5,delay=0.5,delay-ms=2000").expect("spec");
    let faulted_of = |want: bool| {
        (0..64)
            .map(|i| format!("probe-{i}"))
            .find(|id| plan.job_fault(job_scope_key(id)).is_faulted() == want)
            .expect("a 50% rate over 64 ids hits both outcomes")
    };
    let stuck = faulted_of(true);
    let healthy = faulted_of(false);
    let server = Server::start(Config {
        workers: 1,
        chaos: Some(plan.clone()),
        stall_after: Duration::from_millis(150),
        watchdog_interval: Duration::from_millis(25),
        ..Config::default()
    });
    let sink = SharedBuf::default();
    let request = framed(&[
        render_submit(&spec(&stuck, 8)),
        render_submit(&spec(&healthy, 8)),
    ]);
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    let frames = wait_for_frames(&sink, 2);
    let failed = response_for(&frames, &stuck).expect("stuck job answered");
    assert_eq!(field_str(failed, "type"), Some("error"), "{failed}");
    assert!(
        failed.contains("supervisor"),
        "typed supervision reason: {failed}"
    );
    let done = response_for(&frames, &healthy).expect("healthy job answered");
    assert_eq!(field_str(done, "type"), Some("result"), "{done}");
    assert_eq!(field_str(done, "termination"), Some("completed"));
    server.join();
    let metrics = server.metrics_json();
    assert!(
        metrics.contains("supervisor.respawns") && metrics.contains("supervisor.stuck_cancelled"),
        "supervision must be counted: {metrics}"
    );
}

#[test]
fn tcp_transport_round_trips_ping_submit_and_metrics() {
    use std::net::{TcpListener, TcpStream};

    let server = Server::start(Config::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let acceptor = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = stream.try_clone().expect("clone stream");
            server.serve_connection(&mut reader, Box::new(stream));
        })
    };
    let mut client = TcpStream::connect(addr).expect("connect");
    write_frame(&mut client, b"ping").expect("send ping");
    write_frame(&mut client, &render_submit(&spec("tcp-1", 16))).expect("send submit");
    write_frame(&mut client, b"metrics").expect("send metrics");
    let mut seen = Vec::new();
    for _ in 0..3 {
        let payload = read_frame(&mut client, MAX_FRAME_BYTES)
            .expect("read response")
            .expect("response present");
        seen.push(String::from_utf8(payload).expect("utf8"));
    }
    drop(client);
    acceptor.join().expect("acceptor thread");
    assert!(
        seen.iter().any(|f| f.contains("\"type\":\"pong\"")),
        "{seen:?}"
    );
    assert!(
        seen.iter().any(|f| field_str(f, "id") == Some("tcp-1")
            && field_str(f, "termination") == Some("completed")),
        "{seen:?}"
    );
    assert!(
        seen.iter()
            .any(|f| f.contains("\"type\":\"metrics\"") && f.contains("service.accepted")),
        "{seen:?}"
    );
    server.join();
}
