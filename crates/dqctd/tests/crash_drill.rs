//! The crash drill: SIGKILL a real `dqctd` process mid-burst and prove
//! the journal brings every admitted job back — replayed bit-identically
//! through the deterministic pipeline, served byte-identically to
//! idempotent retries, across process and restart boundaries.

#![cfg(unix)]

use dqctd::{
    field_counts, field_str, read_frame, render_submit, write_frame, Config, JobSpec, Server,
    MAX_FRAME_BYTES,
};
use qalgo::suites::toffoli_free_suite;
use qcir::qasm::to_qasm;
use std::io::{self, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn temp_file(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dqctd-crash-drill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn spec(id: &str) -> JobSpec {
    let suite = toffoli_free_suite();
    let b = &suite[0];
    JobSpec {
        id: id.to_string(),
        shots: Some(300),
        seed: Some(17),
        answer: b.roles.answer().iter().map(|q| q.index()).collect(),
        data: b.roles.data().iter().map(|q| q.index()).collect(),
        ancilla: b.roles.ancilla().iter().map(|q| q.index()).collect(),
        scheme: None,
        deadline_ms: Some(120_000),
        qasm: to_qasm(&b.circuit),
    }
}

/// Boots a dqctd child on an ephemeral port and waits for the port file.
fn boot(journal: &Path, extra: &[&str]) -> (Child, u16) {
    let port_file = temp_file("port");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dqctd"));
    cmd.args([
        "--addr",
        "127.0.0.1:0",
        "--port-file",
        port_file.to_str().expect("utf8 path"),
        "--journal",
        journal.to_str().expect("utf8 path"),
        "--fsync",
        "always",
        "--workers",
        "1",
    ])
    .args(extra)
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    let child = cmd.spawn().expect("spawn dqctd");
    let deadline = Instant::now() + Duration::from_secs(60);
    let port = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse::<u16>() {
                break port;
            }
        }
        assert!(Instant::now() < deadline, "dqctd never wrote its port");
        std::thread::sleep(Duration::from_millis(10));
    };
    let _ = std::fs::remove_file(&port_file);
    (child, port)
}

fn connect(port: u16) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(stream) = TcpStream::connect(("127.0.0.1", port)) {
            return stream;
        }
        assert!(Instant::now() < deadline, "cannot connect to dqctd");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Submits `id` and reads until its own answer arrives; retries while the
/// replay of the same id is still in flight.
fn fetch_result(port: u16, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let mut stream = connect(port);
        write_frame(&mut stream, &render_submit(&spec(id))).expect("send submit");
        let answer = loop {
            let frame = read_frame(&mut stream, MAX_FRAME_BYTES)
                .expect("read response")
                .expect("response present");
            let text = String::from_utf8(frame).expect("utf8");
            if field_str(&text, "id") == Some(id) {
                break text;
            }
        };
        if field_str(&answer, "type") == Some("result") {
            return answer;
        }
        // Still replaying: the duplicate-id rejection means an earlier
        // (journalled) admission owns the id — exactly the client's
        // "already in flight" retry story.
        assert!(
            answer.contains("already in flight"),
            "unexpected answer for {id}: {answer}"
        );
        assert!(Instant::now() < deadline, "{id} never finished replaying");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A shared sink for the in-process reference server.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut inner = self.0.lock().map_err(|_| io::Error::other("poisoned"))?;
        inner.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn sigkill_mid_burst_replays_every_admitted_job_bit_identically() {
    let journal = temp_file("journal");
    let ids = ["drill-a", "drill-b", "drill-c"];

    // Phase 1: boot with a 50 ms/shot injected delay — 300 shots per job
    // cannot finish before the kill — submit the burst, and confirm
    // admission reached the journal (the pong answers only after every
    // earlier frame on the connection was dispatched; fsync=always makes
    // each admission durable before it is queued).
    let (mut victim, port) = boot(&journal, &["--inject", "seed=3,delay=1.0,delay-ms=50"]);
    {
        let mut stream = connect(port);
        for id in &ids {
            write_frame(&mut stream, &render_submit(&spec(id))).expect("send submit");
        }
        write_frame(&mut stream, b"ping").expect("send ping");
        let frame = read_frame(&mut stream, MAX_FRAME_BYTES)
            .expect("read pong")
            .expect("pong present");
        let text = String::from_utf8(frame).expect("utf8");
        assert!(text.contains("\"type\":\"pong\""), "{text}");
    }
    victim.kill().expect("SIGKILL dqctd");
    let _ = victim.wait();

    // Phase 2: restart on the same journal, chaos-free. Every admitted
    // job replays through the deterministic pipeline; retries under the
    // same ids collect the results.
    let (mut revived, port) = boot(&journal, &[]);
    let replayed: Vec<String> = ids.iter().map(|id| fetch_result(port, id)).collect();
    for (id, answer) in ids.iter().zip(&replayed) {
        assert_eq!(
            field_str(answer, "termination"),
            Some("completed"),
            "{answer}"
        );
        assert_eq!(field_str(answer, "id"), Some(*id));
    }
    // A second retry in the same process is served from the completion
    // index byte-for-byte.
    for (id, answer) in ids.iter().zip(&replayed) {
        assert_eq!(&fetch_result(port, id), answer, "same-process dedup");
    }
    let mut stream = connect(port);
    write_frame(&mut stream, b"drain").expect("send drain");
    let _ = revived.wait();

    // Phase 3: a third process on the same journal serves the recorded
    // responses byte-identically — recovery across two crash boundaries.
    let (mut archive, port) = boot(&journal, &[]);
    for (id, answer) in ids.iter().zip(&replayed) {
        assert_eq!(&fetch_result(port, id), answer, "cross-restart dedup");
    }
    let mut stream = connect(port);
    write_frame(&mut stream, b"drain").expect("send drain");
    let _ = archive.wait();

    // The replayed counts are bit-identical to the same spec on a fresh
    // in-process server that never crashed: recovery is a pure re-run.
    let server = Server::start(Config::default());
    let sink = SharedBuf::default();
    let mut request = Vec::new();
    write_frame(&mut request, &render_submit(&spec("reference"))).expect("frame");
    server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
    server.join();
    let reference = {
        let bytes = sink.0.lock().expect("sink lock");
        let mut reader = bytes.as_slice();
        let frame = read_frame(&mut reader, MAX_FRAME_BYTES)
            .expect("read reference")
            .expect("reference present");
        String::from_utf8(frame).expect("utf8")
    };
    for answer in &replayed {
        assert_eq!(
            field_counts(answer),
            field_counts(&reference),
            "replayed counts must match a crash-free run\nreplayed: {answer}\nreference: {reference}"
        );
    }
    let _ = std::fs::remove_file(&journal);
}
