//! Property-based durability tests for the crash-only journal: arbitrary
//! job specs — including circuits gated on majority-voted conditions,
//! the richest thing the QASM wire format carries — survive the
//! append → crash → recover cycle exactly, and a tail torn at *every*
//! byte offset recovers the longest valid record prefix.

use dqctd::{FsyncPolicy, JobSpec, Journal};
use proptest::prelude::*;
use qcir::qasm::{from_qasm, to_qasm};
use qcir::{Circuit, Clbit, Condition, Gate, Instruction, Qubit};
use std::collections::HashSet;
use std::path::PathBuf;

const NQ: usize = 3;
const NC: usize = 5;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "dqctd-journal-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Job-id alphabet, deliberately including JSON-hostile characters: the
/// journal stores the rendered submission, so escaping must round-trip.
const ID_CHARS: &[u8] =
    br#"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.:"\{} "#;

fn arb_id() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..ID_CHARS.len(), 1..24).prop_map(|xs| {
        let id: String = xs.into_iter().map(|i| ID_CHARS[i] as char).collect();
        // The protocol's header parser trims values, so ids made only of
        // (or padded with) whitespace are not wire-representable: the
        // property covers exactly what a client can actually submit.
        let id = id.trim();
        if id.is_empty() {
            "all-spaces".to_string()
        } else {
            id.to_string()
        }
    })
}

/// One dynamic-circuit operation; `VotedX` classically controls a gate on
/// a 3-member majority-vote group.
#[derive(Debug, Clone)]
enum Op {
    H(usize),
    Cx(usize, usize),
    Measure(usize, usize),
    VotedX {
        qubit: usize,
        base: usize,
        value: bool,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..NQ).prop_map(Op::H),
        (0usize..NQ, 0usize..NQ - 1).prop_map(|(a, b)| {
            let b = if b >= a { b + 1 } else { b };
            Op::Cx(a, b)
        }),
        (0usize..NQ, 0usize..NC).prop_map(|(q, c)| Op::Measure(q, c)),
        (0usize..NQ, 0usize..NC, any::<bool>()).prop_map(|(qubit, base, value)| Op::VotedX {
            qubit,
            base,
            value
        }),
    ]
}

fn circuit_of(ops: &[Op]) -> Circuit {
    let mut c = Circuit::new(NQ, NC);
    for op in ops {
        match *op {
            Op::H(q) => {
                c.h(Qubit::new(q));
            }
            Op::Cx(a, b) => {
                c.cx(Qubit::new(a), Qubit::new(b));
            }
            Op::Measure(q, bit) => {
                c.measure(Qubit::new(q), Clbit::new(bit));
            }
            Op::VotedX { qubit, base, value } => {
                let group = vec![
                    Clbit::new(base),
                    Clbit::new((base + 1) % NC),
                    Clbit::new((base + 2) % NC),
                ];
                c.push(
                    Instruction::gate(Gate::X, vec![Qubit::new(qubit)])
                        .with_condition(Condition::voted(vec![group], u64::from(value))),
                );
            }
        }
    }
    // Every generated circuit carries at least one genuinely voted
    // condition, so the property never degenerates to plain-bit specs.
    c.push(
        Instruction::gate(Gate::X, vec![Qubit::new(0)]).with_condition(Condition::voted(
            vec![vec![Clbit::new(0), Clbit::new(1), Clbit::new(2)]],
            1,
        )),
    );
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn specs_survive_the_journal_exactly(
        ids in proptest::collection::vec(arb_id(), 1..5),
        ops in proptest::collection::vec(arb_op(), 0..10),
        shots in 1u64..1_048_576,
        seed in any::<u64>(),
        complete_mask in 0usize..16,
    ) {
        let circuit = circuit_of(&ops);
        prop_assert_eq!(circuit.validate(), Ok(()));
        let qasm = to_qasm(&circuit);
        // The replay path re-parses the journalled QASM: the voted
        // circuit must survive its own render/parse cycle first.
        let reparsed = from_qasm(&qasm).expect("generated QASM parses");
        prop_assert_eq!(reparsed.instructions(), circuit.instructions());

        let mut seen = HashSet::new();
        let specs: Vec<JobSpec> = ids
            .into_iter()
            .filter(|id| seen.insert(id.clone()))
            .enumerate()
            .map(|(i, id)| JobSpec {
                id,
                shots: Some(shots),
                seed: Some(seed),
                answer: vec![i % NQ],
                data: Vec::new(),
                ancilla: vec![(i + 1) % NQ],
                scheme: Some(["direct", "dynamic1", "dynamic2"][i % 3].to_string()),
                deadline_ms: Some(1 + 13 * i as u64),
                qasm: qasm.clone(),
            })
            .collect();

        let path = temp_path("roundtrip");
        {
            let (journal, recovery) =
                Journal::open(&path, FsyncPolicy::Off).expect("fresh open");
            prop_assert_eq!(recovery.records, 0);
            for spec in &specs {
                journal.append_admitted(spec).expect("append admission");
            }
            for (i, spec) in specs.iter().enumerate() {
                if complete_mask >> i & 1 == 1 {
                    let response = format!("{{\"type\":\"result\",\"n\":{i}}}");
                    journal
                        .append_completed(&spec.id, response.as_bytes())
                        .expect("append completion");
                }
            }
        }
        let (_journal, recovery) = Journal::open(&path, FsyncPolicy::Off).expect("reopen");
        prop_assert_eq!(recovery.truncated_bytes, 0);
        let expected: Vec<&JobSpec> = specs
            .iter()
            .enumerate()
            .filter(|(i, _)| complete_mask >> i & 1 == 0)
            .map(|(_, s)| s)
            .collect();
        prop_assert_eq!(recovery.incomplete.iter().collect::<Vec<_>>(), expected);
        for (i, spec) in specs.iter().enumerate() {
            let recorded = recovery.completed.get(&spec.id);
            if complete_mask >> i & 1 == 1 {
                let response = format!("{{\"type\":\"result\",\"n\":{i}}}");
                prop_assert_eq!(recorded.map(Vec::as_slice), Some(response.as_bytes()));
            } else {
                prop_assert_eq!(recorded, None);
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn a_tail_torn_at_every_byte_offset_recovers_the_valid_prefix() {
    let circuit = circuit_of(&[
        Op::Measure(0, 0),
        Op::VotedX {
            qubit: 1,
            base: 0,
            value: true,
        },
    ]);
    let spec = |id: &str| JobSpec {
        id: id.to_string(),
        shots: Some(64),
        seed: Some(7),
        answer: vec![0],
        data: vec![1],
        ancilla: vec![2],
        scheme: Some("dynamic2".into()),
        deadline_ms: Some(500),
        qasm: to_qasm(&circuit),
    };
    let path = temp_path("sweep");
    {
        let (journal, _) = Journal::open(&path, FsyncPolicy::Off).expect("open");
        journal.append_admitted(&spec("survivor")).expect("first");
        journal.append_admitted(&spec("casualty")).expect("second");
    }
    let full = std::fs::read(&path).expect("read back");
    let first_len = {
        let len = u32::from_be_bytes([full[0], full[1], full[2], full[3]]) as usize;
        4 + len + 4
    };
    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).expect("tear");
        let (journal, recovery) =
            Journal::open(&path, FsyncPolicy::Off).expect("reopen after tear");
        let (survivors, kept) = if cut >= first_len {
            (vec![spec("survivor")], first_len)
        } else {
            (Vec::new(), 0)
        };
        assert_eq!(recovery.incomplete, survivors, "cut at byte {cut}");
        assert_eq!(
            recovery.truncated_bytes,
            (cut - kept) as u64,
            "cut at byte {cut}"
        );
        assert_eq!(
            std::fs::metadata(&path).expect("stat").len(),
            kept as u64,
            "cut at byte {cut}: the torn tail must be physically truncated"
        );
        // The journal stays writable on the clean boundary after every tear.
        journal.append_admitted(&spec("appended")).expect("append");
        drop(journal);
        let (_j, recovery) = Journal::open(&path, FsyncPolicy::Off).expect("verify append");
        assert_eq!(
            recovery.incomplete.last(),
            Some(&spec("appended")),
            "cut at byte {cut}"
        );
        assert_eq!(recovery.truncated_bytes, 0, "cut at byte {cut}");
    }
    let _ = std::fs::remove_file(&path);
}
