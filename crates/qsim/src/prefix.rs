//! Prefix-sharing branch-tree shot engine.
//!
//! The per-shot executor re-evolves the statevector from `|0..0>` for every
//! shot, even though a (noise-eligible) dynamic circuit's evolution is fully
//! deterministic *between* stochastic events. This module evolves the state
//! **once** up to each stochastic branch point — a mid-circuit measurement,
//! a reset outcome, a readout-flip or reset-error draw — and forks the
//! amplitude branches into a binary decision tree. Each shot then *walks*
//! the tree on its own counter-derived RNG stream instead of re-running the
//! circuit, which turns the per-shot cost from "evolve the whole circuit"
//! into "a handful of `gen_bool` draws".
//!
//! # Determinism argument
//!
//! The per-shot executor's only RNG consumption on a tree-eligible run is a
//! fixed sequence of [`rand::Rng::gen_bool`] calls in instruction order:
//! one per measurement (against [`StateVector::measure_prob_one`]), one per
//! reset, plus one per measurement/reset when `readout_flip` /
//! `reset_error` is positive. `gen_bool(p)` consumes exactly one `next_u64`
//! regardless of `p`, so the *alignment* of draws is independent of the
//! probabilities. The tree stores, at every decision node, the same `p` the
//! per-shot path would compute at that point, and each shot walks the tree
//! calling `rng.gen_bool(node.p)` on a fresh
//! `StdRng::seed_from_u64(stream_seed(base, shot))`. Every draw therefore
//! sees the same RNG state and the same probability as the per-shot
//! executor, making the outcome sequence — and hence counts, memory rows
//! and tally counters — bit-identical by construction.
//!
//! Segments between branch points are evolved through the [`qcir::fuse`]
//! lowering: runs of adjacent small gates become single
//! [`StateVector::apply_matrix`] sweeps, while single gates pass through
//! the specialized `apply_gate` fast paths (bit-identical float ops to the
//! per-shot executor). Fusing a run reorders its floating-point operations,
//! which can move a downstream branch probability by an ulp; an outcome
//! only flips when a shot's uniform draw lands inside that ulp-wide window,
//! which the fixed-seed differential suite would surface deterministically.
//!
//! # Fallbacks
//!
//! Tree execution preserves per-shot semantics exactly or not at all:
//!
//! * **whole-run fallback** — the caller (see [`crate::Executor`]) keeps
//!   the per-shot path whenever a tracer, a [`crate::FaultHook`], gate/idle
//!   noise, a drift policy or a `max_failed` budget is installed, and
//!   whenever tree construction aborts (a non-finite branch probability,
//!   the node budget exceeded, or an interruption poll fired). Deadlines
//!   and [`crate::CancelToken`]s do *not* force the fallback: the tree
//!   build and the shot walk poll them cooperatively and an uninterrupted
//!   run stays bit-identical to the per-shot engine;
//! * **per-shot replay** — a walk that reaches a pruned branch (edge
//!   probability below [`BRANCH_EPS`]) re-runs *that shot* from scratch on
//!   a fresh per-shot RNG, which is bit-identical by definition.

use crate::counts::Distribution;
use crate::executor::RunTally;
use crate::noise::NoiseModel;
use crate::statevector::StateVector;
use qcir::{fuse, Circuit, FusedOp, FusionStats, OpKind};
use rand::Rng;

/// Edge probability below which a branch is not expanded: walks that land
/// on it replay their shot on the per-shot path instead. Leaf weights of an
/// unpruned tree sum to 1 within this epsilon.
pub const BRANCH_EPS: f64 = 1e-12;

/// Node budget (decision nodes + leaves). A circuit whose branch tree blows
/// past this — `k` independent fair measurements cost `2^k` leaves — is not
/// worth enumerating; the caller falls back to the per-shot loop.
pub const MAX_TREE_NODES: usize = 1 << 15;

/// Where a decision-node edge leads.
#[derive(Debug, Clone, Copy)]
enum NodeRef {
    /// Another `gen_bool` decision.
    Draw(u32),
    /// A fully resolved shot outcome.
    Leaf(u32),
    /// A pruned or impossible branch: replay the shot per-shot.
    Bail,
}

/// One `gen_bool(p)` event of the per-shot draw sequence.
#[derive(Debug)]
struct DrawNode {
    p: f64,
    on_false: NodeRef,
    on_true: NodeRef,
}

/// A fully resolved outcome: the classical register plus the tally delta
/// one shot landing here contributes.
#[derive(Debug)]
struct Leaf {
    classical: Vec<bool>,
    weight: f64,
    tally: RunTally,
}

/// What one shot's tree walk resolved to.
pub enum Walk {
    /// The shot landed on leaf `i` (index into the leaf table).
    Leaf(u32),
    /// The shot reached a pruned branch and must be replayed per-shot.
    Replay,
}

/// The branch tree of one circuit under one noise model.
#[derive(Debug)]
pub struct PrefixTree {
    nodes: Vec<DrawNode>,
    leaves: Vec<Leaf>,
    root: NodeRef,
    pruned: u64,
    fusion: FusionStats,
}

/// Whether `noise` keeps a run tree-eligible: gate and idle channels draw
/// *inside* the state evolution (per trajectory), which the shared-prefix
/// evolution cannot replicate, while `readout_flip` / `reset_error` are
/// plain `gen_bool` events the tree models as decision nodes. Out-of-range
/// probabilities are left to the per-shot path so they panic exactly as
/// they always did.
pub fn noise_is_tree_compatible(noise: &NoiseModel) -> bool {
    noise.gate_1q.is_none()
        && noise.gate_2q.is_none()
        && noise.idle.is_none()
        && (0.0..=1.0).contains(&noise.readout_flip)
        && (0.0..=1.0).contains(&noise.reset_error)
}

impl PrefixTree {
    /// Builds the branch tree for `circuit`, or `None` when construction
    /// aborts (non-finite branch probability, node budget exceeded) and the
    /// caller must keep the per-shot path.
    pub fn build(circuit: &Circuit, noise: &NoiseModel) -> Option<PrefixTree> {
        Self::build_polled(circuit, noise, || false)
    }

    /// [`PrefixTree::build`] with a cooperative interruption poll, consulted
    /// once per stochastic branch node. When `poll` returns `true` the
    /// build aborts and returns `None`; the caller falls back to the
    /// per-shot loop, whose own budget checks then terminate the run
    /// immediately. This is how a cancelled or already-deadline-expired job
    /// avoids paying for a tree it will never walk.
    pub fn build_polled(
        circuit: &Circuit,
        noise: &NoiseModel,
        poll: impl FnMut() -> bool,
    ) -> Option<PrefixTree> {
        let program = fuse(circuit);
        let mut poll = poll;
        let mut builder = Builder {
            circuit,
            ops: program.ops(),
            noise,
            mid: crate::executor::mid_measure_flags(circuit),
            nodes: Vec::new(),
            leaves: Vec::new(),
            pruned: 0,
            poll: &mut poll,
        };
        let state = StateVector::zero_state(circuit.num_qubits());
        let classical = vec![false; circuit.num_clbits()];
        let root = builder
            .explore(0, state, classical, 1.0, RunTally::default())
            .ok()?;
        Some(PrefixTree {
            nodes: builder.nodes,
            leaves: builder.leaves,
            root,
            pruned: builder.pruned,
            fusion: program.stats(),
        })
    }

    /// Walks the tree with one shot's RNG, consuming exactly the draws the
    /// per-shot executor would.
    pub fn walk<R: Rng + ?Sized>(&self, rng: &mut R) -> Walk {
        let mut cur = self.root;
        loop {
            match cur {
                NodeRef::Leaf(i) => return Walk::Leaf(i),
                NodeRef::Bail => return Walk::Replay,
                NodeRef::Draw(i) => {
                    let node = &self.nodes[i as usize];
                    cur = if rng.gen_bool(node.p) {
                        node.on_true
                    } else {
                        node.on_false
                    };
                }
            }
        }
    }

    /// The classical register of leaf `i`.
    pub fn leaf_classical(&self, i: u32) -> &[bool] {
        &self.leaves[i as usize].classical
    }

    /// Adds `hits[i]` copies of each leaf's tally delta into `tally` —
    /// exact integer accounting, identical to summing the per-shot tallies
    /// of the shots that landed on each leaf.
    pub(crate) fn accumulate_tally(&self, hits: &[u64], tally: &mut RunTally) {
        for (leaf, &n) in self.leaves.iter().zip(hits) {
            if n > 0 {
                tally.absorb_scaled(&leaf.tally, n);
            }
        }
    }

    /// Decision-node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf count.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Branches pruned below [`BRANCH_EPS`] (each one a potential replay).
    pub fn num_pruned(&self) -> u64 {
        self.pruned
    }

    /// What gate fusion achieved on the underlying circuit.
    pub fn fusion_stats(&self) -> FusionStats {
        self.fusion
    }

    /// The leaf weight distribution keyed by classical bitstring, for
    /// tests: with no pruning the weights sum to 1 within [`BRANCH_EPS`].
    pub fn leaf_distribution(&self) -> Distribution {
        let mut dist = Distribution::new();
        for leaf in &self.leaves {
            dist.add(crate::counts::bitstring(&leaf.classical), leaf.weight);
        }
        dist
    }
}

/// Tree-construction failure: fall back to the per-shot path for the whole
/// run. Carries no detail — every cause has the same remedy.
struct Abort;

struct Builder<'a> {
    circuit: &'a Circuit,
    ops: &'a [FusedOp],
    noise: &'a NoiseModel,
    mid: Vec<bool>,
    nodes: Vec<DrawNode>,
    leaves: Vec<Leaf>,
    pruned: u64,
    /// Cooperative interruption check, consulted once per stochastic
    /// branch node; `true` aborts the build (see
    /// [`PrefixTree::build_polled`]).
    poll: &'a mut dyn FnMut() -> bool,
}

impl Builder<'_> {
    /// Evolves the deterministic segment starting at `op` and recurses into
    /// both children of the first stochastic event, returning the subtree
    /// root.
    fn explore(
        &mut self,
        op: usize,
        mut state: StateVector,
        classical: Vec<bool>,
        weight: f64,
        mut tally: RunTally,
    ) -> Result<NodeRef, Abort> {
        let insts = self.circuit.instructions();
        let mut i = op;
        while i < self.ops.len() {
            match &self.ops[i] {
                FusedOp::Block(block) => {
                    state.apply_matrix(&block.matrix, &block.qubits);
                    for name in &block.gate_names {
                        *tally.gates.entry(name).or_insert(0) += 1;
                    }
                }
                FusedOp::Passthrough(idx) => {
                    let inst = &insts[*idx];
                    if let Some(cond) = inst.condition() {
                        if !cond.evaluate(&classical) {
                            tally.cc_skipped += 1;
                            i += 1;
                            continue;
                        }
                        tally.cc_fired += 1;
                    }
                    match inst.kind() {
                        OpKind::Barrier => {}
                        OpKind::Gate(g) => {
                            let qubits: Vec<usize> =
                                inst.qubits().iter().map(|q| q.index()).collect();
                            state.apply_gate(g, &qubits);
                            *tally.gates.entry(g.name()).or_insert(0) += 1;
                        }
                        OpKind::Measure => {
                            return self.measure_event(i, *idx, state, classical, weight, tally);
                        }
                        OpKind::Reset => {
                            return self.reset_event(i, *idx, state, classical, weight, tally);
                        }
                    }
                }
            }
            i += 1;
        }
        self.push_leaf(classical, weight, tally)
    }

    /// A measurement: one draw against [`StateVector::measure_prob_one`],
    /// then (with positive `readout_flip`) one flip draw per outcome.
    fn measure_event(
        &mut self,
        op: usize,
        idx: usize,
        state: StateVector,
        classical: Vec<bool>,
        weight: f64,
        mut tally: RunTally,
    ) -> Result<NodeRef, Abort> {
        if (self.poll)() {
            return Err(Abort);
        }
        let inst = &self.circuit.instructions()[idx];
        let q = inst.qubits()[0].index();
        let cbit = inst.clbits()[0].index();
        let p = state.measure_prob_one(q);
        if !p.is_finite() {
            return Err(Abort);
        }
        tally.measurements += 1;
        if self.mid.get(idx).copied().unwrap_or(false) {
            tally.mid_measurements += 1;
        }
        let on_false = self.outcome_child(
            op,
            state.clone(),
            classical.clone(),
            weight * (1.0 - p),
            tally.clone(),
            1.0 - p,
            |st, cl| {
                st.project(q, false);
                cl[cbit] = false;
            },
            Followup::ReadoutFlip(cbit),
        )?;
        let on_true = self.outcome_child(
            op,
            state,
            classical,
            weight * p,
            tally,
            p,
            |st, cl| {
                st.project(q, true);
                cl[cbit] = true;
            },
            Followup::ReadoutFlip(cbit),
        )?;
        self.push_node(p, on_false, on_true)
    }

    /// A reset: one draw against [`StateVector::measure_prob_one`], then
    /// (with positive `reset_error`) one error draw per outcome.
    fn reset_event(
        &mut self,
        op: usize,
        idx: usize,
        state: StateVector,
        classical: Vec<bool>,
        weight: f64,
        mut tally: RunTally,
    ) -> Result<NodeRef, Abort> {
        if (self.poll)() {
            return Err(Abort);
        }
        let inst = &self.circuit.instructions()[idx];
        let q = inst.qubits()[0].index();
        let p = state.measure_prob_one(q);
        if !p.is_finite() {
            return Err(Abort);
        }
        tally.resets += 1;
        let on_false = self.outcome_child(
            op,
            state.clone(),
            classical.clone(),
            weight * (1.0 - p),
            tally.clone(),
            1.0 - p,
            |st, _| {
                st.project(q, false);
            },
            Followup::ResetError(q),
        )?;
        let on_true = self.outcome_child(
            op,
            state,
            classical,
            weight * p,
            tally,
            p,
            |st, _| {
                // Mirrors the per-shot `StateVector::reset`: the X follows
                // the projection unconditionally, even when the projection
                // bailed on a vanishing branch.
                st.project(q, true);
                st.apply_gate(&qcir::Gate::X, &[q]);
            },
            Followup::ResetError(q),
        )?;
        self.push_node(p, on_false, on_true)
    }

    /// Builds one outcome child of a measurement/reset node: applies the
    /// collapse, then models the follow-up noise draw (`readout_flip` for
    /// measurements, `reset_error` for resets) as a nested decision node.
    #[allow(clippy::too_many_arguments)]
    fn outcome_child(
        &mut self,
        op: usize,
        mut state: StateVector,
        mut classical: Vec<bool>,
        weight: f64,
        tally: RunTally,
        edge_p: f64,
        collapse: impl FnOnce(&mut StateVector, &mut [bool]),
        followup: Followup,
    ) -> Result<NodeRef, Abort> {
        if edge_p <= BRANCH_EPS || weight <= BRANCH_EPS {
            // Impossible (`gen_bool(0.0)` is always false, `gen_bool(1.0)`
            // always true, so a 0-probability edge is never walked) or too
            // rare to be worth a subtree: walks landing here replay.
            self.pruned += 1;
            return Ok(NodeRef::Bail);
        }
        collapse(&mut state, &mut classical);
        let noise_p = match followup {
            Followup::ReadoutFlip(_) => self.noise.readout_flip,
            Followup::ResetError(_) => self.noise.reset_error,
        };
        if noise_p <= 0.0 {
            return self.explore(op + 1, state, classical, weight, tally);
        }
        // The per-shot path draws `gen_bool(noise_p)` on every outcome, so
        // the tree needs the node even when one side is (near-)impossible.
        let on_false = if 1.0 - noise_p <= BRANCH_EPS {
            self.pruned += 1;
            NodeRef::Bail
        } else {
            self.explore(
                op + 1,
                state.clone(),
                classical.clone(),
                weight * (1.0 - noise_p),
                tally.clone(),
            )?
        };
        let on_true = if noise_p <= BRANCH_EPS {
            self.pruned += 1;
            NodeRef::Bail
        } else {
            match followup {
                Followup::ReadoutFlip(cbit) => classical[cbit] = !classical[cbit],
                Followup::ResetError(q) => state.apply_gate(&qcir::Gate::X, &[q]),
            }
            self.explore(op + 1, state, classical, weight * noise_p, tally)?
        };
        self.push_node(noise_p, on_false, on_true)
    }

    fn push_node(&mut self, p: f64, on_false: NodeRef, on_true: NodeRef) -> Result<NodeRef, Abort> {
        if self.nodes.len() + self.leaves.len() >= MAX_TREE_NODES {
            return Err(Abort);
        }
        self.nodes.push(DrawNode {
            p,
            on_false,
            on_true,
        });
        Ok(NodeRef::Draw((self.nodes.len() - 1) as u32))
    }

    fn push_leaf(
        &mut self,
        classical: Vec<bool>,
        weight: f64,
        tally: RunTally,
    ) -> Result<NodeRef, Abort> {
        if self.nodes.len() + self.leaves.len() >= MAX_TREE_NODES {
            return Err(Abort);
        }
        self.leaves.push(Leaf {
            classical,
            weight,
            tally,
        });
        Ok(NodeRef::Leaf((self.leaves.len() - 1) as u32))
    }
}

/// The stochastic follow-up draw an outcome child may carry.
#[derive(Debug, Clone, Copy)]
enum Followup {
    /// `readout_flip`: on `true`, flips this classical bit.
    ReadoutFlip(usize),
    /// `reset_error`: on `true`, applies X to this qubit.
    ResetError(usize),
}
