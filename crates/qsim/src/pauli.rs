//! Pauli-string observables and expectation values.
//!
//! Useful for characterizing the states dynamic circuits leave behind —
//! e.g. checking that a data qubit's coherence (its X/Y expectation) has
//! been destroyed by a mid-circuit measurement while its Z statistics
//! survive.

use crate::density::DensityMatrix;
use crate::statevector::StateVector;
use qmath::{CMatrix, C64};
use std::fmt;
use std::str::FromStr;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl Pauli {
    /// The 2x2 matrix.
    #[must_use]
    pub fn matrix(self) -> CMatrix {
        match self {
            Pauli::I => CMatrix::identity(2),
            Pauli::X => CMatrix::pauli_x(),
            Pauli::Y => CMatrix::pauli_y(),
            Pauli::Z => CMatrix::pauli_z(),
        }
    }
}

/// A tensor product of single-qubit Paulis: an observable like `ZZI` or
/// `XIY`.
///
/// The string representation puts **qubit 0 first** (`"XY"` is X on qubit
/// 0, Y on qubit 1).
///
/// # Examples
///
/// ```
/// use qsim::pauli::PauliString;
/// use qsim::StateVector;
/// use qcir::Gate;
///
/// let mut bell = StateVector::zero_state(2);
/// bell.apply_gate(&Gate::H, &[0]);
/// bell.apply_gate(&Gate::Cx, &[0, 1]);
/// let zz: PauliString = "ZZ".parse().unwrap();
/// assert!((zz.expectation(&bell) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliString {
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// Builds an observable from per-qubit Paulis (qubit 0 first).
    ///
    /// # Panics
    ///
    /// Panics if `paulis` is empty.
    #[must_use]
    pub fn new(paulis: Vec<Pauli>) -> Self {
        assert!(!paulis.is_empty(), "observable needs at least one qubit");
        Self { paulis }
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.paulis.len()
    }

    /// The per-qubit Paulis.
    #[must_use]
    pub fn paulis(&self) -> &[Pauli] {
        &self.paulis
    }

    /// The full `2^n x 2^n` matrix (small `n` only).
    #[must_use]
    pub fn matrix(&self) -> CMatrix {
        let n = self.paulis.len();
        let mut m = CMatrix::identity(1 << n);
        for (q, p) in self.paulis.iter().enumerate() {
            if *p != Pauli::I {
                m = p.matrix().embed(&[q], n).mul(&m);
            }
        }
        m
    }

    /// `<psi| P |psi>` — real because Pauli strings are Hermitian.
    ///
    /// # Panics
    ///
    /// Panics if the state's qubit count differs.
    #[must_use]
    pub fn expectation(&self, state: &StateVector) -> f64 {
        assert_eq!(
            state.num_qubits(),
            self.paulis.len(),
            "observable/state qubit count mismatch"
        );
        // Apply P to a copy and take the inner product — avoids building
        // the full matrix.
        let mut transformed = state.clone();
        for (q, p) in self.paulis.iter().enumerate() {
            match p {
                Pauli::I => {}
                Pauli::X => transformed.apply_matrix(&CMatrix::pauli_x(), &[q]),
                Pauli::Y => transformed.apply_matrix(&CMatrix::pauli_y(), &[q]),
                Pauli::Z => transformed.apply_matrix(&CMatrix::pauli_z(), &[q]),
            }
        }
        state
            .amplitudes()
            .iter()
            .zip(transformed.amplitudes())
            .map(|(&a, &b)| (a.conj() * b).re)
            .sum()
    }

    /// `Tr(rho P)` for a mixed state.
    ///
    /// # Panics
    ///
    /// Panics if the state's qubit count differs.
    #[must_use]
    pub fn expectation_density(&self, rho: &DensityMatrix) -> f64 {
        assert_eq!(
            rho.num_qubits(),
            self.paulis.len(),
            "observable/state qubit count mismatch"
        );
        let p = self.matrix();
        let dim = p.rows();
        let mut acc = C64::zero();
        for i in 0..dim {
            for k in 0..dim {
                acc += rho.matrix()[(i, k)] * p[(k, i)];
            }
        }
        acc.re
    }
}

impl FromStr for PauliString {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err("empty observable".into());
        }
        let paulis = s
            .chars()
            .map(|c| match c.to_ascii_uppercase() {
                'I' => Ok(Pauli::I),
                'X' => Ok(Pauli::X),
                'Y' => Ok(Pauli::Y),
                'Z' => Ok(Pauli::Z),
                other => Err(format!("invalid pauli character '{other}'")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PauliString::new(paulis))
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.paulis {
            let c = match p {
                Pauli::I => 'I',
                Pauli::X => 'X',
                Pauli::Y => 'Y',
                Pauli::Z => 'Z',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;

    fn state(ops: &[(Gate, Vec<usize>)], n: usize) -> StateVector {
        let mut sv = StateVector::zero_state(n);
        for (g, qs) in ops {
            sv.apply_gate(g, qs);
        }
        sv
    }

    #[test]
    fn parse_and_display_round_trip() {
        let p: PauliString = "XiZ".parse().unwrap();
        assert_eq!(p.to_string(), "XIZ");
        assert_eq!(p.num_qubits(), 3);
        assert!("XQ".parse::<PauliString>().is_err());
        assert!("".parse::<PauliString>().is_err());
    }

    #[test]
    fn z_expectation_of_basis_states() {
        let z: PauliString = "Z".parse().unwrap();
        assert!((z.expectation(&StateVector::zero_state(1)) - 1.0).abs() < 1e-12);
        let one = state(&[(Gate::X, vec![0])], 1);
        assert!((z.expectation(&one) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_expectation_of_plus_state() {
        let plus = state(&[(Gate::H, vec![0])], 1);
        let x: PauliString = "X".parse().unwrap();
        assert!((x.expectation(&plus) - 1.0).abs() < 1e-12);
        let z: PauliString = "Z".parse().unwrap();
        assert!(z.expectation(&plus).abs() < 1e-12);
    }

    #[test]
    fn y_expectation_of_circular_state() {
        // S H |0> = (|0> + i|1>)/sqrt(2): <Y> = +1.
        let circ = state(&[(Gate::H, vec![0]), (Gate::S, vec![0])], 1);
        let y: PauliString = "Y".parse().unwrap();
        assert!((y.expectation(&circ) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_correlations() {
        let bell = state(&[(Gate::H, vec![0]), (Gate::Cx, vec![0, 1])], 2);
        for (obs, expect) in [
            ("ZZ", 1.0),
            ("XX", 1.0),
            ("YY", -1.0),
            ("ZI", 0.0),
            ("IZ", 0.0),
        ] {
            let p: PauliString = obs.parse().unwrap();
            assert!(
                (p.expectation(&bell) - expect).abs() < 1e-12,
                "<{obs}> wrong"
            );
        }
    }

    #[test]
    fn density_expectation_matches_pure() {
        let sv = state(
            &[
                (Gate::H, vec![0]),
                (Gate::T, vec![0]),
                (Gate::Cx, vec![0, 1]),
            ],
            2,
        );
        let rho = DensityMatrix::from_statevector(&sv);
        for obs in ["XX", "ZZ", "XY", "ZI"] {
            let p: PauliString = obs.parse().unwrap();
            assert!(
                (p.expectation(&sv) - p.expectation_density(&rho)).abs() < 1e-10,
                "<{obs}> mismatch"
            );
        }
    }

    #[test]
    fn matrix_agrees_with_expectation() {
        let sv = state(&[(Gate::H, vec![0]), (Gate::Cx, vec![0, 1])], 2);
        let p: PauliString = "XX".parse().unwrap();
        let via_matrix = {
            let v = p.matrix().mul_vec(sv.amplitudes());
            sv.amplitudes()
                .iter()
                .zip(v)
                .map(|(&a, b)| (a.conj() * b).re)
                .sum::<f64>()
        };
        assert!((via_matrix - p.expectation(&sv)).abs() < 1e-12);
    }

    #[test]
    fn mid_circuit_measurement_kills_coherence() {
        // The dynamic-circuit fact in one observable: measuring destroys
        // <X> but preserves <Z> statistics.
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H, &[0]);
        let x: PauliString = "X".parse().unwrap();
        assert!((x.expectation_density(&rho) - 1.0).abs() < 1e-12);
        // Non-selective measurement = dephasing: model via project+mix.
        let mut rho0 = rho.clone();
        let p0 = rho0.project(0, false);
        let mut rho1 = rho;
        let p1 = rho1.project(0, true);
        let mixed = {
            let m = rho0
                .matrix()
                .scale(qmath::C64::real(p0))
                .add(&rho1.matrix().scale(qmath::C64::real(p1)));
            m
        };
        // <X> of the mixture is 0 (coherence destroyed).
        let xm = {
            let pm = x.matrix();
            let mut acc = 0.0;
            for i in 0..2 {
                for k in 0..2 {
                    acc += (mixed[(i, k)] * pm[(k, i)]).re;
                }
            }
            acc
        };
        assert!(xm.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn qubit_count_mismatch_panics() {
        let p: PauliString = "XX".parse().unwrap();
        let _ = p.expectation(&StateVector::zero_state(1));
    }
}
