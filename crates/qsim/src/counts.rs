//! Shot counts, probability distributions and statistical distances.

use std::collections::BTreeMap;
use std::fmt;

/// Formats a classical-register readout as a bitstring with the highest
/// classical bit leftmost (`c[n-1] ... c[0]`), following the convention of
/// IBM's tooling so results can be compared side by side with the paper's.
#[must_use]
pub fn bitstring(bits: &[bool]) -> String {
    bits.iter()
        .rev()
        .map(|&b| if b { '1' } else { '0' })
        .collect()
}

/// Aggregated shot outcomes keyed by bitstring.
///
/// # Examples
///
/// ```
/// use qsim::Counts;
/// let mut counts = Counts::new();
/// counts.record("01");
/// counts.record("01");
/// counts.record("10");
/// assert_eq!(counts.total(), 3);
/// assert_eq!(counts.get("01"), 2);
/// assert_eq!(counts.most_frequent().unwrap(), "01");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    map: BTreeMap<String, u64>,
}

impl Counts {
    /// An empty tally.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation of `key`.
    pub fn record(&mut self, key: impl Into<String>) {
        *self.map.entry(key.into()).or_insert(0) += 1;
    }

    /// Adds `n` observations of `key`.
    pub fn record_n(&mut self, key: impl Into<String>, n: u64) {
        *self.map.entry(key.into()).or_insert(0) += n;
    }

    /// Absorbs all observations of `other`, as if the outcome sequences had
    /// been recorded back to back.
    ///
    /// Merging is associative and commutative (counts are a multiset), which
    /// is what lets parallel shot workers tally locally and combine their
    /// partial results in shot order without changing the aggregate.
    ///
    /// # Examples
    ///
    /// ```
    /// use qsim::Counts;
    /// let mut a = Counts::new();
    /// a.record("0");
    /// let mut b = Counts::new();
    /// b.record("0");
    /// b.record("1");
    /// a.merge(b);
    /// assert_eq!(a.get("0"), 2);
    /// assert_eq!(a.total(), 3);
    /// ```
    pub fn merge(&mut self, other: Counts) {
        if self.map.is_empty() {
            self.map = other.map;
            return;
        }
        for (k, v) in other.map {
            *self.map.entry(k).or_insert(0) += v;
        }
    }

    /// The number of shots recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }

    /// Count of a particular outcome (0 when absent).
    #[must_use]
    pub fn get(&self, key: &str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Empirical probability of `key`.
    #[must_use]
    pub fn probability(&self, key: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(key) as f64 / total as f64
        }
    }

    /// The most frequent outcome, ties broken lexicographically smallest.
    #[must_use]
    pub fn most_frequent(&self) -> Option<&str> {
        self.map
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(k, _)| k.as_str())
    }

    /// Iterates over `(bitstring, count)` pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct outcomes observed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no shots were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Converts to an empirical [`Distribution`].
    #[must_use]
    pub fn to_distribution(&self) -> Distribution {
        let total = self.total() as f64;
        let mut d = Distribution::new();
        if total > 0.0 {
            for (k, &v) in &self.map {
                d.set(k.clone(), v as f64 / total);
            }
        }
        d
    }
}

impl FromIterator<(String, u64)> for Counts {
    fn from_iter<I: IntoIterator<Item = (String, u64)>>(iter: I) -> Self {
        let mut c = Counts::new();
        for (k, v) in iter {
            c.record_n(k, v);
        }
        c
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

/// A probability distribution over bitstring outcomes.
///
/// Produced exactly by branch enumeration ([`crate::branch`]) or empirically
/// from [`Counts`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Distribution {
    map: BTreeMap<String, f64>,
}

impl Distribution {
    /// An empty distribution.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the probability of `key` (overwriting).
    pub fn set(&mut self, key: impl Into<String>, p: f64) {
        self.map.insert(key.into(), p);
    }

    /// Adds `p` to the probability of `key`.
    pub fn add(&mut self, key: impl Into<String>, p: f64) {
        *self.map.entry(key.into()).or_insert(0.0) += p;
    }

    /// Probability of `key` (0 when absent).
    #[must_use]
    pub fn get(&self, key: &str) -> f64 {
        self.map.get(key).copied().unwrap_or(0.0)
    }

    /// Iterates over `(bitstring, probability)` in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.map.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of outcomes with recorded probability.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no outcome has recorded probability.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Sum of all probabilities (should be 1 within rounding).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.map.values().sum()
    }

    /// The most probable outcome, ties broken lexicographically smallest.
    #[must_use]
    pub fn argmax(&self) -> Option<&str> {
        self.map
            .iter()
            .max_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.0.cmp(a.0))
            })
            .map(|(k, _)| k.as_str())
    }

    /// Removes outcomes below `threshold` (numerical dust from branching),
    /// then rescales the survivors so the distribution sums to 1 again.
    ///
    /// Without the rescale every pruned branch leaves the total short by its
    /// dust weight, so enumerations like `branch::exact_distribution` could
    /// return totals below 1 by accumulated `BRANCH_EPS` crumbs. When
    /// nothing survives (or the surviving total is not positive and finite)
    /// the map is left as-is: there is no meaningful mass to rescale.
    pub fn prune(&mut self, threshold: f64) {
        self.map.retain(|_, p| *p >= threshold);
        let total = self.total();
        if total.is_finite() && total > 0.0 {
            for p in self.map.values_mut() {
                *p /= total;
            }
        }
    }

    /// Marginal distribution over a subset of bit positions.
    ///
    /// `positions` lists the bits to keep, **indexed from the right** of
    /// the key (position 0 is the last character, i.e. classical bit 0);
    /// the returned keys contain the kept bits, rightmost = first listed.
    ///
    /// # Panics
    ///
    /// Panics if a position exceeds a key's length.
    ///
    /// # Examples
    ///
    /// ```
    /// use qsim::Distribution;
    /// let mut d = Distribution::new();
    /// d.set("10", 0.5); // bit1=1, bit0=0
    /// d.set("11", 0.5);
    /// let m = d.marginal(&[1]);
    /// assert!((m.get("1") - 1.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn marginal(&self, positions: &[usize]) -> Distribution {
        let mut out = Distribution::new();
        for (key, p) in self.iter() {
            let chars: Vec<char> = key.chars().collect();
            let n = chars.len();
            let kept: String = positions
                .iter()
                .rev()
                .map(|&pos| {
                    assert!(pos < n, "bit position {pos} out of range for key '{key}'");
                    chars[n - 1 - pos]
                })
                .collect();
            out.add(kept, p);
        }
        out
    }

    /// Post-selects on bit `position` (indexed from the right) having
    /// `value`, renormalizing; returns the selected distribution and the
    /// probability of the selection (an empty distribution when that
    /// probability is 0).
    ///
    /// # Panics
    ///
    /// Panics if `position` exceeds a key's length.
    #[must_use]
    pub fn postselect(&self, position: usize, value: bool) -> (Distribution, f64) {
        let want = if value { '1' } else { '0' };
        let mut out = Distribution::new();
        let mut total = 0.0;
        for (key, p) in self.iter() {
            let chars: Vec<char> = key.chars().collect();
            let n = chars.len();
            assert!(position < n, "bit position {position} out of range");
            if chars[n - 1 - position] == want {
                out.add(key.to_string(), p);
                total += p;
            }
        }
        if total > 0.0 {
            let keys: Vec<String> = out.map.keys().cloned().collect();
            for k in keys {
                let v = out.map[&k] / total;
                out.map.insert(k, v);
            }
        }
        (out, total)
    }

    /// Total variation distance `1/2 sum |p - q|`.
    #[must_use]
    pub fn tvd(&self, other: &Self) -> f64 {
        let keys: std::collections::BTreeSet<&String> =
            self.map.keys().chain(other.map.keys()).collect();
        0.5 * keys
            .into_iter()
            .map(|k| (self.get(k) - other.get(k)).abs())
            .sum::<f64>()
    }

    /// Hellinger distance `sqrt(1 - sum sqrt(p*q))` (clamped at 0).
    #[must_use]
    pub fn hellinger(&self, other: &Self) -> f64 {
        let keys: std::collections::BTreeSet<&String> =
            self.map.keys().chain(other.map.keys()).collect();
        let bc: f64 = keys
            .into_iter()
            .map(|k| (self.get(k) * other.get(k)).sqrt())
            .sum();
        (1.0 - bc).max(0.0).sqrt()
    }

    /// `true` when every outcome's probability matches within `tol`.
    #[must_use]
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.tvd(other) <= tol
    }
}

impl FromIterator<(String, f64)> for Distribution {
    fn from_iter<I: IntoIterator<Item = (String, f64)>>(iter: I) -> Self {
        let mut d = Distribution::new();
        for (k, p) in iter {
            d.add(k, p);
        }
        d
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v:.4}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitstring_is_msb_first() {
        assert_eq!(bitstring(&[true, false]), "01");
        assert_eq!(bitstring(&[false, true, true]), "110");
        assert_eq!(bitstring(&[]), "");
    }

    #[test]
    fn counts_accumulate() {
        let mut c = Counts::new();
        c.record("00");
        c.record_n("11", 5);
        assert_eq!(c.total(), 6);
        assert_eq!(c.get("11"), 5);
        assert_eq!(c.get("01"), 0);
        assert!((c.probability("11") - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn counts_most_frequent_breaks_ties_lexicographically() {
        let mut c = Counts::new();
        c.record_n("10", 3);
        c.record_n("01", 3);
        assert_eq!(c.most_frequent().unwrap(), "01");
    }

    #[test]
    fn empty_counts_behave() {
        let c = Counts::new();
        assert!(c.is_empty());
        assert_eq!(c.total(), 0);
        assert_eq!(c.probability("0"), 0.0);
        assert!(c.most_frequent().is_none());
    }

    #[test]
    fn merge_matches_concatenated_recording() {
        let left = ["00", "01", "00"];
        let right = ["01", "11"];
        let mut a = Counts::new();
        for k in left {
            a.record(k);
        }
        let mut b = Counts::new();
        for k in right {
            b.record(k);
        }
        a.merge(b);
        let mut concat = Counts::new();
        for k in left.iter().chain(right.iter()) {
            concat.record(*k);
        }
        assert_eq!(a, concat);
    }

    #[test]
    fn merge_into_empty_and_with_empty() {
        let mut a = Counts::new();
        let mut b = Counts::new();
        b.record_n("1", 4);
        a.merge(b.clone());
        assert_eq!(a, b);
        a.merge(Counts::new());
        assert_eq!(a, b);
    }

    #[test]
    fn counts_from_iterator() {
        let c: Counts = vec![("0".to_string(), 2u64), ("1".to_string(), 1)]
            .into_iter()
            .collect();
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn counts_to_distribution_normalizes() {
        let mut c = Counts::new();
        c.record_n("0", 1);
        c.record_n("1", 3);
        let d = c.to_distribution();
        assert!((d.get("1") - 0.75).abs() < 1e-12);
        assert!((d.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tvd_of_identical_is_zero() {
        let mut d = Distribution::new();
        d.set("00", 0.5);
        d.set("11", 0.5);
        assert_eq!(d.tvd(&d.clone()), 0.0);
    }

    #[test]
    fn tvd_of_disjoint_is_one() {
        let mut a = Distribution::new();
        a.set("0", 1.0);
        let mut b = Distribution::new();
        b.set("1", 1.0);
        assert!((a.tvd(&b) - 1.0).abs() < 1e-12);
        assert!((a.hellinger(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tvd_is_symmetric() {
        let mut a = Distribution::new();
        a.set("0", 0.7);
        a.set("1", 0.3);
        let mut b = Distribution::new();
        b.set("0", 0.4);
        b.set("1", 0.6);
        assert!((a.tvd(&b) - b.tvd(&a)).abs() < 1e-15);
        assert!((a.tvd(&b) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn hellinger_of_identical_is_zero() {
        let mut d = Distribution::new();
        d.set("01", 0.25);
        d.set("10", 0.75);
        assert!(d.hellinger(&d.clone()) < 1e-12);
    }

    #[test]
    fn argmax_prefers_highest_probability() {
        let mut d = Distribution::new();
        d.set("00", 0.2);
        d.set("01", 0.5);
        d.set("10", 0.3);
        assert_eq!(d.argmax().unwrap(), "01");
    }

    #[test]
    fn argmax_ties_break_lexicographically() {
        let mut d = Distribution::new();
        d.set("11", 0.5);
        d.set("00", 0.5);
        assert_eq!(d.argmax().unwrap(), "00");
    }

    #[test]
    fn marginal_collapses_traced_out_bits() {
        let mut d = Distribution::new();
        d.set("00", 0.25);
        d.set("01", 0.25);
        d.set("10", 0.25);
        d.set("11", 0.25);
        let m = d.marginal(&[0]);
        assert_eq!(m.len(), 2);
        assert!((m.get("0") - 0.5).abs() < 1e-12);
        assert!((m.get("1") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginal_reorders_kept_bits() {
        let mut d = Distribution::new();
        d.set("10", 1.0); // bit1=1, bit0=0
        let m = d.marginal(&[0, 1]); // keep bit0 then bit1
                                     // Rightmost char = first listed position (bit0=0), left = bit1=1.
        assert!((m.get("10") - 1.0).abs() < 1e-12);
        let swapped = d.marginal(&[1, 0]);
        assert!((swapped.get("01") - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn marginal_checks_positions() {
        let mut d = Distribution::new();
        d.set("0", 1.0);
        let _ = d.marginal(&[3]);
    }

    #[test]
    fn postselect_renormalizes() {
        let mut d = Distribution::new();
        d.set("00", 0.5);
        d.set("11", 0.25);
        d.set("01", 0.25);
        let (sel, p) = d.postselect(0, true); // bit0 == 1
        assert!((p - 0.5).abs() < 1e-12);
        assert!((sel.get("11") - 0.5).abs() < 1e-12);
        assert!((sel.get("01") - 0.5).abs() < 1e-12);
        assert_eq!(sel.get("00"), 0.0);
    }

    #[test]
    fn postselect_on_impossible_value_is_empty() {
        let mut d = Distribution::new();
        d.set("1", 1.0);
        let (sel, p) = d.postselect(0, false);
        assert_eq!(p, 0.0);
        assert!(sel.is_empty());
    }

    #[test]
    fn prune_drops_dust() {
        let mut d = Distribution::new();
        d.set("0", 1.0 - 1e-15);
        d.set("1", 1e-15);
        d.prune(1e-12);
        assert_eq!(d.len(), 1);
        // Regression: the dust's weight must be redistributed, not lost —
        // the pruned distribution sums to exactly 1 again.
        assert_eq!(d.total(), 1.0);
    }

    #[test]
    fn prune_renormalizes_survivors_proportionally() {
        let mut d = Distribution::new();
        d.set("00", 0.6);
        d.set("01", 0.3);
        d.set("10", 0.1 - 1e-13);
        d.set("11", 1e-13);
        d.prune(1e-9);
        assert_eq!(d.len(), 3);
        assert!((d.total() - 1.0).abs() < 1e-15, "total = {}", d.total());
        // Relative weights of the survivors are preserved.
        assert!((d.get("00") / d.get("01") - 2.0).abs() < 1e-9);
    }

    #[test]
    fn prune_everything_leaves_an_empty_distribution() {
        let mut d = Distribution::new();
        d.set("0", 1e-15);
        d.prune(1e-12);
        assert!(d.is_empty());
        assert_eq!(d.total(), 0.0);
    }

    #[test]
    fn display_renders_maps() {
        let mut c = Counts::new();
        c.record("0");
        assert_eq!(c.to_string(), "{0: 1}");
        let mut d = Distribution::new();
        d.set("1", 0.5);
        assert_eq!(d.to_string(), "{1: 0.5000}");
    }
}
