//! Pure-state (statevector) quantum simulation.

use qmath::{CMatrix, C64};
use rand::Rng;

/// A pure quantum state on `n` qubits.
///
/// Amplitudes are indexed with qubit `q` on bit `q` of the basis-state index
/// (least-significant first), the same convention as
/// [`qcir::Gate::matrix`](qcir::Gate::matrix).
///
/// # Examples
///
/// ```
/// use qsim::StateVector;
/// use qcir::Gate;
///
/// let mut sv = StateVector::zero_state(2);
/// sv.apply_gate(&Gate::H, &[0]);
/// sv.apply_gate(&Gate::Cx, &[0, 1]);
/// let p = sv.probabilities();
/// assert!((p[0b00] - 0.5).abs() < 1e-12);
/// assert!((p[0b11] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0...0>`.
    #[must_use]
    pub fn zero_state(num_qubits: usize) -> Self {
        Self::basis_state(num_qubits, 0)
    }

    /// The computational basis state `|index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_qubits`.
    #[must_use]
    pub fn basis_state(num_qubits: usize, index: usize) -> Self {
        let dim = 1usize << num_qubits;
        assert!(
            index < dim,
            "basis index {index} out of range for {num_qubits} qubits"
        );
        let mut amps = vec![C64::zero(); dim];
        amps[index] = C64::one();
        Self { num_qubits, amps }
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm differs from 1
    /// by more than `1e-6`.
    #[must_use]
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let dim = amps.len();
        assert!(
            dim.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        let num_qubits = dim.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-6,
            "state is not normalized (norm^2 = {norm})"
        );
        Self { num_qubits, amps }
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Borrows the amplitude vector.
    #[must_use]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Applies a gate to the given qubit wires (operand `k` of the gate on
    /// `qubits[k]`).
    ///
    /// Common gates (Paulis, phases, H, CX, CZ/CP, SWAP, CCX/MCX) take
    /// specialized bit-twiddling paths; everything else goes through the
    /// general [`StateVector::apply_matrix`]. The property tests pin the
    /// fast paths to the general one.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range/duplicate wires.
    pub fn apply_gate(&mut self, gate: &qcir::Gate, qubits: &[usize]) {
        use qcir::Gate as G;
        assert_eq!(
            qubits.len(),
            gate.num_qubits(),
            "gate {gate} arity mismatch"
        );
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < self.num_qubits, "qubit {q} out of range");
            assert!(!qubits[..i].contains(&q), "duplicate qubit {q}");
        }
        match gate {
            G::I => {}
            G::X => self.fast_permute(0, 1 << qubits[0]),
            G::Z => self.fast_phase(1 << qubits[0], C64::real(-1.0)),
            G::S => self.fast_phase(1 << qubits[0], C64::i()),
            G::Sdg => self.fast_phase(1 << qubits[0], -C64::i()),
            G::T => self.fast_phase(1 << qubits[0], C64::cis(std::f64::consts::FRAC_PI_4)),
            G::Tdg => self.fast_phase(1 << qubits[0], C64::cis(-std::f64::consts::FRAC_PI_4)),
            G::P(t) | G::Rz(t) => {
                // Rz differs from P by a global phase only.
                if matches!(gate, G::Rz(_)) {
                    // Track the global phase to stay exactly equal to the
                    // matrix definition (tests compare amplitudes).
                    let g = C64::cis(-t / 2.0);
                    for a in &mut self.amps {
                        *a *= g;
                    }
                    self.fast_phase(1 << qubits[0], C64::cis(*t));
                } else {
                    self.fast_phase(1 << qubits[0], C64::cis(*t));
                }
            }
            G::H => self.fast_h(qubits[0]),
            G::Cx => self.fast_permute(1 << qubits[0], 1 << qubits[1]),
            G::Cz => self.fast_phase((1 << qubits[0]) | (1 << qubits[1]), C64::real(-1.0)),
            G::Cp(t) => {
                self.fast_phase((1 << qubits[0]) | (1 << qubits[1]), C64::cis(*t));
            }
            G::Swap => self.fast_swap(qubits[0], qubits[1]),
            G::Ccx => {
                self.fast_permute((1 << qubits[0]) | (1 << qubits[1]), 1 << qubits[2]);
            }
            G::Ccz => self.fast_phase(
                (1 << qubits[0]) | (1 << qubits[1]) | (1 << qubits[2]),
                C64::real(-1.0),
            ),
            G::Mcx(n) => {
                let mut cmask = 0usize;
                for &c in &qubits[..*n] {
                    cmask |= 1 << c;
                }
                self.fast_permute(cmask, 1 << qubits[*n]);
            }
            _ => self.apply_matrix(&gate.matrix(), qubits),
        }
    }

    /// `X` on `target_mask` controlled on all bits of `control_mask`:
    /// swaps amplitude pairs.
    fn fast_permute(&mut self, control_mask: usize, target_bit: usize) {
        for i in 0..self.amps.len() {
            if i & target_bit == 0 && i & control_mask == control_mask {
                self.amps.swap(i, i | target_bit);
            }
        }
    }

    /// Multiplies amplitudes with all `mask` bits set by `phase`.
    fn fast_phase(&mut self, mask: usize, phase: C64) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & mask == mask {
                *a *= phase;
            }
        }
    }

    /// Hadamard butterfly on one qubit.
    fn fast_h(&mut self, qubit: usize) {
        let bit = 1usize << qubit;
        let s = std::f64::consts::FRAC_1_SQRT_2;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let a = self.amps[i];
                let b = self.amps[i | bit];
                self.amps[i] = (a + b).scale(s);
                self.amps[i | bit] = (a - b).scale(s);
            }
        }
    }

    /// Swaps two qubits' amplitudes.
    fn fast_swap(&mut self, a: usize, b: usize) {
        let (ba, bb) = (1usize << a, 1usize << b);
        for i in 0..self.amps.len() {
            if i & ba != 0 && i & bb == 0 {
                self.amps.swap(i, (i & !ba) | bb);
            }
        }
    }

    /// Applies an arbitrary `2^k`-dimensional unitary to `qubits`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension is not `2^qubits.len()` or wires are
    /// invalid.
    pub fn apply_matrix(&mut self, m: &CMatrix, qubits: &[usize]) {
        let k = qubits.len();
        assert_eq!(m.rows(), 1 << k, "matrix dimension mismatch");
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < self.num_qubits, "qubit {q} out of range");
            assert!(!qubits[..i].contains(&q), "duplicate qubit {q}");
        }
        let mut qmask = 0usize;
        for &q in qubits {
            qmask |= 1 << q;
        }
        let dim = self.amps.len();
        let sub = 1usize << k;
        let mut gathered = vec![C64::zero(); sub];
        for base in 0..dim {
            if base & qmask != 0 {
                continue;
            }
            for (s, g) in gathered.iter_mut().enumerate() {
                *g = self.amps[base | spread(s, qubits)];
            }
            for sp in 0..sub {
                let mut acc = C64::zero();
                for (s, &g) in gathered.iter().enumerate() {
                    acc += m[(sp, s)] * g;
                }
                self.amps[base | spread(sp, qubits)] = acc;
            }
        }
    }

    /// Applies every gate of a unitary-only circuit in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains measurement, reset or classically
    /// conditioned operations (use [`crate::Executor`] for those), or if
    /// the qubit counts differ.
    pub fn apply_circuit(&mut self, circuit: &qcir::Circuit) {
        assert_eq!(
            circuit.num_qubits(),
            self.num_qubits,
            "circuit/state qubit count mismatch"
        );
        for inst in circuit.iter() {
            if inst.is_barrier() {
                continue;
            }
            let gate = inst.as_gate().unwrap_or_else(|| {
                panic!("apply_circuit requires a unitary circuit, found {inst}")
            });
            assert!(
                !inst.is_conditioned(),
                "apply_circuit cannot evaluate classical conditions"
            );
            let qs: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
            self.apply_gate(gate, &qs);
        }
    }

    /// Probability of measuring `qubit` as 1.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    #[must_use]
    pub fn prob_one(&self, qubit: usize) -> f64 {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        let bit = 1usize << qubit;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projects `qubit` onto `outcome` and renormalizes.
    ///
    /// Returns the probability the projection had; when it is (numerically)
    /// zero the state is left unusable and the caller must discard it.
    pub fn project(&mut self, qubit: usize, outcome: bool) -> f64 {
        let p1 = self.prob_one(qubit);
        let p = if outcome { p1 } else { 1.0 - p1 };
        let bit = 1usize << qubit;
        if p <= f64::EPSILON {
            return 0.0;
        }
        let scale = 1.0 / p.sqrt();
        for (i, a) in self.amps.iter_mut().enumerate() {
            if (i & bit != 0) == outcome {
                *a = a.scale(scale);
            } else {
                *a = C64::zero();
            }
        }
        p
    }

    /// Measures `qubit` in the computational basis, collapsing the state.
    ///
    /// The branch draw is taken against the *normalized* probability
    /// `p1 / ⟨ψ|ψ⟩`: on sub-normalized states (leaky noisy trajectories)
    /// the raw `p1` understates the true Born probability and would bias
    /// the outcome toward 0 — the same bug class the `sample` fall-through
    /// fix closed. States with a vanishing or non-finite norm are beyond
    /// recovery and keep the raw (clamped) probability.
    pub fn measure<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> bool {
        let outcome = rng.gen_bool(self.measure_prob_one(qubit));
        self.project(qubit, outcome);
        outcome
    }

    /// The normalized probability `measure` draws against: `prob_one` scaled
    /// by the squared norm, clamped to `[0, 1]`.
    #[must_use]
    pub fn measure_prob_one(&self, qubit: usize) -> f64 {
        let p1 = self.prob_one(qubit);
        let n2 = self.norm_sqr();
        if n2.is_finite() && n2 > f64::EPSILON {
            (p1 / n2).clamp(0.0, 1.0)
        } else {
            p1.clamp(0.0, 1.0)
        }
    }

    /// Actively resets `qubit` to `|0>` (measure, then flip on 1).
    pub fn reset<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) {
        if self.measure(qubit, rng) {
            self.apply_gate(&qcir::Gate::X, &[qubit]);
        }
    }

    /// Deterministic variant of reset for branch enumeration: projects onto
    /// `outcome` and maps it to `|0>`; returns the branch probability.
    pub fn reset_branch(&mut self, qubit: usize, outcome: bool) -> f64 {
        let p = self.project(qubit, outcome);
        if p > 0.0 && outcome {
            self.apply_gate(&qcir::Gate::X, &[qubit]);
        }
        p
    }

    /// The probability of each computational basis state.
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Samples a full computational-basis outcome without collapsing.
    ///
    /// On sub-normalized states (e.g. leaky noisy trajectories) a draw past
    /// the cumulative total falls back to the last basis state with nonzero
    /// probability — never to an unreachable zero-amplitude outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        let mut acc = 0.0;
        let mut last_nonzero = 0;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > 0.0 {
                last_nonzero = i;
            }
            acc += p;
            if x < acc {
                return i;
            }
        }
        last_nonzero
    }

    /// `|<self|other>|^2`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    #[must_use]
    pub fn fidelity(&self, other: &Self) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(&a, &b)| a.conj() * b)
            .sum::<C64>()
            .norm_sqr()
    }

    /// Squared norm (should be 1 within rounding).
    #[must_use]
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescales the state to unit norm, returning `true` on success.
    ///
    /// Returns `false` — leaving the state untouched — when the current
    /// squared norm is NaN, infinite or below `f64::EPSILON`, where no
    /// rescale can recover a meaningful state.
    pub fn renormalize(&mut self) -> bool {
        let n2 = self.norm_sqr();
        if !n2.is_finite() || n2 < f64::EPSILON {
            return false;
        }
        let inv = 1.0 / n2.sqrt();
        for a in &mut self.amps {
            *a *= C64::real(inv);
        }
        true
    }

    /// `true` when amplitudes match `other` within `tol` component-wise.
    #[must_use]
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.num_qubits == other.num_qubits
            && self
                .amps
                .iter()
                .zip(&other.amps)
                .all(|(&a, &b)| a.approx_eq(b, tol))
    }
}

/// Spreads the `k`-bit sub-index `s` onto the wire positions in `qubits`.
#[inline]
fn spread(s: usize, qubits: &[usize]) -> usize {
    let mut out = 0usize;
    for (j, &q) in qubits.iter().enumerate() {
        out |= ((s >> j) & 1) << q;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn zero_state_has_unit_amplitude_at_zero() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.num_qubits(), 3);
        assert_eq!(sv.amplitudes()[0], C64::one());
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn basis_state_places_amplitude() {
        let sv = StateVector::basis_state(2, 0b10);
        assert_eq!(sv.amplitudes()[2], C64::one());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_state_rejects_large_index() {
        let _ = StateVector::basis_state(1, 2);
    }

    #[test]
    fn x_flips_qubit() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::X, &[1]);
        assert_eq!(sv.amplitudes()[0b10], C64::one());
    }

    /// An RNG pinned to the top of the unit interval: `gen::<f64>()` yields
    /// `(2^53 - 1) / 2^53`, the largest representable draw.
    struct MaxRng;

    impl rand::RngCore for MaxRng {
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    #[test]
    fn sample_on_leaky_state_never_returns_zero_amplitude_outcome() {
        // Regression: a sub-normalized ("leaky") state, as noisy
        // trajectories produce, with all weight on basis states 0 and 1.
        // A draw past the cumulative sum (x ~ 1 > 0.5) used to fall back to
        // `len - 1` = |11>, an outcome with zero amplitude; it must fall
        // back to the last *reachable* basis state instead.
        let leaky = StateVector {
            num_qubits: 2,
            amps: vec![
                C64::real(0.4f64.sqrt()),
                C64::real(0.1f64.sqrt()),
                C64::zero(),
                C64::zero(),
            ],
        };
        assert!(leaky.norm_sqr() < 0.75, "state must be sub-normalized");
        let got = leaky.sample(&mut MaxRng);
        assert_eq!(
            got, 1,
            "fallback must be the last nonzero-probability index"
        );

        // Unit-norm states are unaffected: the draw lands inside the sum.
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::H, &[0]);
        let idx = sv.sample(&mut MaxRng);
        assert!(sv.probabilities()[idx] > 0.0);
    }

    /// An RNG that returns one pinned `next_u64` value forever, so
    /// `gen_bool(p)` compares `p` against a chosen draw in `[0, 1)`.
    struct FixedRng(u64);

    impl rand::RngCore for FixedRng {
        fn next_u64(&mut self) -> u64 {
            self.0
        }
    }

    /// A `next_u64` whose `f64` sample is (approximately) `x`.
    fn raw_for_draw(x: f64) -> u64 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let mantissa = (x * (1u64 << 53) as f64) as u64;
        mantissa << 11
    }

    #[test]
    fn measure_on_leaky_state_draws_against_normalized_probability() {
        // Regression companion to the `sample` fall-through fix: a
        // sub-normalized trajectory with half its weight lost. The true
        // Born probability of outcome 1 on qubit 0 is 0.25/0.5 = 0.5, but
        // the raw `prob_one` is 0.25 — drawing against the raw value
        // biased the branch toward 0.
        let make_leaky = || StateVector {
            num_qubits: 2,
            amps: vec![
                C64::real(0.25f64.sqrt()),
                C64::real(0.25f64.sqrt()),
                C64::zero(),
                C64::zero(),
            ],
        };
        let leaky = make_leaky();
        assert!((leaky.norm_sqr() - 0.5).abs() < 1e-12, "must be leaky");
        assert!((leaky.measure_prob_one(0) - 0.5).abs() < 1e-12);

        // A draw at ~0.4 sits between the biased (0.25) and the true (0.5)
        // probability: the fixed code must return 1 where the old returned 0.
        let mut rng = FixedRng(raw_for_draw(0.4));
        let mut sv = make_leaky();
        assert!(sv.measure(0, &mut rng), "draw 0.4 < normalized p1 0.5");

        // Unit-norm states are untouched by the normalization (n2 = 1).
        let mut plus = StateVector::zero_state(1);
        plus.apply_gate(&Gate::H, &[0]);
        assert!((plus.measure_prob_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hadamard_makes_uniform_superposition() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::H, &[0]);
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::H, &[0]);
        sv.apply_gate(&Gate::Cx, &[0, 1]);
        let p = sv.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01].abs() < 1e-12);
    }

    #[test]
    fn cx_respects_operand_order() {
        // control = qubit 1, target = qubit 0.
        let mut sv = StateVector::basis_state(2, 0b10);
        sv.apply_gate(&Gate::Cx, &[1, 0]);
        assert_eq!(sv.amplitudes()[0b11], C64::one());
    }

    #[test]
    fn toffoli_flips_only_when_both_controls_set() {
        for (input, expect) in [(0b011usize, 0b111usize), (0b001, 0b001), (0b010, 0b010)] {
            let mut sv = StateVector::basis_state(3, input);
            sv.apply_gate(&Gate::Ccx, &[0, 1, 2]);
            assert_eq!(sv.amplitudes()[expect], C64::one(), "input {input:03b}");
        }
    }

    #[test]
    fn gate_application_matches_embedded_matrix() {
        // Apply CV on qubits (2, 0) of a random-ish 3-qubit state both ways.
        let mut sv = StateVector::zero_state(3);
        for q in 0..3 {
            sv.apply_gate(&Gate::H, &[q]);
            sv.apply_gate(&Gate::T, &[q]);
        }
        let mut a = sv.clone();
        a.apply_gate(&Gate::Cv, &[2, 0]);
        let full = Gate::Cv.matrix().embed(&[2, 0], 3);
        let b = StateVector::from_amplitudes(full.mul_vec(sv.amplitudes()));
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn apply_circuit_matches_manual_application() {
        let mut circ = qcir::Circuit::new(2, 0);
        circ.h(qcir::Qubit::new(0))
            .t(qcir::Qubit::new(0))
            .cx(qcir::Qubit::new(0), qcir::Qubit::new(1));
        circ.barrier_all();
        circ.cv(qcir::Qubit::new(1), qcir::Qubit::new(0));
        let mut via_circuit = StateVector::zero_state(2);
        via_circuit.apply_circuit(&circ);
        let mut manual = StateVector::zero_state(2);
        manual.apply_gate(&Gate::H, &[0]);
        manual.apply_gate(&Gate::T, &[0]);
        manual.apply_gate(&Gate::Cx, &[0, 1]);
        manual.apply_gate(&Gate::Cv, &[1, 0]);
        assert!(via_circuit.approx_eq(&manual, 1e-12));
    }

    #[test]
    #[should_panic(expected = "unitary circuit")]
    fn apply_circuit_rejects_measurement() {
        let mut circ = qcir::Circuit::new(1, 1);
        circ.measure(qcir::Qubit::new(0), qcir::Clbit::new(0));
        StateVector::zero_state(1).apply_circuit(&circ);
    }

    #[test]
    fn prob_one_of_plus_state_is_half() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::H, &[0]);
        assert!((sv.prob_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn project_collapses_and_renormalizes() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::H, &[0]);
        sv.apply_gate(&Gate::Cx, &[0, 1]);
        let p = sv.project(0, true);
        assert!((p - 0.5).abs() < 1e-12);
        assert_eq!(sv.amplitudes()[0b11].abs().round() as i64, 1);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn project_impossible_outcome_returns_zero() {
        let mut sv = StateVector::zero_state(1);
        assert_eq!(sv.project(0, true), 0.0);
    }

    #[test]
    fn measurement_on_entangled_pair_correlates() {
        let mut r = rng();
        for _ in 0..20 {
            let mut sv = StateVector::zero_state(2);
            sv.apply_gate(&Gate::H, &[0]);
            sv.apply_gate(&Gate::Cx, &[0, 1]);
            let m0 = sv.measure(0, &mut r);
            let m1 = sv.measure(1, &mut r);
            assert_eq!(m0, m1);
        }
    }

    #[test]
    fn reset_always_gives_zero() {
        let mut r = rng();
        for _ in 0..10 {
            let mut sv = StateVector::zero_state(1);
            sv.apply_gate(&Gate::H, &[0]);
            sv.reset(0, &mut r);
            assert!((sv.prob_one(0)).abs() < 1e-12);
        }
    }

    #[test]
    fn reset_branch_reports_probability() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::H, &[0]);
        let p = sv.reset_branch(0, true);
        assert!((p - 0.5).abs() < 1e-12);
        assert!(sv.prob_one(0) < 1e-12);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::H, &[0]);
        sv.apply_gate(&Gate::Cx, &[0, 1]);
        let mut r = rng();
        let mut histogram = [0usize; 4];
        for _ in 0..2000 {
            histogram[sv.sample(&mut r)] += 1;
        }
        assert_eq!(histogram[0b01], 0);
        assert_eq!(histogram[0b10], 0);
        assert!(histogram[0b00] > 800 && histogram[0b11] > 800);
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let mut a = StateVector::zero_state(2);
        a.apply_gate(&Gate::H, &[0]);
        let b = a.clone();
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVector::basis_state(1, 0);
        let b = StateVector::basis_state(1, 1);
        assert!(a.fidelity(&b) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn apply_rejects_duplicate_wires() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::Cx, &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn from_amplitudes_rejects_unnormalized() {
        let _ = StateVector::from_amplitudes(vec![C64::one(), C64::one()]);
    }
}
