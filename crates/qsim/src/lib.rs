//! # qsim — simulators with mid-circuit measurement and classical feedback
//!
//! The simulation substrate for the dynamic-quantum-circuit reproduction:
//! dynamic circuits interleave unitary gates with mid-circuit measurement,
//! active reset and classically controlled operations, which rules out the
//! plain "apply gates then sample" simulators available off the shelf.
//!
//! Backends:
//!
//! * [`Executor`] — shot-based statevector execution (the AER stand-in),
//!   with optional trajectory noise. Two engines behind one determinism
//!   contract: the per-shot loop, and the prefix-sharing branch-tree
//!   engine ([`prefix`]) that evolves each stochastic branch once and
//!   samples shots by walking the tree ([`Engine`], default `Auto`);
//! * [`branch::exact_distribution`] — the exact, shot-noise-free outcome
//!   distribution of a dynamic circuit via measurement-branch enumeration;
//! * [`DensityMatrix`] / [`density::exact_distribution_noisy`] — exact mixed
//!   state evolution under Kraus noise;
//! * [`circuit_unitary`] — the unitary of a measurement-free circuit, for
//!   verifying gate decompositions.
//!
//! # Examples
//!
//! ```
//! use qcir::{Circuit, Qubit, Clbit};
//! use qsim::{branch::exact_distribution, Executor};
//!
//! // A dynamic circuit: measure, reset, classically controlled X.
//! let mut c = Circuit::new(1, 2);
//! let q0 = Qubit::new(0);
//! c.h(q0).measure(q0, Clbit::new(0));
//! c.reset(q0);
//! c.x_if(q0, Clbit::new(0));
//! c.measure(q0, Clbit::new(1));
//!
//! // The conditioned X copies the measured bit back: outcomes 00 and 11.
//! let exact = exact_distribution(&c);
//! assert!((exact.get("11") - 0.5).abs() < 1e-12);
//! assert!((exact.get("00") - 0.5).abs() < 1e-12);
//! let counts = Executor::new().shots(512).seed(1).run(&c);
//! assert_eq!(counts.total(), 512);
//! ```

pub mod branch;
mod counts;
pub mod density;
mod executor;
pub mod fault;
pub mod noise;
pub mod pauli;
pub mod prefix;
mod statevector;
mod unitary;

pub use counts::{bitstring, Counts, Distribution};
pub use density::DensityMatrix;
pub use executor::Executor;
pub use executor::{CancelToken, DriftPolicy, Engine, RunReport, Termination};
pub use fault::{CcFault, FaultHook, FaultSite, GateFate};
pub use noise::{GateNoise, KrausChannel, NoiseError, NoiseModel};
pub use pauli::{Pauli, PauliString};
pub use statevector::StateVector;
pub use unitary::{circuit_unitary, circuits_equivalent};
