//! Exact output distributions by measurement-branch enumeration.
//!
//! A dynamic circuit's outcome statistics are fully determined by following
//! *every* measurement branch with its exact probability instead of sampling
//! one. With `m` mid-circuit measurements this costs at most `2^m` branch
//! evaluations — trivially cheap for the circuits of the paper — and yields
//! distributions with **no shot noise**, which is what lets the test suite
//! assert exact functional equivalence between a traditional circuit and its
//! dynamic transformation.

use crate::counts::{bitstring, Distribution};
use crate::statevector::StateVector;
use qcir::{Circuit, OpKind};

/// Probability below which a branch is abandoned as numerically impossible.
const BRANCH_EPS: f64 = 1e-14;

/// Computes the exact distribution over classical-register outcomes of a
/// (possibly dynamic) circuit, assuming ideal (noise-free) execution.
///
/// Keys are bitstrings with classical bit `n-1` leftmost, matching
/// [`crate::Executor::run`].
///
/// # Examples
///
/// ```
/// use qcir::{Circuit, Qubit, Clbit};
/// use qsim::branch::exact_distribution;
///
/// let mut c = Circuit::new(1, 1);
/// c.h(Qubit::new(0)).measure(Qubit::new(0), Clbit::new(0));
/// let d = exact_distribution(&c);
/// assert!((d.get("0") - 0.5).abs() < 1e-12);
/// assert!((d.get("1") - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn exact_distribution(circuit: &Circuit) -> Distribution {
    let mut dist = Distribution::new();
    let state = StateVector::zero_state(circuit.num_qubits());
    let classical = vec![false; circuit.num_clbits()];
    explore(circuit, 0, state, classical, 1.0, &mut dist);
    dist.prune(BRANCH_EPS);
    dist
}

fn explore(
    circuit: &Circuit,
    start: usize,
    mut state: StateVector,
    mut classical: Vec<bool>,
    weight: f64,
    dist: &mut Distribution,
) {
    let insts = circuit.instructions();
    let mut idx = start;
    while idx < insts.len() {
        let inst = &insts[idx];
        if let Some(cond) = inst.condition() {
            if !cond.evaluate(&classical) {
                idx += 1;
                continue;
            }
        }
        match inst.kind() {
            OpKind::Barrier => {}
            OpKind::Gate(g) => {
                let qubits: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
                state.apply_gate(g, &qubits);
            }
            OpKind::Measure => {
                let q = inst.qubits()[0].index();
                let cbit = inst.clbits()[0].index();
                let p1 = state.prob_one(q);
                // Branch: outcome 1.
                if p1 > BRANCH_EPS {
                    let mut s1 = state.clone();
                    s1.project(q, true);
                    let mut c1 = classical.clone();
                    c1[cbit] = true;
                    explore(circuit, idx + 1, s1, c1, weight * p1, dist);
                }
                // Continue in place with outcome 0.
                let p0 = 1.0 - p1;
                if p0 <= BRANCH_EPS {
                    return;
                }
                state.project(q, false);
                classical[cbit] = false;
                return explore(circuit, idx + 1, state, classical, weight * p0, dist);
            }
            OpKind::Reset => {
                let q = inst.qubits()[0].index();
                let p1 = state.prob_one(q);
                if p1 > BRANCH_EPS {
                    let mut s1 = state.clone();
                    s1.reset_branch(q, true);
                    explore(circuit, idx + 1, s1, classical.clone(), weight * p1, dist);
                }
                let p0 = 1.0 - p1;
                if p0 <= BRANCH_EPS {
                    return;
                }
                state.reset_branch(q, false);
                return explore(circuit, idx + 1, state, classical, weight * p0, dist);
            }
        }
        idx += 1;
    }
    dist.add(bitstring(&classical), weight);
}

/// Computes the exact *joint* distribution of the classical register **and**
/// a final computational-basis measurement of the given qubits (appended as
/// extra leading bits). Useful for traditional circuits whose outputs live
/// on qubits rather than classical bits.
///
/// The key layout is `[qubits reversed][classical bits reversed]`, i.e. the
/// extra qubits occupy the leftmost characters.
#[must_use]
pub fn exact_distribution_with_final_measure(
    circuit: &Circuit,
    measured_qubits: &[qcir::Qubit],
) -> Distribution {
    let mut augmented = Circuit::new(
        circuit.num_qubits(),
        circuit.num_clbits() + measured_qubits.len(),
    );
    augmented.extend(circuit);
    for (k, q) in measured_qubits.iter().enumerate() {
        augmented.measure(*q, qcir::Clbit::new(circuit.num_clbits() + k));
    }
    exact_distribution(&augmented)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn deterministic_circuit_has_point_distribution() {
        let mut circ = Circuit::new(2, 2);
        circ.x(q(0)).measure_all();
        let d = exact_distribution(&circ);
        assert_eq!(d.len(), 1);
        assert!((d.get("01") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_pair_distribution_is_exactly_half_half() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0)).cx(q(0), q(1)).measure_all();
        let d = exact_distribution(&circ);
        assert!((d.get("00") - 0.5).abs() < 1e-12);
        assert!((d.get("11") - 0.5).abs() < 1e-12);
        assert_eq!(d.len(), 2);
        assert!((d.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_three_qubits() {
        let mut circ = Circuit::new(3, 3);
        circ.h(q(0)).cx(q(0), q(1)).cx(q(1), q(2)).measure_all();
        let d = exact_distribution(&circ);
        assert!((d.get("000") - 0.5).abs() < 1e-12);
        assert!((d.get("111") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conditioned_correction_restores_determinism() {
        // measure |+>, then apply X conditioned on the outcome: the second
        // measurement is always 0... after reset-like correction.
        let mut circ = Circuit::new(1, 2);
        circ.h(q(0)).measure(q(0), c(0)).x_if(q(0), c(0));
        circ.measure(q(0), c(1));
        let d = exact_distribution(&circ);
        // c1 is always 0; c0 is uniform.
        assert!((d.get("00") - 0.5).abs() < 1e-12);
        assert!((d.get("01") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_branches_produce_correct_weights() {
        // H, reset, measure: always 0 regardless of the collapsed branch.
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).reset(q(0)).measure(q(0), c(0));
        let d = exact_distribution(&circ);
        assert_eq!(d.len(), 1);
        assert!((d.get("0") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entangled_reset_preserves_partner_statistics() {
        // Bell pair, reset one half: the other half stays uniform.
        let mut circ = Circuit::new(2, 1);
        circ.h(q(0)).cx(q(0), q(1)).reset(q(0)).measure(q(1), c(0));
        let d = exact_distribution(&circ);
        assert!((d.get("0") - 0.5).abs() < 1e-12);
        assert!((d.get("1") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn qubit_reuse_after_reset_is_fresh() {
        let mut circ = Circuit::new(1, 2);
        circ.h(q(0))
            .measure(q(0), c(0))
            .reset(q(0))
            .measure(q(0), c(1));
        let d = exact_distribution(&circ);
        // c1 always 0, c0 uniform.
        assert!((d.get("00") - 0.5).abs() < 1e-12);
        assert!((d.get("01") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distribution_matches_sampled_counts() {
        use crate::executor::Executor;
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0)).cx(q(0), q(1)).h(q(1)).measure_all();
        let exact = exact_distribution(&circ);
        let counts = Executor::new().shots(8000).seed(13).run(&circ);
        let empirical = counts.to_distribution();
        assert!(
            exact.tvd(&empirical) < 0.03,
            "tvd {} too large",
            exact.tvd(&empirical)
        );
    }

    #[test]
    fn final_measure_helper_appends_qubit_bits() {
        let mut circ = Circuit::new(2, 1);
        circ.x(q(1)).measure(q(0), c(0));
        let d = exact_distribution_with_final_measure(&circ, &[q(1)]);
        // Layout: [q1][c0] -> "10".
        assert!((d.get("10") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_sum_to_one_with_many_branches() {
        let mut circ = Circuit::new(1, 4);
        for i in 0..4 {
            circ.h(q(0)).measure(q(0), c(i));
        }
        let d = exact_distribution(&circ);
        // `prune` renormalizes, so the total is 1 up to bare summation
        // rounding — not merely up to accumulated BRANCH_EPS dust.
        assert!((d.total() - 1.0).abs() < 1e-12, "total = {}", d.total());
        assert_eq!(d.len(), 16);
    }

    #[test]
    fn pruned_dust_weight_is_redistributed() {
        // A branch with probability ~sin^2(1e-8) ≈ 1e-16 < BRANCH_EPS is
        // explored as dust or skipped entirely; either way the surviving
        // distribution must still sum to 1 after pruning.
        let mut circ = Circuit::new(1, 2);
        circ.ry(1e-8 * 2.0, q(0)).measure(q(0), c(0));
        circ.h(q(0)).measure(q(0), c(1));
        let d = exact_distribution(&circ);
        assert!((d.total() - 1.0).abs() < 1e-12, "total = {}", d.total());
    }
}
