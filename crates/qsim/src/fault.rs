//! The executor's fault-injection seam.
//!
//! [`FaultHook`] is the narrow interface through which a fault plan (see the
//! `qfault` crate) perturbs a run: the executor asks the hook, at each named
//! boundary of the shot loop, whether a structured fault fires for
//! `(shot, site)`. The executor itself never draws randomness for faults —
//! a hook is expected to derive its decisions counter-style from its own
//! seed, so injected runs stay bit-identical across thread counts and
//! prefix-stable across shot counts, exactly like the noise RNG streams.
//!
//! With no hook installed ([`Executor::fault_hook`](crate::Executor::fault_hook)
//! never called) every site collapses to a single `Option` branch and the
//! executor behaves bit-identically to a build without this module.

use std::fmt;
use std::time::Duration;

/// A named boundary of the shot loop where a fault can be injected.
///
/// The `site` argument the executor passes alongside a [`FaultSite`] is the
/// instruction index within the circuit (0 for the per-shot sites
/// [`FaultSite::ShotPanic`] / [`FaultSite::ShotDelay`], which fire before
/// any instruction runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// An active reset completes but leaves the qubit in `|1>`.
    ResetLeak,
    /// A measurement outcome is flipped after (noise-free or noisy) readout.
    MeasFlip,
    /// A classical bit read by a condition is flipped in the register just
    /// before the condition is evaluated.
    CcFlip,
    /// A classical bit read by a condition is lost (forced to 0) just
    /// before the condition is evaluated.
    CcLoss,
    /// A gate whose condition passed is silently dropped.
    GateDrop,
    /// A gate whose condition passed is applied twice.
    GateDup,
    /// The shot panics before its first instruction.
    ShotPanic,
    /// The shot sleeps before its first instruction (exercises deadlines).
    ShotDelay,
}

impl FaultSite {
    /// Every site, in a fixed order (used for salting fault streams).
    pub const ALL: [FaultSite; 8] = [
        FaultSite::ResetLeak,
        FaultSite::MeasFlip,
        FaultSite::CcFlip,
        FaultSite::CcLoss,
        FaultSite::GateDrop,
        FaultSite::GateDup,
        FaultSite::ShotPanic,
        FaultSite::ShotDelay,
    ];

    /// The site's spec name, as accepted by `dqct --inject`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::ResetLeak => "reset-leak",
            FaultSite::MeasFlip => "meas-flip",
            FaultSite::CcFlip => "cc-flip",
            FaultSite::CcLoss => "cc-loss",
            FaultSite::GateDrop => "gate-drop",
            FaultSite::GateDup => "gate-dup",
            FaultSite::ShotPanic => "panic",
            FaultSite::ShotDelay => "delay",
        }
    }

    /// The qobs counter recording injections at this site.
    #[must_use]
    pub fn counter(self) -> &'static str {
        match self {
            FaultSite::ResetLeak => "fault.injected.reset-leak",
            FaultSite::MeasFlip => "fault.injected.meas-flip",
            FaultSite::CcFlip => "fault.injected.cc-flip",
            FaultSite::CcLoss => "fault.injected.cc-loss",
            FaultSite::GateDrop => "fault.injected.gate-drop",
            FaultSite::GateDup => "fault.injected.gate-dup",
            FaultSite::ShotPanic => "fault.injected.panic",
            FaultSite::ShotDelay => "fault.injected.delay",
        }
    }

    /// Parses a spec name back into a site (the inverse of
    /// [`FaultSite::name`]).
    #[must_use]
    pub fn parse(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The qobs counter recording injected panics that `run_resilient` isolated.
pub const FAULT_CAUGHT_PANIC: &str = "fault.caught.panic";

/// What happens to a gate whose condition passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GateFate {
    /// Apply the gate normally.
    #[default]
    Execute,
    /// Drop the gate (its noise channel is skipped too: the gate never ran).
    Drop,
    /// Apply the gate twice.
    Duplicate,
}

/// A corruption of the classical bits a condition is about to read.
/// The payload selects which of the condition's read bits (by position in
/// [`qcir::Condition::bits`] order) is hit; the corruption is applied to the
/// classical register itself, so later reads of the same bit see it too —
/// as a dropped or flipped feed-forward message would on hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcFault {
    /// Flip the selected bit.
    Flip(usize),
    /// Lose the selected bit (force it to 0).
    Lose(usize),
}

/// Decides, per `(shot, site)`, whether a structured fault fires.
///
/// Implementations must be pure functions of their inputs (plus internal
/// immutable configuration): the executor may consult the same decision
/// more than once — e.g. [`FaultHook::shot_panic`] is re-queried after a
/// caught panic to attribute it — and relies on every answer being
/// identical whatever the thread count or query order. Deriving decisions
/// from `rand::stream_seed` chains keeps this contract for free.
pub trait FaultHook: fmt::Debug + Send + Sync {
    /// Should this shot panic before its first instruction?
    fn shot_panic(&self, shot: u64) -> bool {
        let _ = shot;
        false
    }

    /// Should this shot stall before its first instruction, and for how long?
    fn shot_delay(&self, shot: u64) -> Option<Duration> {
        let _ = shot;
        None
    }

    /// Fate of the gate at instruction `site` in this shot (asked only
    /// after the gate's condition, if any, passed).
    fn gate_fate(&self, shot: u64, site: usize) -> GateFate {
        let _ = (shot, site);
        GateFate::Execute
    }

    /// Should the reset at instruction `site` leave the qubit in `|1>`?
    fn reset_leak(&self, shot: u64, site: usize) -> bool {
        let _ = (shot, site);
        false
    }

    /// Should the measurement at instruction `site` record a flipped bit?
    fn measure_flip(&self, shot: u64, site: usize) -> bool {
        let _ = (shot, site);
        false
    }

    /// Corruption (if any) of the `num_bits` classical bits the condition
    /// at instruction `site` reads, applied before it is evaluated.
    fn condition_fault(&self, shot: u64, site: usize, num_bits: usize) -> Option<CcFault> {
        let _ = (shot, site, num_bits);
        None
    }
}
