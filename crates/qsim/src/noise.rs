//! Noise channels and device noise models.
//!
//! The paper's motivation is execution on real (noisy) hardware; its
//! simulator study is ideal. This module provides the synthetic device:
//! Kraus channels attached to gates plus classical readout and reset errors,
//! usable both stochastically (statevector trajectories) and exactly
//! (density-matrix evolution).

use qmath::{CMatrix, C64};
use rand::Rng;
use std::error::Error;
use std::fmt;

use crate::statevector::StateVector;

/// A typed error from fallible noise-channel construction.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseError {
    /// A channel was given no Kraus operators.
    EmptyChannel,
    /// The Kraus operators are not all square with one shared dimension.
    ShapeMismatch,
    /// The shared Kraus dimension is not a power of two.
    DimensionNotPowerOfTwo {
        /// The offending dimension.
        dim: usize,
    },
    /// `sum K†K` deviates from the identity beyond tolerance.
    NotTracePreserving {
        /// Largest absolute entry deviation from the identity.
        deviation: f64,
    },
    /// A probability-like parameter fell outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Name of the parameter (e.g. `"p"`, `"gamma"`, `"scale"`).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A channel was requested for an unsupported qubit count.
    UnsupportedArity {
        /// The requested arity.
        arity: usize,
    },
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::EmptyChannel => write!(f, "a channel needs at least one Kraus operator"),
            NoiseError::ShapeMismatch => write!(f, "Kraus operator shapes must agree"),
            NoiseError::DimensionNotPowerOfTwo { dim } => {
                write!(f, "Kraus dimension {dim} is not a power of two")
            }
            NoiseError::NotTracePreserving { deviation } => write!(
                f,
                "Kraus operators are not trace preserving (deviation {deviation:.3e})"
            ),
            NoiseError::ProbabilityOutOfRange { name, value } => {
                write!(f, "{name} = {value} is outside [0, 1]")
            }
            NoiseError::UnsupportedArity { arity } => {
                write!(f, "unsupported channel arity {arity}")
            }
        }
    }
}

impl Error for NoiseError {}

/// A completely positive trace-preserving map given by Kraus operators.
///
/// # Examples
///
/// ```
/// use qsim::noise::KrausChannel;
/// let ch = KrausChannel::depolarizing(0.1, 1);
/// assert_eq!(ch.num_qubits(), 1);
/// assert_eq!(ch.operators().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KrausChannel {
    num_qubits: usize,
    ops: Vec<CMatrix>,
}

impl KrausChannel {
    /// Builds a channel from explicit Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if the operators are not all square of equal power-of-two
    /// dimension, or if they fail the trace-preservation condition
    /// `sum K†K = I` beyond `1e-9`. Use [`KrausChannel::try_new`] to get a
    /// typed error instead.
    #[must_use]
    pub fn new(ops: Vec<CMatrix>) -> Self {
        match Self::try_new(ops) {
            Ok(ch) => ch,
            Err(NoiseError::NotTracePreserving { deviation }) => {
                panic!("Kraus operators are not trace preserving (deviation {deviation:.3e})")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a channel from explicit Kraus operators, reporting validation
    /// failures as a typed [`NoiseError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError`] when the operator list is empty, the shapes
    /// disagree or are not square of power-of-two dimension, or the
    /// trace-preservation condition `sum K†K = I` fails beyond `1e-9`.
    pub fn try_new(ops: Vec<CMatrix>) -> Result<Self, NoiseError> {
        if ops.is_empty() {
            return Err(NoiseError::EmptyChannel);
        }
        let dim = ops[0].rows();
        if !dim.is_power_of_two() {
            return Err(NoiseError::DimensionNotPowerOfTwo { dim });
        }
        let mut sum = CMatrix::zeros(dim, dim);
        for k in &ops {
            if !k.is_square() || k.rows() != dim {
                return Err(NoiseError::ShapeMismatch);
            }
            sum = sum.add(&k.dagger().mul(k));
        }
        let deviation = sum
            .sub(&CMatrix::identity(dim))
            .as_slice()
            .iter()
            .map(|z| z.abs())
            .fold(0.0_f64, f64::max);
        if deviation > 1e-9 || deviation.is_nan() {
            return Err(NoiseError::NotTracePreserving { deviation });
        }
        Ok(Self {
            num_qubits: dim.trailing_zeros() as usize,
            ops,
        })
    }

    /// Number of qubits the channel acts on.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The Kraus operators.
    #[must_use]
    pub fn operators(&self) -> &[CMatrix] {
        &self.ops
    }

    /// The identity (no-op) channel on `n` qubits.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self::new(vec![CMatrix::identity(1 << n)])
    }

    /// Depolarizing channel: with probability `p` the state is replaced by
    /// the maximally mixed state (uniform Pauli error).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `n` is not 1 or 2.
    #[must_use]
    pub fn depolarizing(p: f64, n: usize) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        assert!(n == 1 || n == 2, "depolarizing supports 1 or 2 qubits");
        match Self::try_depolarizing(p, n) {
            Ok(ch) => ch,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`KrausChannel::depolarizing`].
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError`] if `p` is outside `[0, 1]` (including NaN) or
    /// `n` is not 1 or 2.
    pub fn try_depolarizing(p: f64, n: usize) -> Result<Self, NoiseError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(NoiseError::ProbabilityOutOfRange {
                name: "p",
                value: p,
            });
        }
        if n != 1 && n != 2 {
            return Err(NoiseError::UnsupportedArity { arity: n });
        }
        let paulis_1q = [
            CMatrix::identity(2),
            CMatrix::pauli_x(),
            CMatrix::pauli_y(),
            CMatrix::pauli_z(),
        ];
        let mut paulis: Vec<CMatrix> = Vec::new();
        if n == 1 {
            paulis.extend(paulis_1q.iter().cloned());
        } else {
            for a in &paulis_1q {
                for b in &paulis_1q {
                    // Operand 0 is the low index bit: b (x) a with our
                    // big-endian kron = a on bit 0.
                    paulis.push(b.kron(a));
                }
            }
        }
        let d2 = paulis.len() as f64; // 4 or 16
        let mut ops = Vec::new();
        for (i, pauli) in paulis.into_iter().enumerate() {
            let w = if i == 0 {
                (1.0 - p + p / d2).sqrt()
            } else {
                (p / d2).sqrt()
            };
            ops.push(pauli.scale(C64::real(w)));
        }
        Self::try_new(ops)
    }

    /// Bit-flip channel: X with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn bit_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Self::new(vec![
            CMatrix::identity(2).scale(C64::real((1.0 - p).sqrt())),
            CMatrix::pauli_x().scale(C64::real(p.sqrt())),
        ])
    }

    /// Phase-flip channel: Z with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn phase_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Self::new(vec![
            CMatrix::identity(2).scale(C64::real((1.0 - p).sqrt())),
            CMatrix::pauli_z().scale(C64::real(p.sqrt())),
        ])
    }

    /// Amplitude damping (T1 decay) with decay probability `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `[0, 1]`.
    #[must_use]
    pub fn amplitude_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
        let k0 = CMatrix::from_flat(vec![
            C64::one(),
            C64::zero(),
            C64::zero(),
            C64::real((1.0 - gamma).sqrt()),
        ]);
        let k1 = CMatrix::from_flat(vec![
            C64::zero(),
            C64::real(gamma.sqrt()),
            C64::zero(),
            C64::zero(),
        ]);
        Self::new(vec![k0, k1])
    }

    /// Phase damping (pure T2 dephasing) with parameter `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `[0, 1]`.
    #[must_use]
    pub fn phase_damping(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda out of range");
        let k0 = CMatrix::from_flat(vec![
            C64::one(),
            C64::zero(),
            C64::zero(),
            C64::real((1.0 - lambda).sqrt()),
        ]);
        let k1 = CMatrix::from_flat(vec![
            C64::zero(),
            C64::zero(),
            C64::zero(),
            C64::real(lambda.sqrt()),
        ]);
        Self::new(vec![k0, k1])
    }

    /// Applies the channel stochastically to a pure state (quantum
    /// trajectory): Kraus operator `K_i` is selected with probability
    /// `||K_i psi||^2` and the state renormalized.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len()` differs from the channel arity.
    pub fn apply_stochastic<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        qubits: &[usize],
        rng: &mut R,
    ) {
        assert_eq!(qubits.len(), self.num_qubits, "channel arity mismatch");
        if self.ops.len() == 1 {
            state.apply_matrix(&self.ops[0], qubits);
            return;
        }
        let x: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, k) in self.ops.iter().enumerate() {
            let mut candidate = state.clone();
            candidate.apply_matrix(k, qubits);
            let p = candidate.norm_sqr();
            acc += p;
            if x < acc || i == self.ops.len() - 1 {
                if p > f64::EPSILON {
                    let scale = C64::real(1.0 / p.sqrt());
                    *state = StateVector::from_amplitudes(
                        candidate.amplitudes().iter().map(|&a| a * scale).collect(),
                    );
                }
                return;
            }
        }
    }
}

/// A device noise model: channels attached to gates by arity plus classical
/// readout and reset errors.
///
/// # Examples
///
/// ```
/// use qsim::noise::NoiseModel;
/// let nm = NoiseModel::depolarizing(0.001, 0.01);
/// assert!(!nm.is_ideal());
/// assert!(NoiseModel::ideal().is_ideal());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NoiseModel {
    /// Channel applied after every single-qubit gate.
    pub gate_1q: Option<KrausChannel>,
    /// Channel applied after every two-qubit gate (to both operands).
    pub gate_2q: Option<KrausChannel>,
    /// Probability that a recorded measurement outcome is flipped.
    pub readout_flip: f64,
    /// Probability that an active reset leaves the qubit in `|1>`.
    pub reset_error: f64,
    /// Single-qubit channel applied to every qubit **idle during a circuit
    /// layer** (T1/T2 decay while waiting). This is what makes the dynamic
    /// circuits' depth overhead cost accuracy; honoured by the trajectory
    /// executor, which schedules the circuit into dependency layers.
    pub idle: Option<KrausChannel>,
}

impl NoiseModel {
    /// The ideal (noise-free) model.
    #[must_use]
    pub fn ideal() -> Self {
        Self::default()
    }

    /// `true` when the model introduces no errors at all.
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.gate_1q.is_none()
            && self.gate_2q.is_none()
            && self.readout_flip == 0.0
            && self.reset_error == 0.0
            && self.idle.is_none()
    }

    /// Returns a copy with amplitude-damping idle decay of strength `gamma`
    /// per circuit layer attached.
    #[must_use]
    pub fn with_idle_damping(mut self, gamma: f64) -> Self {
        self.idle = (gamma > 0.0).then(|| KrausChannel::amplitude_damping(gamma));
        self
    }

    /// A uniform depolarizing model: probability `p1` after 1-qubit gates
    /// and `p2` after 2-qubit gates.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    #[must_use]
    pub fn depolarizing(p1: f64, p2: f64) -> Self {
        match Self::try_depolarizing(p1, p2) {
            Ok(nm) => nm,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`NoiseModel::depolarizing`].
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError`] if either probability is outside `[0, 1]`
    /// (including NaN).
    pub fn try_depolarizing(p1: f64, p2: f64) -> Result<Self, NoiseError> {
        Ok(Self {
            gate_1q: if p1 > 0.0 {
                Some(KrausChannel::try_depolarizing(p1, 1)?)
            } else {
                check_probability("p1", p1)?;
                None
            },
            gate_2q: if p2 > 0.0 {
                Some(KrausChannel::try_depolarizing(p2, 2)?)
            } else {
                check_probability("p2", p2)?;
                None
            },
            readout_flip: 0.0,
            reset_error: 0.0,
            idle: None,
        })
    }

    /// A rough superconducting-device profile: depolarizing gate noise plus
    /// readout and reset error, parameterized by an overall `scale` in
    /// `[0, 1]` (0 = ideal; 1 roughly mirrors a 2021-era IBM device:
    /// `p1 = 0.0004`, `p2 = 0.01`, 2% readout error, 1% reset error).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is NaN or large enough to push any error rate
    /// past 1.
    #[must_use]
    pub fn device_like(scale: f64) -> Self {
        match Self::try_device_like(scale) {
            Ok(nm) => nm,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`NoiseModel::device_like`].
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError`] if `scale` is NaN or any derived error rate
    /// leaves `[0, 1]`.
    pub fn try_device_like(scale: f64) -> Result<Self, NoiseError> {
        if scale.is_nan() {
            return Err(NoiseError::ProbabilityOutOfRange {
                name: "scale",
                value: scale,
            });
        }
        if scale <= 0.0 {
            return Ok(Self::ideal());
        }
        check_probability("readout_flip", 0.02 * scale)?;
        check_probability("reset_error", 0.01 * scale)?;
        Ok(Self {
            gate_1q: Some(KrausChannel::try_depolarizing(0.0004 * scale, 1)?),
            gate_2q: Some(KrausChannel::try_depolarizing(0.01 * scale, 2)?),
            readout_flip: 0.02 * scale,
            reset_error: 0.01 * scale,
            idle: None,
        })
    }

    /// The channel applied after a gate of the given arity, if any.
    ///
    /// Only arities with a native channel (1 and 2) return one; wider gates
    /// have no joint channel and are noised per-operand — see
    /// [`NoiseModel::gate_noise`].
    #[must_use]
    pub fn channel_for_arity(&self, arity: usize) -> Option<&KrausChannel> {
        match arity {
            1 => self.gate_1q.as_ref(),
            2 => self.gate_2q.as_ref(),
            _ => None,
        }
    }

    /// The noise to inject after a gate of the given arity.
    ///
    /// Arity 1 and 2 use their native channel on all operands jointly. Wider
    /// gates (Toffoli, MCX) have no native channel; instead of silently
    /// reusing the 2-qubit channel on a subset of operands (which both
    /// under-covered the gate and misassigned correlated errors), the
    /// single-qubit channel is applied independently to every operand.
    #[must_use]
    pub fn gate_noise(&self, arity: usize) -> Option<GateNoise<'_>> {
        match arity {
            1 => self.gate_1q.as_ref().map(GateNoise::Joint),
            2 => self.gate_2q.as_ref().map(GateNoise::Joint),
            _ => self.gate_1q.as_ref().map(GateNoise::PerOperand),
        }
    }
}

/// How [`NoiseModel::gate_noise`] covers a gate's operands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateNoise<'a> {
    /// One channel whose arity matches the gate, applied to all operands.
    Joint(&'a KrausChannel),
    /// A single-qubit channel applied independently to each operand.
    PerOperand(&'a KrausChannel),
}

fn check_probability(name: &'static str, value: f64) -> Result<(), NoiseError> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(NoiseError::ProbabilityOutOfRange { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn depolarizing_is_trace_preserving() {
        // Constructor validates; reaching here is the assertion.
        let _ = KrausChannel::depolarizing(0.3, 1);
        let _ = KrausChannel::depolarizing(0.3, 2);
    }

    #[test]
    fn all_named_channels_validate() {
        let _ = KrausChannel::bit_flip(0.2);
        let _ = KrausChannel::phase_flip(0.2);
        let _ = KrausChannel::amplitude_damping(0.3);
        let _ = KrausChannel::phase_damping(0.3);
        let _ = KrausChannel::identity(2);
    }

    #[test]
    #[should_panic(expected = "not trace preserving")]
    fn invalid_kraus_rejected() {
        let _ = KrausChannel::new(vec![CMatrix::pauli_x().scale(C64::real(0.5))]);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn out_of_range_probability_rejected() {
        let _ = KrausChannel::bit_flip(1.5);
    }

    #[test]
    fn zero_probability_channels_are_identity_like() {
        let ch = KrausChannel::bit_flip(0.0);
        let mut sv = StateVector::zero_state(1);
        let mut rng = StdRng::seed_from_u64(1);
        ch.apply_stochastic(&mut sv, &[0], &mut rng);
        assert!((sv.amplitudes()[0].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_bit_flip_always_flips() {
        let ch = KrausChannel::bit_flip(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let mut sv = StateVector::zero_state(1);
            ch.apply_stochastic(&mut sv, &[0], &mut rng);
            assert!((sv.prob_one(0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn trajectory_statistics_match_channel() {
        // Bit-flip p=0.25 on |0>: expect ~25% ones.
        let ch = KrausChannel::bit_flip(0.25);
        let mut rng = StdRng::seed_from_u64(3);
        let mut ones = 0;
        let n = 4000;
        for _ in 0..n {
            let mut sv = StateVector::zero_state(1);
            ch.apply_stochastic(&mut sv, &[0], &mut rng);
            if sv.prob_one(0) > 0.5 {
                ones += 1;
            }
        }
        let rate = ones as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let ch = KrausChannel::amplitude_damping(1.0);
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::X, &[0]);
        let mut rng = StdRng::seed_from_u64(4);
        ch.apply_stochastic(&mut sv, &[0], &mut rng);
        assert!(sv.prob_one(0) < 1e-12);
    }

    #[test]
    fn noise_model_classifies_ideal() {
        assert!(NoiseModel::ideal().is_ideal());
        assert!(NoiseModel::device_like(0.0).is_ideal());
        assert!(!NoiseModel::depolarizing(0.01, 0.0).is_ideal());
        assert!(!NoiseModel::device_like(1.0).is_ideal());
    }

    #[test]
    fn channel_selection_by_arity() {
        let nm = NoiseModel::depolarizing(0.01, 0.02);
        assert_eq!(nm.channel_for_arity(1).unwrap().num_qubits(), 1);
        assert_eq!(nm.channel_for_arity(2).unwrap().num_qubits(), 2);
        // Wider gates have no native channel; they are noised per-operand.
        assert_eq!(nm.channel_for_arity(3), None);
        match nm.gate_noise(3) {
            Some(GateNoise::PerOperand(ch)) => assert_eq!(ch.num_qubits(), 1),
            other => panic!("expected per-operand 1q noise, got {other:?}"),
        }
        match nm.gate_noise(2) {
            Some(GateNoise::Joint(ch)) => assert_eq!(ch.num_qubits(), 2),
            other => panic!("expected joint 2q noise, got {other:?}"),
        }
        // Without a 1q channel there is nothing to apply per-operand.
        let only_2q = NoiseModel::depolarizing(0.0, 0.02);
        assert_eq!(only_2q.gate_noise(3), None);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            KrausChannel::try_new(vec![]).unwrap_err(),
            NoiseError::EmptyChannel
        );
        assert_eq!(
            KrausChannel::try_new(vec![CMatrix::zeros(3, 3)]).unwrap_err(),
            NoiseError::DimensionNotPowerOfTwo { dim: 3 }
        );
        assert_eq!(
            KrausChannel::try_new(vec![CMatrix::identity(2), CMatrix::identity(4)]).unwrap_err(),
            NoiseError::ShapeMismatch
        );
        match KrausChannel::try_new(vec![CMatrix::pauli_x().scale(C64::real(0.5))]) {
            Err(NoiseError::NotTracePreserving { deviation }) => {
                assert!((deviation - 0.75).abs() < 1e-12, "deviation {deviation}");
            }
            other => panic!("expected trace-preservation error, got {other:?}"),
        }
        // A valid construction still succeeds through the fallible path.
        assert!(KrausChannel::try_new(vec![CMatrix::identity(2)]).is_ok());
    }

    #[test]
    fn fallible_builders_reject_bad_probabilities() {
        assert!(matches!(
            KrausChannel::try_depolarizing(f64::NAN, 1),
            Err(NoiseError::ProbabilityOutOfRange { name: "p", .. })
        ));
        assert!(matches!(
            KrausChannel::try_depolarizing(0.1, 3),
            Err(NoiseError::UnsupportedArity { arity: 3 })
        ));
        assert!(matches!(
            NoiseModel::try_depolarizing(-0.1, 0.0),
            Err(NoiseError::ProbabilityOutOfRange { name: "p1", .. })
        ));
        assert!(matches!(
            NoiseModel::try_device_like(f64::NAN),
            Err(NoiseError::ProbabilityOutOfRange { name: "scale", .. })
        ));
        assert!(matches!(
            NoiseModel::try_device_like(200.0),
            Err(NoiseError::ProbabilityOutOfRange { .. })
        ));
        assert_eq!(
            NoiseModel::try_device_like(0.5).unwrap(),
            NoiseModel::device_like(0.5)
        );
    }
}
