//! Building the unitary matrix of a measurement-free circuit.

use qcir::{Circuit, CircuitError, OpKind};
use qmath::CMatrix;

/// Maximum qubit count for unitary construction (`2^12 x 2^12` complex
/// entries is already 256 MiB; everything in this workspace is far smaller).
const MAX_QUBITS: usize = 12;

/// Computes the full unitary of `circuit`.
///
/// Uses the workspace-wide convention: qubit `q` is bit `q` of the basis
/// index (least-significant first).
///
/// # Errors
///
/// Returns [`CircuitError::NotUnitary`] when the circuit contains
/// measurement, reset, or classically conditioned operations.
///
/// # Panics
///
/// Panics if the circuit has more than 12 qubits.
///
/// # Examples
///
/// ```
/// use qcir::{Circuit, Qubit, Gate};
/// use qsim::circuit_unitary;
///
/// let mut c = Circuit::new(1, 0);
/// c.h(Qubit::new(0)).h(Qubit::new(0));
/// let u = circuit_unitary(&c).unwrap();
/// assert!(u.approx_eq(&qmath::CMatrix::identity(2), 1e-12));
/// ```
pub fn circuit_unitary(circuit: &Circuit) -> Result<CMatrix, CircuitError> {
    assert!(
        circuit.num_qubits() <= MAX_QUBITS,
        "unitary construction supports at most {MAX_QUBITS} qubits"
    );
    let n = circuit.num_qubits();
    let mut u = CMatrix::identity(1 << n);
    for inst in circuit.iter() {
        match inst.kind() {
            OpKind::Barrier => {}
            OpKind::Gate(g) if !inst.is_conditioned() => {
                let pos: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
                u = g.matrix().embed(&pos, n).mul(&u);
            }
            _ => {
                return Err(CircuitError::NotUnitary {
                    what: inst.to_string(),
                });
            }
        }
    }
    Ok(u)
}

/// Checks that two measurement-free circuits implement the same unitary up
/// to global phase.
///
/// # Errors
///
/// Returns [`CircuitError::NotUnitary`] if either circuit is not unitary.
pub fn circuits_equivalent(a: &Circuit, b: &Circuit, tol: f64) -> Result<bool, CircuitError> {
    if a.num_qubits() != b.num_qubits() {
        return Ok(false);
    }
    let ua = circuit_unitary(a)?;
    let ub = circuit_unitary(b)?;
    Ok(ua.approx_eq_up_to_phase(&ub, tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::decompose::{ccx_clifford_t, ccx_cv, ccx_cv_ancilla, cv_clifford_t, mcx_ladder};
    use qcir::{Gate, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn empty_circuit_is_identity() {
        let u = circuit_unitary(&Circuit::new(2, 0)).unwrap();
        assert!(u.approx_eq(&CMatrix::identity(4), 0.0));
    }

    #[test]
    fn single_gate_matches_embedding() {
        let mut c = Circuit::new(2, 0);
        c.cx(q(1), q(0));
        let u = circuit_unitary(&c).unwrap();
        assert!(u.approx_eq(&Gate::Cx.matrix().embed(&[1, 0], 2), 1e-12));
    }

    #[test]
    fn gate_order_is_right_to_left_in_matrix_product() {
        let mut c = Circuit::new(1, 0);
        c.h(q(0)).t(q(0));
        let u = circuit_unitary(&c).unwrap();
        let expect = Gate::T.matrix().mul(&Gate::H.matrix());
        assert!(u.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn measurement_is_rejected() {
        let mut c = Circuit::new(1, 1);
        c.measure(q(0), qcir::Clbit::new(0));
        assert!(circuit_unitary(&c).is_err());
    }

    #[test]
    fn conditioned_gate_is_rejected() {
        let mut c = Circuit::new(1, 1);
        c.x_if(q(0), qcir::Clbit::new(0));
        assert!(circuit_unitary(&c).is_err());
    }

    // --- The decomposition identities of the paper, verified exactly ---

    #[test]
    fn clifford_t_toffoli_equals_ccx() {
        let mut ccx = Circuit::new(3, 0);
        ccx.ccx(q(0), q(1), q(2));
        assert!(circuits_equivalent(&ccx_clifford_t(), &ccx, 1e-9).unwrap());
    }

    #[test]
    fn cv_network_equals_ccx() {
        let mut ccx = Circuit::new(3, 0);
        ccx.ccx(q(0), q(1), q(2));
        assert!(circuits_equivalent(&ccx_cv(), &ccx, 1e-9).unwrap());
    }

    /// Compares two circuits on every basis state whose ancilla wires
    /// (`clean` positions) are `|0>`: equality there is what ancilla-based
    /// identities guarantee.
    fn equivalent_on_clean_subspace(a: &Circuit, b: &Circuit, clean: &[usize]) -> bool {
        assert_eq!(a.num_qubits(), b.num_qubits());
        let n = a.num_qubits();
        let ua = circuit_unitary(a).unwrap();
        let ub = circuit_unitary(b).unwrap();
        for input in 0..(1usize << n) {
            if clean.iter().any(|&c| input & (1 << c) != 0) {
                continue;
            }
            let mut basis = vec![qmath::C64::zero(); 1 << n];
            basis[input] = qmath::C64::one();
            let va = ua.mul_vec(&basis);
            let vb = ub.mul_vec(&basis);
            if va.iter().zip(&vb).any(|(&x, &y)| !x.approx_eq(y, 1e-9)) {
                return false;
            }
        }
        true
    }

    #[test]
    fn cv_ancilla_network_equals_ccx_on_clean_ancilla() {
        // The 4-qubit unrolled network (qubit 3 = ancilla) equals CCX (x) I
        // on the ancilla-in-|0> subspace, uncomputing the ancilla back to 0.
        let mut ccx4 = Circuit::new(4, 0);
        ccx4.ccx(q(0), q(1), q(2));
        assert!(equivalent_on_clean_subspace(&ccx_cv_ancilla(), &ccx4, &[3]));
    }

    #[test]
    fn cv_ancilla_network_differs_on_dirty_ancilla() {
        // Sanity check that the restriction matters: the identity fails as a
        // full 4-qubit unitary.
        let mut ccx4 = Circuit::new(4, 0);
        ccx4.ccx(q(0), q(1), q(2));
        assert!(!circuits_equivalent(&ccx_cv_ancilla(), &ccx4, 1e-9).unwrap());
    }

    #[test]
    fn cv_clifford_t_equals_cv_gate() {
        let mut cv = Circuit::new(2, 0);
        cv.cv(q(0), q(1));
        assert!(circuits_equivalent(&cv_clifford_t(false), &cv, 1e-9).unwrap());
        let mut cvdg = Circuit::new(2, 0);
        cvdg.cvdg(q(0), q(1));
        assert!(circuits_equivalent(&cv_clifford_t(true), &cvdg, 1e-9).unwrap());
    }

    #[test]
    fn mcx_ladder_equals_mcx_gate_on_clean_ancillas() {
        for n in 3..=4usize {
            let ladder = mcx_ladder(n);
            let mut direct = Circuit::new(2 * n - 1, 0);
            let controls: Vec<Qubit> = (0..n).map(Qubit::new).collect();
            direct.mcx(&controls, Qubit::new(n));
            let ancillas: Vec<usize> = (n + 1..2 * n - 1).collect();
            assert!(
                equivalent_on_clean_subspace(&ladder, &direct, &ancillas),
                "mcx ladder mismatch for n = {n}"
            );
        }
    }

    #[test]
    fn decompose_pass_preserves_unitary() {
        use qcir::decompose::{decompose_ccx, decompose_cv, ToffoliStyle};
        let mut circ = Circuit::new(3, 0);
        circ.h(q(0)).ccx(q(0), q(1), q(2)).cx(q(1), q(2));
        for style in [ToffoliStyle::CliffordT, ToffoliStyle::CvChain] {
            let lowered = decompose_cv(&decompose_ccx(&circ, style));
            assert!(
                circuits_equivalent(&circ, &lowered, 1e-9).unwrap(),
                "style {style:?} broke the unitary"
            );
        }
    }

    #[test]
    fn inverse_circuit_gives_dagger() {
        let mut circ = Circuit::new(2, 0);
        circ.h(q(0)).t(q(0)).cv(q(0), q(1)).cx(q(0), q(1));
        let u = circuit_unitary(&circ).unwrap();
        let udg = circuit_unitary(&circ.inverse().unwrap()).unwrap();
        assert!(u.mul(&udg).approx_eq(&CMatrix::identity(4), 1e-12));
    }
}
