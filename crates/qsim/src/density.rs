//! Density-matrix simulation: exact mixed-state evolution with noise.
//!
//! The density-matrix backend evolves the full mixed state, so noise
//! channels are applied *exactly* rather than sampled. Combined with
//! branch enumeration over measurement outcomes it yields the exact outcome
//! distribution of a noisy dynamic circuit — the reference against which the
//! stochastic trajectory executor is validated.

use crate::counts::{bitstring, Distribution};
use crate::noise::{KrausChannel, NoiseModel};
use crate::statevector::StateVector;
use qcir::{Circuit, OpKind};
use qmath::{CMatrix, C64};

/// Probability below which a measurement branch is abandoned.
const BRANCH_EPS: f64 = 1e-14;

/// A mixed quantum state on `n` qubits.
///
/// Uses the workspace index convention (qubit `q` on index bit `q`).
///
/// # Examples
///
/// ```
/// use qsim::DensityMatrix;
/// use qcir::Gate;
///
/// let mut rho = DensityMatrix::zero_state(1);
/// rho.apply_gate(&Gate::H, &[0]);
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// assert!((rho.prob_one(0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    mat: CMatrix,
}

impl DensityMatrix {
    /// The pure state `|0...0><0...0|`.
    #[must_use]
    pub fn zero_state(num_qubits: usize) -> Self {
        let dim = 1usize << num_qubits;
        let mut mat = CMatrix::zeros(dim, dim);
        mat[(0, 0)] = C64::one();
        Self { num_qubits, mat }
    }

    /// The pure state `|psi><psi|` of a statevector.
    #[must_use]
    pub fn from_statevector(sv: &StateVector) -> Self {
        let amps = sv.amplitudes();
        let dim = amps.len();
        let mut mat = CMatrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                mat[(i, j)] = amps[i] * amps[j].conj();
            }
        }
        Self {
            num_qubits: sv.num_qubits(),
            mat,
        }
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Borrows the underlying matrix.
    #[must_use]
    pub fn matrix(&self) -> &CMatrix {
        &self.mat
    }

    /// `Tr(rho)`; 1 for a normalized state.
    #[must_use]
    pub fn trace(&self) -> f64 {
        self.mat.trace().re
    }

    /// `Tr(rho^2)`; 1 for pure states, `1/2^n` for the maximally mixed.
    #[must_use]
    pub fn purity(&self) -> f64 {
        self.mat.mul(&self.mat).trace().re
    }

    /// Applies a unitary gate to the given wires.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or invalid wires.
    pub fn apply_gate(&mut self, gate: &qcir::Gate, qubits: &[usize]) {
        self.apply_matrix(&gate.matrix(), qubits);
    }

    /// Applies an arbitrary unitary to the given wires: `rho -> U rho U†`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension does not match `qubits.len()`.
    pub fn apply_matrix(&mut self, m: &CMatrix, qubits: &[usize]) {
        let u = m.embed(qubits, self.num_qubits);
        self.mat = u.mul(&self.mat).mul(&u.dagger());
    }

    /// Applies a Kraus channel exactly: `rho -> sum_i K_i rho K_i†`.
    ///
    /// # Panics
    ///
    /// Panics if the channel arity does not match `qubits.len()`.
    pub fn apply_kraus(&mut self, channel: &KrausChannel, qubits: &[usize]) {
        assert_eq!(channel.num_qubits(), qubits.len(), "channel arity mismatch");
        let dim = self.mat.rows();
        let mut out = CMatrix::zeros(dim, dim);
        for k in channel.operators() {
            let ke = k.embed(qubits, self.num_qubits);
            out = out.add(&ke.mul(&self.mat).mul(&ke.dagger()));
        }
        self.mat = out;
    }

    /// Probability of measuring `qubit` as 1.
    #[must_use]
    pub fn prob_one(&self, qubit: usize) -> f64 {
        let bit = 1usize << qubit;
        (0..self.mat.rows())
            .filter(|i| i & bit != 0)
            .map(|i| self.mat[(i, i)].re)
            .sum()
    }

    /// Diagonal of the density matrix: basis-state probabilities.
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.mat.rows()).map(|i| self.mat[(i, i)].re).collect()
    }

    /// Projects `qubit` onto `outcome` and renormalizes; returns the
    /// probability of that branch (0 leaves the state unusable).
    pub fn project(&mut self, qubit: usize, outcome: bool) -> f64 {
        let p1 = self.prob_one(qubit);
        let p = if outcome { p1 } else { 1.0 - p1 };
        if p <= f64::EPSILON {
            return 0.0;
        }
        let bit = 1usize << qubit;
        let dim = self.mat.rows();
        for i in 0..dim {
            for j in 0..dim {
                let keep = ((i & bit != 0) == outcome) && ((j & bit != 0) == outcome);
                if keep {
                    self.mat[(i, j)] = self.mat[(i, j)].scale(1.0 / p);
                } else {
                    self.mat[(i, j)] = C64::zero();
                }
            }
        }
        p
    }

    /// Active reset of `qubit` to `|0>` — the deterministic channel
    /// `rho -> P0 rho P0 + X P1 rho P1 X` (no branching needed).
    pub fn reset(&mut self, qubit: usize) {
        let bit = 1usize << qubit;
        let dim = self.mat.rows();
        let mut out = CMatrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                let v = self.mat[(i, j)];
                if v.is_zero(0.0) {
                    continue;
                }
                // Keep only blocks where both indices share the qubit value,
                // then map that value to 0.
                if (i & bit != 0) == (j & bit != 0) {
                    out[(i & !bit, j & !bit)] += v;
                }
            }
        }
        self.mat = out;
    }

    /// Traces out every qubit not in `keep`, returning the reduced state
    /// over the kept qubits (in the order given).
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty, repeats a qubit or references a missing
    /// one.
    ///
    /// # Examples
    ///
    /// ```
    /// use qsim::DensityMatrix;
    /// use qcir::Gate;
    /// let mut bell = DensityMatrix::zero_state(2);
    /// bell.apply_gate(&Gate::H, &[0]);
    /// bell.apply_gate(&Gate::Cx, &[0, 1]);
    /// let half = bell.partial_trace(&[0]);
    /// assert!((half.purity() - 0.5).abs() < 1e-12); // maximally mixed
    /// ```
    #[must_use]
    pub fn partial_trace(&self, keep: &[usize]) -> DensityMatrix {
        assert!(!keep.is_empty(), "must keep at least one qubit");
        for (i, &q) in keep.iter().enumerate() {
            assert!(q < self.num_qubits, "qubit {q} out of range");
            assert!(!keep[..i].contains(&q), "duplicate kept qubit {q}");
        }
        let k = keep.len();
        let traced: Vec<usize> = (0..self.num_qubits).filter(|q| !keep.contains(q)).collect();
        let mut out = CMatrix::zeros(1 << k, 1 << k);
        let spread = |bits: usize, positions: &[usize]| -> usize {
            positions
                .iter()
                .enumerate()
                .map(|(j, &p)| ((bits >> j) & 1) << p)
                .sum()
        };
        for i in 0..1usize << k {
            for j in 0..1usize << k {
                let mut acc = C64::zero();
                for t in 0..1usize << traced.len() {
                    let row = spread(i, keep) | spread(t, &traced);
                    let col = spread(j, keep) | spread(t, &traced);
                    acc += self.mat[(row, col)];
                }
                out[(i, j)] = acc;
            }
        }
        DensityMatrix {
            num_qubits: k,
            mat: out,
        }
    }

    /// Linear entropy `1 - Tr(rho^2)` of the reduced state over `keep` — a
    /// cheap entanglement witness: 0 for product states, up to
    /// `1 - 1/2^k` for maximal entanglement with the rest.
    #[must_use]
    pub fn linear_entanglement_entropy(&self, keep: &[usize]) -> f64 {
        1.0 - self.partial_trace(keep).purity()
    }

    /// Fidelity against a pure state: `<psi| rho |psi>`.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    #[must_use]
    pub fn fidelity_pure(&self, sv: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, sv.num_qubits(), "qubit count mismatch");
        let v = self.mat.mul_vec(sv.amplitudes());
        sv.amplitudes()
            .iter()
            .zip(v)
            .map(|(&a, b)| (a.conj() * b).re)
            .sum()
    }
}

/// Computes the exact outcome distribution of a (possibly dynamic) circuit
/// under a noise model, by exact density-matrix evolution with branch
/// enumeration over measurement outcomes (and readout-error record flips).
///
/// With [`NoiseModel::ideal`] this agrees with
/// [`crate::branch::exact_distribution`] to rounding error.
#[must_use]
pub fn exact_distribution_noisy(circuit: &Circuit, noise: &NoiseModel) -> Distribution {
    let mut dist = Distribution::new();
    let rho = DensityMatrix::zero_state(circuit.num_qubits());
    let classical = vec![false; circuit.num_clbits()];
    explore(circuit, 0, rho, classical, 1.0, noise, &mut dist);
    dist.prune(BRANCH_EPS);
    dist
}

#[allow(clippy::too_many_arguments)]
fn explore(
    circuit: &Circuit,
    start: usize,
    mut rho: DensityMatrix,
    classical: Vec<bool>,
    weight: f64,
    noise: &NoiseModel,
    dist: &mut Distribution,
) {
    let insts = circuit.instructions();
    let mut idx = start;
    while idx < insts.len() {
        let inst = &insts[idx];
        if let Some(cond) = inst.condition() {
            if !cond.evaluate(&classical) {
                idx += 1;
                continue;
            }
        }
        match inst.kind() {
            OpKind::Barrier => {}
            OpKind::Gate(g) => {
                let qubits: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
                rho.apply_gate(g, &qubits);
                match noise.gate_noise(qubits.len()) {
                    Some(crate::noise::GateNoise::Joint(channel)) => {
                        rho.apply_kraus(channel, &qubits);
                    }
                    Some(crate::noise::GateNoise::PerOperand(channel)) => {
                        for &q in &qubits {
                            rho.apply_kraus(channel, &[q]);
                        }
                    }
                    None => {}
                }
            }
            OpKind::Measure => {
                let q = inst.qubits()[0].index();
                let cbit = inst.clbits()[0].index();
                let p1 = rho.prob_one(q).clamp(0.0, 1.0);
                let r = noise.readout_flip;
                // Four weighted branches: (true state outcome) x (record).
                for state_outcome in [false, true] {
                    let p_state = if state_outcome { p1 } else { 1.0 - p1 };
                    if p_state <= BRANCH_EPS {
                        continue;
                    }
                    let mut rho_b = rho.clone();
                    rho_b.project(q, state_outcome);
                    let records: &[(bool, f64)] = if r > 0.0 {
                        &[(state_outcome, 1.0 - r), (!state_outcome, r)]
                    } else {
                        &[(state_outcome, 1.0)]
                    };
                    for &(record, p_rec) in records {
                        if p_rec <= BRANCH_EPS {
                            continue;
                        }
                        let mut cl = classical.clone();
                        cl[cbit] = record;
                        explore(
                            circuit,
                            idx + 1,
                            rho_b.clone(),
                            cl,
                            weight * p_state * p_rec,
                            noise,
                            dist,
                        );
                    }
                }
                return;
            }
            OpKind::Reset => {
                let q = inst.qubits()[0].index();
                rho.reset(q);
                let e = noise.reset_error;
                if e > 0.0 {
                    // rho -> (1-e) rho + e X rho X.
                    let mut flipped = rho.clone();
                    flipped.apply_gate(&qcir::Gate::X, &[q]);
                    let dim = rho.mat.rows();
                    let mut mixed = CMatrix::zeros(dim, dim);
                    mixed = mixed.add(&rho.mat.scale(C64::real(1.0 - e)));
                    mixed = mixed.add(&flipped.mat.scale(C64::real(e)));
                    rho.mat = mixed;
                }
            }
        }
        idx += 1;
    }
    dist.add(bitstring(&classical), weight);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::exact_distribution;
    use qcir::{Clbit, Gate, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn zero_state_is_pure() {
        let rho = DensityMatrix::zero_state(2);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_statevector_round_trips_probabilities() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::H, &[0]);
        sv.apply_gate(&Gate::Cx, &[0, 1]);
        let rho = DensityMatrix::from_statevector(&sv);
        let p = rho.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
        assert!((rho.fidelity_pure(&sv) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut sv = StateVector::zero_state(2);
        let mut rho = DensityMatrix::zero_state(2);
        for (g, qs) in [
            (Gate::H, vec![0usize]),
            (Gate::T, vec![1]),
            (Gate::Cv, vec![0, 1]),
            (Gate::Cx, vec![1, 0]),
        ] {
            sv.apply_gate(&g, &qs);
            rho.apply_gate(&g, &qs);
        }
        let expect = DensityMatrix::from_statevector(&sv);
        assert!(rho.matrix().approx_eq(expect.matrix(), 1e-10));
    }

    #[test]
    fn depolarizing_reduces_purity() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H, &[0]);
        rho.apply_kraus(&KrausChannel::depolarizing(0.5, 1), &[0]);
        assert!(rho.purity() < 0.99);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn full_depolarizing_gives_maximally_mixed() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_kraus(&KrausChannel::depolarizing(1.0, 1), &[0]);
        assert!((rho.purity() - 0.5).abs() < 1e-10);
        assert!((rho.prob_one(0) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn projection_weights_match_probabilities() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H, &[0]);
        let p = rho.clone().project(0, true);
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_maps_to_zero_preserving_partner() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H, &[0]);
        rho.apply_gate(&Gate::Cx, &[0, 1]);
        rho.reset(0);
        assert!(rho.prob_one(0) < 1e-12);
        assert!((rho.prob_one(1) - 0.5).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_of_product_state_is_pure() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H, &[0]);
        rho.apply_gate(&Gate::X, &[1]);
        let q0 = rho.partial_trace(&[0]);
        assert!((q0.purity() - 1.0).abs() < 1e-12);
        assert!((q0.prob_one(0) - 0.5).abs() < 1e-12);
        let q1 = rho.partial_trace(&[1]);
        assert!((q1.prob_one(0) - 1.0).abs() < 1e-12);
        assert!(rho.linear_entanglement_entropy(&[0]).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_of_bell_half_is_maximally_mixed() {
        let mut bell = DensityMatrix::zero_state(2);
        bell.apply_gate(&Gate::H, &[0]);
        bell.apply_gate(&Gate::Cx, &[0, 1]);
        let half = bell.partial_trace(&[1]);
        assert!((half.purity() - 0.5).abs() < 1e-12);
        assert!((bell.linear_entanglement_entropy(&[1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_keep_order_permutes() {
        // |q0 q1> = |01>: keep [1, 0] puts q1 on the low bit of the result.
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::X, &[0]);
        let swapped = rho.partial_trace(&[1, 0]);
        // Result qubit 0 = original q1 (state 0), result qubit 1 = q0 (1).
        assert!((swapped.prob_one(0)).abs() < 1e-12);
        assert!((swapped.prob_one(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_marginals_are_mixed() {
        let mut ghz = DensityMatrix::zero_state(3);
        ghz.apply_gate(&Gate::H, &[0]);
        ghz.apply_gate(&Gate::Cx, &[0, 1]);
        ghz.apply_gate(&Gate::Cx, &[1, 2]);
        let two = ghz.partial_trace(&[0, 1]);
        assert!((two.purity() - 0.5).abs() < 1e-12);
        assert!((two.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate kept qubit")]
    fn partial_trace_rejects_duplicates() {
        let rho = DensityMatrix::zero_state(2);
        let _ = rho.partial_trace(&[0, 0]);
    }

    #[test]
    fn ideal_noisy_distribution_matches_pure_branching() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0))
            .cx(q(0), q(1))
            .measure(q(0), c(0))
            .reset(q(0))
            .x_if(q(0), c(0))
            .measure(q(1), c(1));
        let ideal = exact_distribution(&circ);
        let dm = exact_distribution_noisy(&circ, &NoiseModel::ideal());
        assert!(ideal.tvd(&dm) < 1e-10, "tvd = {}", ideal.tvd(&dm));
    }

    #[test]
    fn readout_error_mixes_records_exactly() {
        let mut circ = Circuit::new(1, 1);
        circ.measure(q(0), c(0));
        let noise = NoiseModel {
            readout_flip: 0.25,
            ..NoiseModel::ideal()
        };
        let d = exact_distribution_noisy(&circ, &noise);
        assert!((d.get("1") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reset_error_mixes_population_exactly() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0)).reset(q(0)).measure(q(0), c(0));
        let noise = NoiseModel {
            reset_error: 0.1,
            ..NoiseModel::ideal()
        };
        let d = exact_distribution_noisy(&circ, &noise);
        assert!((d.get("1") - 0.1).abs() < 1e-12);
    }

    #[test]
    fn trajectory_executor_converges_to_density_result() {
        use crate::executor::Executor;
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0)).cx(q(0), q(1)).measure_all();
        let noise = NoiseModel::depolarizing(0.02, 0.05);
        let exact = exact_distribution_noisy(&circ, &noise);
        let sampled = Executor::new()
            .shots(20000)
            .seed(21)
            .noise(noise)
            .run(&circ)
            .to_distribution();
        let tvd = exact.tvd(&sampled);
        assert!(tvd < 0.02, "tvd {tvd} too large");
    }

    #[test]
    fn conditioned_gates_respect_classical_state_in_density_backend() {
        let mut circ = Circuit::new(2, 2);
        circ.x(q(0))
            .measure(q(0), c(0))
            .x_if(q(1), c(0))
            .measure(q(1), c(1));
        let d = exact_distribution_noisy(&circ, &NoiseModel::ideal());
        assert!((d.get("11") - 1.0).abs() < 1e-12);
    }
}
