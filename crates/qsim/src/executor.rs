//! Shot-based circuit execution with classical feedback.
//!
//! This is the AER-simulator stand-in: it runs a (possibly dynamic) circuit
//! shot by shot on a statevector, sampling mid-circuit measurements,
//! applying active resets, honouring classically controlled gates, and
//! optionally inserting noise as quantum trajectories.
//!
//! # Determinism contract
//!
//! Shot `i` of a seeded run executes on its own RNG, seeded with
//! [`rand::stream_seed`]`(seed, i)` — a counter-based derivation, not a
//! shared sequential stream. A shot's outcome therefore depends only on
//! `(seed, shot_index, circuit)`: it never shifts because another shot, a
//! noise trajectory, or a reordered draw consumed randomness elsewhere.
//! Consequences, all covered by tests:
//!
//! * results are **bit-identical for every thread count** (see
//!   [`Executor::threads`]) — shots are embarrassingly parallel;
//! * an `n`-shot run is a **prefix** of an `m > n`-shot run at the same
//!   seed (in [`Executor::run_memory`] order);
//! * enabling a noise channel perturbs only the shots in which it draws,
//!   never the seeding of later shots.

use crate::counts::{bitstring, Counts};
use crate::noise::NoiseModel;
use crate::statevector::StateVector;
use qcir::{Circuit, OpKind};
use qobs::Observer;
use rand::rngs::StdRng;
use rand::{stream_seed, Rng, RngCore, SeedableRng};
use std::collections::BTreeMap;
use std::ops::Range;

/// A configurable shot-based simulator.
///
/// # Examples
///
/// Running a 1024-shot experiment, as the paper does:
///
/// ```
/// use qcir::{Circuit, Qubit, Clbit};
/// use qsim::Executor;
///
/// let mut bell = Circuit::new(2, 2);
/// bell.h(Qubit::new(0)).cx(Qubit::new(0), Qubit::new(1)).measure_all();
/// let counts = Executor::new().shots(1024).seed(7).run(&bell);
/// assert_eq!(counts.total(), 1024);
/// assert_eq!(counts.get("01") + counts.get("10"), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    shots: u64,
    seed: Option<u64>,
    threads: Option<usize>,
    noise: NoiseModel,
    observer: Observer,
}

/// Per-run accumulation of executor counters.
///
/// The per-gate hot path only touches this plain struct (and only when the
/// observer is enabled); it is flushed into the observer's shared
/// [`qobs::MetricsRegistry`] **once** per [`Executor::run`] /
/// [`Executor::run_memory`] call, so the registry lock is never taken per
/// gate or per shot.
#[derive(Debug, Default)]
struct RunTally {
    gates: BTreeMap<&'static str, u64>,
    resets: u64,
    measurements: u64,
    mid_measurements: u64,
    cc_fired: u64,
    cc_skipped: u64,
    noise_applications: u64,
}

impl RunTally {
    /// Adds `other`'s counters into `self`. Worker-local tallies are merged
    /// with this in shot order before the single registry flush; every field
    /// is a sum, so the merge is exact regardless of the partitioning.
    fn absorb(&mut self, other: RunTally) {
        for (name, n) in other.gates {
            *self.gates.entry(name).or_insert(0) += n;
        }
        self.resets += other.resets;
        self.measurements += other.measurements;
        self.mid_measurements += other.mid_measurements;
        self.cc_fired += other.cc_fired;
        self.cc_skipped += other.cc_skipped;
        self.noise_applications += other.noise_applications;
    }
}

/// Tally plus the per-instruction "is a mid-circuit measurement" flags
/// (precomputed once per run, not per shot).
struct TallyCtx<'a> {
    tally: &'a mut RunTally,
    mid_measure: &'a [bool],
}

/// `flags[i]` is `true` when instruction `i` is a measurement whose qubit
/// is used again by a later gate, measurement or reset — the defining
/// property of a mid-circuit measurement. A single backward pass over the
/// circuit (O(n), not a per-measurement forward rescan), tracking whether
/// each qubit has a later *operational* use; barriers are scheduling
/// directives, not operations, so a trailing barrier does not turn a final
/// readout into a mid-circuit one.
fn mid_measure_flags(circuit: &Circuit) -> Vec<bool> {
    let insts = circuit.instructions();
    let mut flags = vec![false; insts.len()];
    let mut used_later = vec![false; circuit.num_qubits()];
    for (i, inst) in insts.iter().enumerate().rev() {
        if matches!(inst.kind(), OpKind::Barrier) {
            continue;
        }
        if matches!(inst.kind(), OpKind::Measure) {
            flags[i] = used_later[inst.qubits()[0].index()];
        }
        for q in inst.qubits() {
            used_later[q.index()] = true;
        }
    }
    flags
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// An executor with 1024 shots (the paper's setting), no fixed seed and
    /// no noise.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shots: 1024,
            seed: None,
            threads: None,
            noise: NoiseModel::ideal(),
            observer: Observer::disabled(),
        }
    }

    /// Sets the number of shots.
    #[must_use]
    pub fn shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Fixes the base seed for reproducible runs. Shot `i` then executes on
    /// its own stream seeded with [`rand::stream_seed`]`(seed, i)`, so the
    /// per-shot outcomes are a pure function of `(seed, i, circuit)` — see
    /// the module-level determinism contract.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the worker-thread count for [`Executor::run`] /
    /// [`Executor::run_memory`]. The default is the machine's
    /// `std::thread::available_parallelism`.
    ///
    /// Because every shot runs on its own counter-derived RNG stream, the
    /// thread count is invisible in the results: a seeded run is
    /// bit-identical at 1, 2 or 8 threads (counts, memory order, and
    /// observer counters alike). `threads(1)` forces the in-thread
    /// sequential path.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is 0.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be at least 1");
        self.threads = Some(threads);
        self
    }

    /// Attaches a noise model (applied as quantum trajectories).
    #[must_use]
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Attaches an observability handle. Each [`Executor::run`] /
    /// [`Executor::run_memory`] call then records, into the observer's
    /// metrics registry:
    ///
    /// * `executor.shots` — shots executed;
    /// * `executor.gates.<name>` — gates applied, by gate kind (only gates
    ///   that actually executed: a skipped conditioned gate is not counted);
    /// * `executor.resets` — active resets applied;
    /// * `executor.measurements` / `executor.mid_circuit_measurements` —
    ///   all measurements, and the subset whose qubit is reused later;
    /// * `executor.cc_fired` / `executor.cc_skipped` — classically
    ///   controlled operations whose condition held / did not hold;
    /// * `executor.noise_injections` — stochastic noise-channel
    ///   applications (gate noise and idle noise trajectories);
    ///
    /// plus an `executor.run` span (duration histogram `executor.run_ns`).
    ///
    /// Counters accumulate per shot but are flushed to the registry once
    /// per run; with the default [`Observer::disabled`] the hot path is a
    /// single branch.
    #[must_use]
    pub fn observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Runs the circuit and tallies classical-register outcomes.
    ///
    /// The result keys are bitstrings with classical bit `n-1` leftmost.
    /// Shots are distributed over [`Executor::threads`] workers with
    /// worker-local [`Counts`] buffers, merged in shot order; the result is
    /// bit-identical for every thread count at a fixed seed.
    pub fn run(&self, circuit: &Circuit) -> Counts {
        let parts = self.run_partitioned(
            circuit,
            |_| Counts::new(),
            |counts: &mut Counts, classical| counts.record(bitstring(&classical)),
        );
        let mut counts = Counts::new();
        for part in parts {
            counts.merge(part);
        }
        counts
    }

    /// Runs the circuit and returns the per-shot outcome records in order
    /// (the "memory" mode of hardware backends), for analyses that need
    /// shot-to-shot structure rather than aggregate counts.
    ///
    /// Workers fill worker-local buffers over contiguous shot ranges, which
    /// are concatenated in range order — entry `i` is always shot `i`,
    /// whatever the thread count.
    pub fn run_memory(&self, circuit: &Circuit) -> Vec<String> {
        let parts = self.run_partitioned(
            circuit,
            Vec::with_capacity,
            |memory: &mut Vec<String>, classical| memory.push(bitstring(&classical)),
        );
        let mut memory = Vec::with_capacity(self.shots as usize);
        for part in parts {
            memory.extend(part);
        }
        memory
    }

    /// The run's base seed: the configured seed, or fresh entropy drawn once
    /// per run (so even unseeded runs derive coherent per-shot streams).
    fn base_seed(&self) -> u64 {
        match self.seed {
            Some(s) => s,
            None => StdRng::from_entropy().next_u64(),
        }
    }

    /// The worker count: the explicit [`Executor::threads`] override, else
    /// the machine's available parallelism (1 when undeterminable).
    fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    }

    /// Shared shot driver behind [`Executor::run`] and
    /// [`Executor::run_memory`]: splits the shot range into one contiguous
    /// chunk per worker, executes each chunk with a worker-local accumulator
    /// (built by `make`, filled by `record`), and returns the accumulators
    /// in shot order. With the observer enabled, each worker also keeps a
    /// local [`RunTally`]; the tallies are merged deterministically in shot
    /// order and flushed into the metrics registry exactly once, under the
    /// timed `executor.run` span.
    ///
    /// Shot `i` always executes on `stream_seed(base, i)`, so the partition
    /// geometry (and hence the thread count) is invisible in the results.
    fn run_partitioned<A, M, F>(&self, circuit: &Circuit, make: M, record: F) -> Vec<A>
    where
        A: Send,
        M: Fn(usize) -> A + Sync,
        F: Fn(&mut A, Vec<bool>) + Sync,
    {
        let base = self.base_seed();
        let workers = (self.effective_threads() as u64).min(self.shots.max(1)) as usize;
        let observed = self.observer.is_enabled();
        let mid = if observed {
            Some(mid_measure_flags(circuit))
        } else {
            None
        };
        let span = if observed {
            let mut span = self.observer.span("executor.run");
            span.field("shots", self.shots);
            span.field("instructions", circuit.len());
            span.field("threads", workers as u64);
            Some(span)
        } else {
            None
        };

        let (parts, tallies): (Vec<A>, Vec<Option<RunTally>>) = if workers <= 1 {
            let mut acc = make(self.shots as usize);
            let tally = self.run_chunk_with(
                circuit,
                base,
                0..self.shots,
                mid.as_deref(),
                &mut acc,
                &record,
            );
            (vec![acc], vec![tally])
        } else {
            let chunk = self.shots.div_ceil(workers as u64);
            let mid = mid.as_deref();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers as u64)
                    .map(|w| {
                        let lo = w * chunk;
                        let hi = (lo + chunk).min(self.shots);
                        let (make, record) = (&make, &record);
                        scope.spawn(move || {
                            let mut acc = make((hi - lo) as usize);
                            let tally =
                                self.run_chunk_with(circuit, base, lo..hi, mid, &mut acc, record);
                            (acc, tally)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shot worker panicked"))
                    .unzip()
            })
        };
        if observed {
            let mut merged = RunTally::default();
            for tally in tallies.into_iter().flatten() {
                merged.absorb(tally);
            }
            self.flush_tally(&merged);
        }
        drop(span);
        parts
    }

    /// Executes the contiguous shot range `shots` sequentially, seeding shot
    /// `i` from `stream_seed(base, i)` and feeding each outcome to `record`.
    /// Returns this chunk's tally when `mid` is provided (the observed
    /// path); `None` keeps the un-instrumented hot path tally-free.
    fn run_chunk_with<A>(
        &self,
        circuit: &Circuit,
        base: u64,
        shots: Range<u64>,
        mid: Option<&[bool]>,
        acc: &mut A,
        record: &(impl Fn(&mut A, Vec<bool>) + Sync),
    ) -> Option<RunTally> {
        match mid {
            Some(mid) => {
                let mut tally = RunTally::default();
                for i in shots {
                    let mut rng = StdRng::seed_from_u64(stream_seed(base, i));
                    let mut ctx = Some(TallyCtx {
                        tally: &mut tally,
                        mid_measure: mid,
                    });
                    let (classical, _) =
                        self.run_shot_with_state_tallied(circuit, &mut rng, &mut ctx);
                    record(acc, classical);
                }
                Some(tally)
            }
            None => {
                for i in shots {
                    let mut rng = StdRng::seed_from_u64(stream_seed(base, i));
                    record(acc, self.run_shot(circuit, &mut rng));
                }
                None
            }
        }
    }

    /// Adds the run's tally to the observer's registry (one lock
    /// acquisition per counter, once per run).
    fn flush_tally(&self, tally: &RunTally) {
        let obs = &self.observer;
        obs.counter_add("executor.shots", self.shots);
        obs.counter_add("executor.resets", tally.resets);
        obs.counter_add("executor.measurements", tally.measurements);
        obs.counter_add("executor.mid_circuit_measurements", tally.mid_measurements);
        obs.counter_add("executor.cc_fired", tally.cc_fired);
        obs.counter_add("executor.cc_skipped", tally.cc_skipped);
        obs.counter_add("executor.noise_injections", tally.noise_applications);
        for (name, n) in &tally.gates {
            obs.counter_add(&format!("executor.gates.{name}"), *n);
        }
    }

    /// Runs a single shot, returning the final classical bits.
    pub fn run_shot<R: Rng + ?Sized>(&self, circuit: &Circuit, rng: &mut R) -> Vec<bool> {
        let (classical, _state) = self.run_shot_with_state(circuit, rng);
        classical
    }

    /// Runs a single shot, returning the classical bits and the final
    /// quantum state (useful for inspecting answer qubits that were never
    /// measured).
    ///
    /// With [`NoiseModel::idle`] set, the circuit is executed layer by
    /// layer (ASAP dependency layers) and the idle channel is applied to
    /// every qubit a layer leaves untouched — so deeper circuits decay
    /// more, as on hardware.
    pub fn run_shot_with_state<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        rng: &mut R,
    ) -> (Vec<bool>, StateVector) {
        self.run_shot_with_state_tallied(circuit, rng, &mut None)
    }

    /// Single-shot execution with an optional tally context (`None` on the
    /// un-instrumented path: a per-instruction `Option` branch is the whole
    /// overhead).
    fn run_shot_with_state_tallied<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        rng: &mut R,
        ctx: &mut Option<TallyCtx<'_>>,
    ) -> (Vec<bool>, StateVector) {
        let mut state = StateVector::zero_state(circuit.num_qubits());
        let mut classical = vec![false; circuit.num_clbits()];
        if let Some(idle) = &self.noise.idle {
            // Hardware-style schedule: gates as early as possible (ASAP
            // dependency layers), terminal measurements at the very end —
            // so a prepared qubit waiting for readout accumulates decay.
            for layer in scheduled_layers(circuit) {
                if layer.is_empty() {
                    continue;
                }
                let mut touched = vec![false; circuit.num_qubits()];
                for &idx in &layer {
                    let inst = &circuit.instructions()[idx];
                    for q in inst.qubits() {
                        touched[q.index()] = true;
                    }
                    self.execute_instruction(inst, idx, &mut state, &mut classical, rng, ctx);
                }
                for (q, &t) in touched.iter().enumerate() {
                    if !t {
                        idle.apply_stochastic(&mut state, &[q], rng);
                        if let Some(c) = ctx {
                            c.tally.noise_applications += 1;
                        }
                    }
                }
            }
        } else {
            for (idx, inst) in circuit.iter().enumerate() {
                self.execute_instruction(inst, idx, &mut state, &mut classical, rng, ctx);
            }
        }
        (classical, state)
    }

    /// Executes one instruction under the configured noise. `idx` is the
    /// instruction's index in the circuit (for the mid-circuit-measurement
    /// flags of the tally context).
    fn execute_instruction<R: Rng + ?Sized>(
        &self,
        inst: &qcir::Instruction,
        idx: usize,
        state: &mut StateVector,
        classical: &mut [bool],
        rng: &mut R,
        ctx: &mut Option<TallyCtx<'_>>,
    ) {
        if let Some(cond) = inst.condition() {
            if !cond.evaluate(classical) {
                if let Some(c) = ctx {
                    c.tally.cc_skipped += 1;
                }
                return;
            }
            if let Some(c) = ctx {
                c.tally.cc_fired += 1;
            }
        }
        match inst.kind() {
            OpKind::Barrier => {}
            OpKind::Gate(g) => {
                let qubits: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
                state.apply_gate(g, &qubits);
                if let Some(c) = ctx {
                    *c.tally.gates.entry(g.name()).or_insert(0) += 1;
                }
                if let Some(channel) = self.noise.channel_for_arity(qubits.len()) {
                    let n = channel.num_qubits().min(qubits.len());
                    channel.apply_stochastic(state, &qubits[..n], rng);
                    if let Some(c) = ctx {
                        c.tally.noise_applications += 1;
                    }
                }
            }
            OpKind::Measure => {
                let q = inst.qubits()[0].index();
                let mut outcome = state.measure(q, rng);
                if self.noise.readout_flip > 0.0 && rng.gen_bool(self.noise.readout_flip) {
                    outcome = !outcome;
                }
                classical[inst.clbits()[0].index()] = outcome;
                if let Some(c) = ctx {
                    c.tally.measurements += 1;
                    if c.mid_measure.get(idx).copied().unwrap_or(false) {
                        c.tally.mid_measurements += 1;
                    }
                }
            }
            OpKind::Reset => {
                let q = inst.qubits()[0].index();
                state.reset(q, rng);
                if self.noise.reset_error > 0.0 && rng.gen_bool(self.noise.reset_error) {
                    state.apply_gate(&qcir::Gate::X, &[q]);
                }
                if let Some(c) = ctx {
                    c.tally.resets += 1;
                }
            }
        }
    }
}

/// Hardware-style schedule of a circuit: ASAP dependency layers, with
/// *terminal* measurements (no later operation on their qubit or bit)
/// pinned to the final layer — matching devices, which read out all
/// surviving qubits at the end of the shot. Layers may be empty after the
/// pinning; callers skip those.
fn scheduled_layers(circuit: &Circuit) -> Vec<Vec<usize>> {
    let dag = qcir::DagCircuit::from_circuit(circuit);
    let mut layers = dag.layers();
    if layers.len() < 2 {
        return layers;
    }
    let last = layers.len() - 1;
    let mut pinned: Vec<usize> = Vec::new();
    for layer in &mut layers[..last] {
        layer.retain(|&idx| {
            let inst = &circuit.instructions()[idx];
            let terminal = matches!(inst.kind(), OpKind::Measure) && dag.successors(idx).is_empty();
            if terminal {
                pinned.push(idx);
            }
            !terminal
        });
    }
    layers[last].extend(pinned);
    layers[last].sort_unstable();
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::{Clbit, Condition, Gate, Instruction, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn deterministic_circuit_gives_single_outcome() {
        let mut circ = Circuit::new(2, 2);
        circ.x(q(0)).measure_all();
        let counts = Executor::new().shots(100).seed(1).run(&circ);
        assert_eq!(counts.get("01"), 100);
    }

    #[test]
    fn bitstring_key_is_msb_first() {
        let mut circ = Circuit::new(2, 2);
        circ.x(q(1)).measure_all();
        let counts = Executor::new().shots(10).seed(1).run(&circ);
        // qubit 1 -> clbit 1 -> leftmost character.
        assert_eq!(counts.get("10"), 10);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).measure(q(0), c(0));
        let a = Executor::new().shots(200).seed(42).run(&circ);
        let b = Executor::new().shots(200).seed(42).run(&circ);
        assert_eq!(a, b);
    }

    /// A dynamic circuit exercising every RNG consumer: superposition
    /// measurement, classical control, reset, plus (optionally) noise.
    fn dynamic_test_circuit() -> Circuit {
        let mut circ = Circuit::new(2, 3);
        circ.h(q(0))
            .measure(q(0), c(0))
            .x_if(q(1), c(0))
            .reset(q(0))
            .h(q(0))
            .measure(q(0), c(1))
            .measure(q(1), c(2));
        circ
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        // The tentpole invariant: at a fixed seed, counts AND shot-ordered
        // memory are identical at 1, 2 and 8 threads.
        let circ = dynamic_test_circuit();
        let exec = |threads: usize| Executor::new().shots(257).seed(0xC0FFEE).threads(threads);
        let counts1 = exec(1).run(&circ);
        let memory1 = exec(1).run_memory(&circ);
        for threads in [2, 8] {
            assert_eq!(exec(threads).run(&circ), counts1, "counts @ {threads}");
            assert_eq!(
                exec(threads).run_memory(&circ),
                memory1,
                "memory @ {threads}"
            );
        }
    }

    #[test]
    fn noisy_results_are_bit_identical_across_thread_counts() {
        let circ = dynamic_test_circuit();
        let exec = |threads: usize| {
            Executor::new()
                .shots(200)
                .seed(99)
                .threads(threads)
                .noise(NoiseModel::depolarizing(0.05, 0.1))
        };
        let baseline = exec(1).run_memory(&circ);
        assert_eq!(exec(2).run_memory(&circ), baseline);
        assert_eq!(exec(8).run_memory(&circ), baseline);
    }

    #[test]
    fn observer_counters_are_identical_across_thread_counts() {
        let circ = dynamic_test_circuit();
        let counters = |threads: usize| {
            let obs = qobs::Observer::metrics_only();
            Executor::new()
                .shots(128)
                .seed(7)
                .threads(threads)
                .observer(obs.clone())
                .run(&circ);
            let json = obs.metrics().to_json();
            let start = json.find("\"counters\"").unwrap();
            let end = json.find("\"gauges\"").unwrap();
            json[start..end].to_string()
        };
        let one = counters(1);
        assert_eq!(counters(2), one);
        assert_eq!(counters(8), one);
    }

    #[test]
    fn shorter_runs_are_prefixes_of_longer_runs() {
        // Order independence: shot i depends only on (seed, i, circuit), so
        // a 100-shot run is literally the first 100 shots of a 300-shot run.
        let circ = dynamic_test_circuit();
        let short = Executor::new().shots(100).seed(5).run_memory(&circ);
        let long = Executor::new().shots(300).seed(5).run_memory(&circ);
        assert_eq!(short[..], long[..100]);
    }

    #[test]
    fn thread_count_exceeding_shots_is_fine() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0)).measure(q(0), c(0));
        let counts = Executor::new().shots(3).seed(1).threads(16).run(&circ);
        assert_eq!(counts.get("1"), 3);
        let none = Executor::new().shots(0).seed(1).threads(4).run(&circ);
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "threads must be at least 1")]
    fn zero_threads_is_rejected() {
        let _ = Executor::new().threads(0);
    }

    #[test]
    fn mid_measure_flags_ignore_barriers_and_find_reuse() {
        // measure; barrier on the same qubit; nothing else -> NOT mid-circuit.
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0)).measure(q(0), c(0));
        circ.push(Instruction::barrier(vec![q(0), q(1)]));
        circ.measure(q(1), c(1));
        let flags = mid_measure_flags(&circ);
        assert_eq!(flags, vec![false, false, false, false]);

        // measure; later gate on the same qubit -> mid-circuit.
        let mut circ2 = Circuit::new(1, 2);
        circ2.measure(q(0), c(0));
        circ2.push(Instruction::barrier(vec![q(0)]));
        circ2.h(q(0)).measure(q(0), c(1));
        let flags2 = mid_measure_flags(&circ2);
        assert_eq!(flags2, vec![true, false, false, false]);

        // Reset counts as reuse; the final measurement does not.
        let mut circ3 = Circuit::new(1, 2);
        circ3.measure(q(0), c(0)).reset(q(0)).measure(q(0), c(1));
        assert_eq!(mid_measure_flags(&circ3), vec![true, false, false]);
    }

    #[test]
    fn trailing_barrier_does_not_inflate_mid_measure_counter() {
        // Regression: the old forward rescan counted a trailing barrier
        // touching the measured qubit as "reuse".
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).measure(q(0), c(0));
        circ.push(Instruction::barrier(vec![q(0)]));
        let obs = qobs::Observer::metrics_only();
        Executor::new()
            .shots(10)
            .seed(3)
            .observer(obs.clone())
            .run(&circ);
        assert_eq!(
            obs.metrics().counter("executor.mid_circuit_measurements"),
            Some(0)
        );
        assert_eq!(obs.metrics().counter("executor.measurements"), Some(10));
    }

    #[test]
    fn superposition_statistics_are_roughly_even() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).measure(q(0), c(0));
        let counts = Executor::new().shots(4000).seed(3).run(&circ);
        let p0 = counts.probability("0");
        assert!((p0 - 0.5).abs() < 0.05, "p0 = {p0}");
    }

    #[test]
    fn classically_controlled_gate_fires_only_on_condition() {
        // Teleport-style: measure a 1, conditionally flip the other qubit.
        let mut circ = Circuit::new(2, 2);
        circ.x(q(0)).measure(q(0), c(0)).x_if(q(1), c(0));
        circ.measure(q(1), c(1));
        let counts = Executor::new().shots(50).seed(4).run(&circ);
        assert_eq!(counts.get("11"), 50);

        let mut circ0 = Circuit::new(2, 2);
        circ0.measure(q(0), c(0)).x_if(q(1), c(0));
        circ0.measure(q(1), c(1));
        let counts0 = Executor::new().shots(50).seed(5).run(&circ0);
        assert_eq!(counts0.get("00"), 50);
    }

    #[test]
    fn register_condition_requires_exact_value() {
        let mut circ = Circuit::new(2, 3);
        circ.x(q(0)).measure(q(0), c(0));
        // c == 0b01 over bits [c0, c1]: true here.
        circ.push(
            Instruction::gate(Gate::X, vec![q(1)])
                .with_condition(Condition::register(vec![c(0), c(1)], 0b01)),
        );
        circ.measure(q(1), c(2));
        let counts = Executor::new().shots(20).seed(6).run(&circ);
        assert_eq!(counts.get("101"), 20);
    }

    #[test]
    fn mid_circuit_measurement_collapses() {
        // Measure |+> then measure again: outcomes must agree.
        let mut circ = Circuit::new(1, 2);
        circ.h(q(0)).measure(q(0), c(0)).measure(q(0), c(1));
        let counts = Executor::new().shots(300).seed(7).run(&circ);
        for (key, _) in counts.iter() {
            let bits: Vec<char> = key.chars().collect();
            assert_eq!(bits[0], bits[1], "outcome {key} not consistent");
        }
    }

    #[test]
    fn reset_reinitializes_for_reuse() {
        // The defining DQC pattern: use, measure, reset, reuse.
        let mut circ = Circuit::new(1, 2);
        circ.x(q(0))
            .measure(q(0), c(0))
            .reset(q(0))
            .measure(q(0), c(1));
        let counts = Executor::new().shots(100).seed(8).run(&circ);
        assert_eq!(counts.get("01"), 100);
    }

    #[test]
    fn readout_error_flips_outcomes() {
        let mut circ = Circuit::new(1, 1);
        circ.measure(q(0), c(0));
        let noisy = Executor::new().shots(2000).seed(9).noise(NoiseModel {
            readout_flip: 0.25,
            ..NoiseModel::ideal()
        });
        let counts = noisy.run(&circ);
        let p1 = counts.probability("1");
        assert!((p1 - 0.25).abs() < 0.04, "p1 = {p1}");
    }

    #[test]
    fn reset_error_leaves_excited_population() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0)).reset(q(0)).measure(q(0), c(0));
        let noisy = Executor::new().shots(2000).seed(10).noise(NoiseModel {
            reset_error: 0.2,
            ..NoiseModel::ideal()
        });
        let p1 = noisy.run(&circ).probability("1");
        assert!((p1 - 0.2).abs() < 0.04, "p1 = {p1}");
    }

    #[test]
    fn depolarizing_noise_degrades_bell_correlations() {
        let mut bell = Circuit::new(2, 2);
        bell.h(q(0)).cx(q(0), q(1)).measure_all();
        let noisy = Executor::new()
            .shots(2000)
            .seed(11)
            .noise(NoiseModel::depolarizing(0.05, 0.1));
        let counts = noisy.run(&bell);
        let bad = counts.probability("01") + counts.probability("10");
        assert!(bad > 0.01, "noise should produce anticorrelated outcomes");
        assert!(bad < 0.5, "noise should not dominate");
    }

    #[test]
    fn idle_noise_decays_waiting_qubits() {
        // q1 is excited then waits while q0 runs a long gate chain; with
        // amplitude-damping idle noise it should decay toward |0>.
        let depth = 30usize;
        let mut circ = Circuit::new(2, 1);
        circ.x(q(1));
        for _ in 0..depth {
            circ.h(q(0));
        }
        circ.measure(q(1), c(0));
        let gamma = 0.05;
        let noisy = Executor::new()
            .shots(3000)
            .seed(17)
            .noise(NoiseModel::ideal().with_idle_damping(gamma));
        let p1 = noisy.run(&circ).probability("1");
        // q1 idles for `depth` layers (the X layer touches it; the final
        // measurement layer too): expected survival ~ (1-gamma)^depth.
        let expect = (1.0 - gamma_f(gamma)).powi(depth as i32 - 1);
        assert!(
            (p1 - expect).abs() < 0.05,
            "survival {p1} vs expected {expect}"
        );
    }

    fn gamma_f(g: f64) -> f64 {
        g
    }

    #[test]
    fn idle_noise_is_noop_for_parallel_circuits() {
        // All qubits busy every layer: idle noise never fires.
        let mut circ = Circuit::new(2, 2);
        for _ in 0..10 {
            circ.h(q(0)).h(q(1));
        }
        circ.measure_all();
        let ideal = Executor::new().shots(500).seed(18).run(&circ);
        let noisy = Executor::new()
            .shots(500)
            .seed(18)
            .noise(NoiseModel::ideal().with_idle_damping(0.5))
            .run(&circ);
        assert_eq!(ideal, noisy);
    }

    #[test]
    fn memory_mode_matches_counts() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).measure(q(0), c(0));
        let exec = Executor::new().shots(500).seed(33);
        let memory = exec.run_memory(&circ);
        assert_eq!(memory.len(), 500);
        let counts = exec.run(&circ);
        let ones = memory.iter().filter(|m| m.as_str() == "1").count() as u64;
        assert_eq!(ones, counts.get("1"));
    }

    #[test]
    fn observer_counts_dynamic_circuit_operations() {
        // The defining DQC shot: gate, mid-circuit measure, conditioned
        // gate, reset, final measure.
        let mut circ = Circuit::new(2, 2);
        circ.x(q(0))
            .measure(q(0), c(0)) // mid-circuit: q0 is reset afterwards
            .x_if(q(1), c(0)) // fires every shot (outcome is 1)
            .reset(q(0))
            .measure(q(1), c(1));
        let obs = qobs::Observer::metrics_only();
        let counts = Executor::new()
            .shots(10)
            .seed(1)
            .observer(obs.clone())
            .run(&circ);
        assert_eq!(counts.total(), 10);
        let m = obs.metrics();
        assert_eq!(m.counter("executor.shots"), Some(10));
        assert_eq!(m.counter("executor.gates.x"), Some(20)); // X + fired X_if
        assert_eq!(m.counter("executor.resets"), Some(10));
        assert_eq!(m.counter("executor.measurements"), Some(20));
        assert_eq!(m.counter("executor.mid_circuit_measurements"), Some(10));
        assert_eq!(m.counter("executor.cc_fired"), Some(10));
        assert_eq!(m.counter("executor.cc_skipped"), Some(0));
        assert_eq!(m.counter("executor.noise_injections"), Some(0));
        assert_eq!(m.histogram("executor.run_ns").unwrap().count, 1);
    }

    #[test]
    fn observer_counts_skipped_conditionals() {
        let mut circ = Circuit::new(2, 2);
        circ.measure(q(0), c(0)).x_if(q(1), c(0)); // outcome 0: never fires
        circ.measure(q(1), c(1));
        let obs = qobs::Observer::metrics_only();
        Executor::new()
            .shots(8)
            .seed(2)
            .observer(obs.clone())
            .run(&circ);
        assert_eq!(obs.metrics().counter("executor.cc_skipped"), Some(8));
        assert_eq!(obs.metrics().counter("executor.cc_fired"), Some(0));
        assert_eq!(obs.metrics().counter("executor.gates.x"), None);
    }

    #[test]
    fn observer_counts_noise_trajectories() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).measure(q(0), c(0));
        let obs = qobs::Observer::metrics_only();
        Executor::new()
            .shots(5)
            .seed(3)
            .noise(NoiseModel::depolarizing(0.1, 0.1))
            .observer(obs.clone())
            .run(&circ);
        // One single-qubit channel application per H gate per shot.
        assert_eq!(obs.metrics().counter("executor.noise_injections"), Some(5));
    }

    #[test]
    fn observer_does_not_change_outcomes() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0)).cx(q(0), q(1)).measure_all();
        let plain = Executor::new().shots(300).seed(21).run(&circ);
        let observed = Executor::new()
            .shots(300)
            .seed(21)
            .observer(qobs::Observer::metrics_only())
            .run(&circ);
        assert_eq!(plain, observed);
    }

    #[test]
    fn observed_metrics_are_deterministic_per_seed() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0))
            .measure(q(0), c(0))
            .x_if(q(1), c(0))
            .measure(q(1), c(1));
        let run = || {
            let obs = qobs::Observer::metrics_only();
            Executor::new()
                .shots(256)
                .seed(99)
                .observer(obs.clone())
                .run(&circ);
            obs.metrics().to_json()
        };
        let (a, b) = (run(), run());
        // Identical counter sections (histograms carry wall-clock times,
        // which legitimately differ between runs).
        let counters = |s: &str| {
            let start = s.find("\"counters\"").unwrap();
            let end = s.find("\"gauges\"").unwrap();
            s[start..end].to_string()
        };
        assert_eq!(counters(&a), counters(&b));
    }

    #[test]
    fn disabled_observer_overhead_is_within_noise() {
        // A disabled observer must take the un-instrumented fast path; we
        // check the median wall-clock of interleaved runs stays within a
        // generous factor (the real overhead is one boolean branch, but CI
        // timers are noisy, so the threshold is deliberately loose).
        let mut circ = Circuit::new(4, 4);
        for _ in 0..8 {
            circ.h(q(0)).cx(q(0), q(1)).cx(q(1), q(2)).cx(q(2), q(3));
        }
        circ.measure_all();
        let time = |observed: bool| {
            let mut ex = Executor::new().shots(200).seed(5);
            if observed {
                ex = ex.observer(qobs::Observer::disabled());
            }
            let start = std::time::Instant::now();
            ex.run(&circ);
            start.elapsed()
        };
        // Warm-up, then interleave to cancel drift.
        time(false);
        time(true);
        let mut plain: Vec<_> = Vec::new();
        let mut disabled: Vec<_> = Vec::new();
        for _ in 0..9 {
            plain.push(time(false));
            disabled.push(time(true));
        }
        plain.sort();
        disabled.sort();
        let (p, d) = (plain[4].as_secs_f64(), disabled[4].as_secs_f64());
        assert!(
            d < p * 2.0,
            "disabled-observer median {d:.6}s vs plain {p:.6}s"
        );
    }

    #[test]
    fn final_state_is_returned() {
        let mut circ = Circuit::new(2, 1);
        circ.x(q(1)).measure(q(0), c(0));
        let mut rng = StdRng::seed_from_u64(12);
        let (classical, state) = Executor::new().run_shot_with_state(&circ, &mut rng);
        assert_eq!(classical, vec![false]);
        assert!((state.prob_one(1) - 1.0).abs() < 1e-12);
    }
}
