//! Shot-based circuit execution with classical feedback.
//!
//! This is the AER-simulator stand-in: it runs a (possibly dynamic) circuit
//! shot by shot on a statevector, sampling mid-circuit measurements,
//! applying active resets, honouring classically controlled gates, and
//! optionally inserting noise as quantum trajectories.
//!
//! # Determinism contract
//!
//! Shot `i` of a seeded run executes on its own RNG, seeded with
//! [`rand::stream_seed`]`(seed, i)` — a counter-based derivation, not a
//! shared sequential stream. A shot's outcome therefore depends only on
//! `(seed, shot_index, circuit)`: it never shifts because another shot, a
//! noise trajectory, or a reordered draw consumed randomness elsewhere.
//! Consequences, all covered by tests:
//!
//! * results are **bit-identical for every thread count** (see
//!   [`Executor::threads`]) — shots are embarrassingly parallel;
//! * an `n`-shot run is a **prefix** of an `m > n`-shot run at the same
//!   seed (in [`Executor::run_memory`] order);
//! * enabling a noise channel perturbs only the shots in which it draws,
//!   never the seeding of later shots.

use crate::counts::{bitstring, Counts};
use crate::fault::{CcFault, FaultHook, FaultSite, GateFate, FAULT_CAUGHT_PANIC};
use crate::noise::{GateNoise, NoiseModel};
use crate::prefix::{PrefixTree, Walk};
use crate::statevector::StateVector;
use qcir::{Circuit, OpKind};
use qobs::trace::{LocalTrace, TraceEvent, Tracer};
use qobs::{FieldValue, Histogram, Observer};
use rand::rngs::StdRng;
use rand::{stream_seed, Rng, RngCore, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A configurable shot-based simulator.
///
/// # Examples
///
/// Running a 1024-shot experiment, as the paper does:
///
/// ```
/// use qcir::{Circuit, Qubit, Clbit};
/// use qsim::Executor;
///
/// let mut bell = Circuit::new(2, 2);
/// bell.h(Qubit::new(0)).cx(Qubit::new(0), Qubit::new(1)).measure_all();
/// let counts = Executor::new().shots(1024).seed(7).run(&bell);
/// assert_eq!(counts.total(), 1024);
/// assert_eq!(counts.get("01") + counts.get("10"), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    shots: u64,
    seed: Option<u64>,
    threads: Option<usize>,
    noise: NoiseModel,
    observer: Observer,
    tracer: Tracer,
    drift: Option<DriftPolicy>,
    drift_tolerance: f64,
    deadline: Option<Duration>,
    max_failed: Option<u64>,
    cancel: Option<CancelToken>,
    heartbeat: Option<Arc<AtomicU64>>,
    fault: Option<Arc<dyn FaultHook>>,
    engine: Engine,
}

/// How the executor runs its shots — see [`Executor::engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The classic per-shot loop: every shot re-evolves the statevector.
    Shots,
    /// The prefix-sharing branch-tree engine (see [`crate::prefix`]):
    /// evolve once up to each stochastic branch point, then let each shot
    /// walk the branch tree on its own RNG stream. Falls back to
    /// [`Engine::Shots`] whenever semantics require the per-shot loop
    /// (tracer, fault hook, gate/idle noise, a drift policy or failed-shot
    /// budget, or a tree that fails to build). Deadlines and cancel tokens
    /// stay eligible: the tree build and shot walk poll them cooperatively.
    Prefix,
    /// Pick [`Engine::Prefix`] whenever it is applicable, else
    /// [`Engine::Shots`]. Because the two are bit-identical at a fixed
    /// seed, the choice is an implementation detail; this is the default.
    #[default]
    Auto,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Shots => write!(f, "shots"),
            Engine::Prefix => write!(f, "prefix"),
            Engine::Auto => write!(f, "auto"),
        }
    }
}

impl Engine {
    /// Parses the CLI spelling (`shots` / `prefix` / `auto`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "shots" => Some(Engine::Shots),
            "prefix" => Some(Engine::Prefix),
            "auto" => Some(Engine::Auto),
            _ => None,
        }
    }
}

/// What [`Executor::run_resilient`] does when a shot's statevector norm
/// drifts from 1 beyond the configured tolerance (including to NaN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftPolicy {
    /// Rescale the state back to unit norm and continue the shot. Falls back
    /// to discarding when the norm is NaN, infinite or (near) zero, where no
    /// rescale can recover a meaningful state.
    Renormalize,
    /// Drop the shot (counted in [`RunReport::discarded`]) and move on.
    DiscardShot,
    /// Terminate the whole run, returning the counts gathered so far with
    /// [`Termination::Aborted`].
    Abort,
}

/// Why a [`Executor::run_resilient`] call stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Every requested shot was attempted.
    Completed,
    /// The [`Executor::deadline`] elapsed with shots still pending.
    Deadline,
    /// Failed shots exceeded the [`Executor::max_failed`] budget.
    FailedShotBudget,
    /// A shot tripped [`DriftPolicy::Abort`].
    Aborted,
    /// The [`Executor::cancel_token`] was cancelled with shots pending.
    Cancelled,
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Termination::Completed => write!(f, "completed"),
            Termination::Deadline => write!(f, "deadline"),
            Termination::FailedShotBudget => write!(f, "failed-shot-budget"),
            Termination::Aborted => write!(f, "aborted"),
            Termination::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A cooperative cancellation handle for [`Executor::run_resilient`].
///
/// Clones share one flag: hand a clone to the executor via
/// [`Executor::cancel_token`], keep the other, and call
/// [`CancelToken::cancel`] from any thread to stop the run between shots
/// with [`Termination::Cancelled`] and the partial counts gathered so far.
/// Cancellation is level-triggered and sticky — a token cancelled before
/// the run starts stops it before the first shot.
///
/// # Examples
///
/// ```
/// use qsim::CancelToken;
///
/// let token = CancelToken::new();
/// let handle = token.clone();
/// assert!(!token.is_cancelled());
/// handle.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once any clone has called [`CancelToken::cancel`].
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// Outcome accounting for one [`Executor::run_resilient`] call.
///
/// The invariant `completed + failed + discarded <= requested` always holds;
/// the difference is the shots never attempted because the run terminated
/// early (`termination != Completed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Shots the executor was asked for.
    pub requested: u64,
    /// Shots that ran to the end and were recorded in the counts.
    pub completed: u64,
    /// Shots that panicked and were isolated (nothing recorded).
    pub failed: u64,
    /// Shots dropped by the drift guard (nothing recorded).
    pub discarded: u64,
    /// Why the run stopped.
    pub termination: Termination,
}

impl fmt::Display for RunReport {
    /// One stable line, e.g.
    /// `completed 1024/1024 shots (0 failed, 0 discarded): completed` —
    /// the same rendering the trace's `executor.run_end` instant carries.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "completed {}/{} shots ({} failed, {} discarded): {}",
            self.completed, self.requested, self.failed, self.discarded, self.termination
        )
    }
}

/// Drift-guard configuration resolved once per resilient run.
#[derive(Debug, Clone, Copy)]
struct DriftGuard {
    policy: DriftPolicy,
    tolerance: f64,
}

/// Control-flow outcome of one guarded shot.
enum ShotControl {
    Done(Vec<bool>, StateVector),
    Discarded,
    Abort,
}

/// What the drift guard decided after one instruction.
enum DriftAction {
    Continue,
    Discard,
    Abort,
}

const TERMINATION_COMPLETED: u8 = 0;
const TERMINATION_DEADLINE: u8 = 1;
const TERMINATION_FAILED_BUDGET: u8 = 2;
const TERMINATION_ABORTED: u8 = 3;
const TERMINATION_CANCELLED: u8 = 4;

/// Shared early-termination state for one resilient run: a stop flag the
/// workers poll between shots, the cross-worker failed-shot counter, and
/// the first termination reason recorded.
struct RunBudget {
    start: Instant,
    deadline: Option<Duration>,
    max_failed: Option<u64>,
    stop: AtomicBool,
    failed: AtomicU64,
    termination: AtomicU8,
}

impl RunBudget {
    /// Requests termination with `reason`; the first caller wins, later
    /// reasons are dropped.
    fn terminate(&self, reason: u8) {
        let _ = self.termination.compare_exchange(
            TERMINATION_COMPLETED,
            reason,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.stop.store(true, Ordering::Relaxed);
    }

    fn termination(&self) -> Termination {
        match self.termination.load(Ordering::Relaxed) {
            TERMINATION_DEADLINE => Termination::Deadline,
            TERMINATION_FAILED_BUDGET => Termination::FailedShotBudget,
            TERMINATION_ABORTED => Termination::Aborted,
            TERMINATION_CANCELLED => Termination::Cancelled,
            _ => Termination::Completed,
        }
    }
}

/// One worker's contribution to a resilient run.
#[derive(Default)]
struct ChunkOutcome {
    counts: Counts,
    completed: u64,
    failed: u64,
    discarded: u64,
    renormalized: u64,
}

/// Applies the drift guard (if any) to the state after one instruction.
fn check_drift(
    guard: Option<&DriftGuard>,
    state: &mut StateVector,
    renorms: &mut u64,
) -> DriftAction {
    let Some(g) = guard else {
        return DriftAction::Continue;
    };
    let deviation = (state.norm_sqr() - 1.0).abs();
    // Written so a NaN deviation falls through to the policy.
    if deviation <= g.tolerance {
        return DriftAction::Continue;
    }
    match g.policy {
        DriftPolicy::Renormalize => {
            if state.renormalize() {
                *renorms += 1;
                DriftAction::Continue
            } else {
                // NaN / collapsed norm: nothing left to rescale.
                DriftAction::Discard
            }
        }
        DriftPolicy::DiscardShot => DriftAction::Discard,
        DriftPolicy::Abort => DriftAction::Abort,
    }
}

/// Per-run accumulation of executor counters.
///
/// The per-gate hot path only touches this plain struct (and only when the
/// observer is enabled); it is flushed into the observer's shared
/// [`qobs::MetricsRegistry`] **once** per [`Executor::run`] /
/// [`Executor::run_memory`] call, so the registry lock is never taken per
/// gate or per shot.
#[derive(Debug, Default, Clone)]
pub(crate) struct RunTally {
    pub(crate) gates: BTreeMap<&'static str, u64>,
    pub(crate) resets: u64,
    pub(crate) measurements: u64,
    pub(crate) mid_measurements: u64,
    pub(crate) cc_fired: u64,
    pub(crate) cc_skipped: u64,
    pub(crate) noise_applications: u64,
    /// Fault-injection counters, keyed by full counter name
    /// (`fault.injected.<site>`, `fault.caught.panic`).
    pub(crate) faults: BTreeMap<&'static str, u64>,
    /// Per-gate-kind apply-duration histograms (ns on the tracer's clock),
    /// populated only when tracing and observing are both enabled; flushed
    /// as `executor.apply.<kind>_ns`.
    pub(crate) apply_ns: BTreeMap<&'static str, Histogram>,
}

impl RunTally {
    /// Adds `other`'s counters into `self`. Worker-local tallies are merged
    /// with this in shot order before the single registry flush; every field
    /// is a sum, so the merge is exact regardless of the partitioning.
    fn absorb(&mut self, other: RunTally) {
        for (name, n) in other.gates {
            *self.gates.entry(name).or_insert(0) += n;
        }
        self.resets += other.resets;
        self.measurements += other.measurements;
        self.mid_measurements += other.mid_measurements;
        self.cc_fired += other.cc_fired;
        self.cc_skipped += other.cc_skipped;
        self.noise_applications += other.noise_applications;
        for (name, n) in other.faults {
            *self.faults.entry(name).or_insert(0) += n;
        }
        for (name, h) in other.apply_ns {
            self.apply_ns.entry(name).or_default().merge(&h);
        }
    }

    /// Adds `times` copies of `other`'s counters into `self` — how the
    /// prefix engine folds a branch-tree leaf's per-shot tally delta in for
    /// every shot that landed on the leaf. Exact integer arithmetic, so the
    /// result equals `times` sequential [`RunTally::absorb`] calls.
    /// Histograms are deliberately not scaled: leaf tallies never carry
    /// them (apply timing requires a tracer, which forces the per-shot
    /// path).
    pub(crate) fn absorb_scaled(&mut self, other: &RunTally, times: u64) {
        for (name, n) in &other.gates {
            *self.gates.entry(name).or_insert(0) += n * times;
        }
        self.resets += other.resets * times;
        self.measurements += other.measurements * times;
        self.mid_measurements += other.mid_measurements * times;
        self.cc_fired += other.cc_fired * times;
        self.cc_skipped += other.cc_skipped * times;
        self.noise_applications += other.noise_applications * times;
        for (name, n) in &other.faults {
            *self.faults.entry(name).or_insert(0) += n * times;
        }
    }

    /// Records one injected fault at `site`.
    fn fault(&mut self, site: FaultSite) {
        *self.faults.entry(site.counter()).or_insert(0) += 1;
    }
}

/// Tally plus the per-instruction "is a mid-circuit measurement" flags
/// (precomputed once per run, not per shot).
struct TallyCtx<'a> {
    tally: &'a mut RunTally,
    mid_measure: &'a [bool],
}

/// `flags[i]` is `true` when instruction `i` is a measurement whose qubit
/// is used again by a later gate, measurement or reset — the defining
/// property of a mid-circuit measurement. A single backward pass over the
/// circuit (O(n), not a per-measurement forward rescan), tracking whether
/// each qubit has a later *operational* use; barriers are scheduling
/// directives, not operations, so a trailing barrier does not turn a final
/// readout into a mid-circuit one.
pub(crate) fn mid_measure_flags(circuit: &Circuit) -> Vec<bool> {
    let insts = circuit.instructions();
    let mut flags = vec![false; insts.len()];
    let mut used_later = vec![false; circuit.num_qubits()];
    for (i, inst) in insts.iter().enumerate().rev() {
        if matches!(inst.kind(), OpKind::Barrier) {
            continue;
        }
        if matches!(inst.kind(), OpKind::Measure) {
            flags[i] = used_later[inst.qubits()[0].index()];
        }
        for q in inst.qubits() {
            used_later[q.index()] = true;
        }
    }
    flags
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// An executor with 1024 shots (the paper's setting), no fixed seed and
    /// no noise.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shots: 1024,
            seed: None,
            threads: None,
            noise: NoiseModel::ideal(),
            observer: Observer::disabled(),
            tracer: Tracer::disabled(),
            drift: None,
            drift_tolerance: 1e-6,
            deadline: None,
            max_failed: None,
            cancel: None,
            heartbeat: None,
            fault: None,
            engine: Engine::Auto,
        }
    }

    /// Selects the shot engine (default [`Engine::Auto`]).
    ///
    /// The engines are bit-identical at a fixed seed — same [`Counts`],
    /// same [`Executor::run_memory`] rows, same observer counters — so this
    /// is a performance knob, not a semantics knob. [`Engine::Prefix`] is a
    /// *request*: runs whose semantics need the per-shot loop (a tracer, a
    /// fault hook, gate or idle noise channels, a drift policy or
    /// failed-shot budget under `run_resilient`, or a branch tree that
    /// exceeds its node budget) silently fall back to [`Engine::Shots`];
    /// use [`Executor::resolve_engine`] to see what a run will actually
    /// use.
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The engine [`Executor::run`] / [`Executor::run_memory`] would use on
    /// `circuit` under the current configuration: never [`Engine::Auto`],
    /// always the resolved [`Engine::Prefix`] or [`Engine::Shots`].
    /// (`run_resilient` additionally requires no drift policy and no
    /// failed-shot budget for the prefix engine; a deadline or cancel
    /// token is polled cooperatively and keeps it eligible.)
    #[must_use]
    pub fn resolve_engine(&self, circuit: &Circuit) -> Engine {
        match self.prefix_tree(circuit) {
            Some(_) => Engine::Prefix,
            None => Engine::Shots,
        }
    }

    /// Builds the branch tree when the configuration and circuit are
    /// prefix-eligible; `None` means "use the per-shot loop".
    ///
    /// Eligibility, equivalently the fallback matrix:
    ///
    /// * the engine must not be pinned to [`Engine::Shots`];
    /// * no tracer — per-shot `shot` / `measure` / `reset` / `condition`
    ///   spans are the product, so the per-shot loop *is* the semantics;
    /// * no fault hook — hooks key decisions on `(shot, site)` and may
    ///   perturb state/classical bits per shot;
    /// * no gate or idle noise channels — those draw inside the evolution,
    ///   which shots no longer perform (`readout_flip` / `reset_error` stay
    ///   eligible: they are plain `gen_bool` events the tree models);
    /// * the tree must build: finite branch probabilities and at most
    ///   [`crate::prefix::MAX_TREE_NODES`] nodes.
    fn prefix_tree(&self, circuit: &Circuit) -> Option<crate::prefix::PrefixTree> {
        self.prefix_tree_polled(circuit, || false)
    }

    /// [`Executor::prefix_tree`] with a cooperative interruption poll
    /// threaded into the tree build (see [`PrefixTree::build_polled`]):
    /// `run_resilient` uses it so a cancelled or deadline-expired job stops
    /// paying for tree construction at branch-node granularity.
    fn prefix_tree_polled(
        &self,
        circuit: &Circuit,
        poll: impl FnMut() -> bool,
    ) -> Option<crate::prefix::PrefixTree> {
        if self.engine == Engine::Shots
            || self.tracer.is_enabled()
            || self.fault.is_some()
            || !crate::prefix::noise_is_tree_compatible(&self.noise)
        {
            return None;
        }
        crate::prefix::PrefixTree::build_polled(circuit, &self.noise, poll)
    }

    /// A [`RunBudget`] for one resilient run, clock started now.
    fn fresh_budget(&self) -> RunBudget {
        RunBudget {
            start: Instant::now(),
            deadline: self.deadline,
            max_failed: self.max_failed,
            stop: AtomicBool::new(false),
            failed: AtomicU64::new(0),
            termination: AtomicU8::new(TERMINATION_COMPLETED),
        }
    }

    /// Ticks the liveness heartbeat, when one is installed.
    #[inline]
    fn beat(&self) {
        if let Some(beat) = &self.heartbeat {
            beat.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One cooperative budget poll: `true` when the run must stop, with the
    /// termination reason (cancellation wins over the deadline, matching
    /// the per-shot loop's check order) recorded first-wins in `budget`.
    fn poll_budget(&self, budget: &RunBudget) -> bool {
        if budget.stop.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                budget.terminate(TERMINATION_CANCELLED);
                return true;
            }
        }
        if let Some(deadline) = budget.deadline {
            if budget.start.elapsed() >= deadline {
                budget.terminate(TERMINATION_DEADLINE);
                return true;
            }
        }
        false
    }

    /// Installs a fault-injection hook (see [`crate::fault`] and the
    /// `qfault` crate). The hook is consulted at every named boundary of
    /// the shot loop; without one installed each boundary is a single
    /// `Option` branch and results are bit-identical to an uninjected run.
    ///
    /// Fault decisions never consume the shot's RNG stream, so installing a
    /// hook whose every decision is "no fault" also leaves results
    /// bit-identical. Injected panics should be run under
    /// [`Executor::run_resilient`], which isolates them per shot and counts
    /// them as `fault.caught.panic`; under [`Executor::run`] they propagate
    /// and abort the whole run.
    #[must_use]
    pub fn fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.fault = Some(hook);
        self
    }

    /// Enables the per-instruction norm-drift guard for
    /// [`Executor::run_resilient`] with the given policy.
    ///
    /// The guard costs one `norm_sqr` scan (O(2^n)) per executed
    /// instruction, so it is opt-in; [`Executor::run`] never checks.
    #[must_use]
    pub fn drift_policy(mut self, policy: DriftPolicy) -> Self {
        self.drift = Some(policy);
        self
    }

    /// Sets the norm-drift tolerance for [`Executor::drift_policy`]: the
    /// guard trips when `| ||psi||^2 - 1 |` exceeds it (default `1e-6`).
    /// A NaN norm always trips the guard.
    #[must_use]
    pub fn drift_tolerance(mut self, tolerance: f64) -> Self {
        self.drift_tolerance = tolerance;
        self
    }

    /// Sets a wall-clock budget for [`Executor::run_resilient`]: once it
    /// elapses, no further shots start and the run returns the partial
    /// counts with [`Termination::Deadline`].
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the failed-shot budget for [`Executor::run_resilient`]: when
    /// more than `max_failed` shots have panicked, the run stops with
    /// [`Termination::FailedShotBudget`] (so `max_failed(0)` stops on the
    /// first failure).
    #[must_use]
    pub fn max_failed(mut self, max_failed: u64) -> Self {
        self.max_failed = Some(max_failed);
        self
    }

    /// Installs a cooperative [`CancelToken`] checked between shots by
    /// [`Executor::run_resilient`]. Cancelling it (from any thread) stops
    /// the run with [`Termination::Cancelled`] and the partial counts
    /// gathered so far. Tokens (and deadlines) are polled cooperatively by
    /// *both* engines — on the prefix path during tree construction (per
    /// stochastic branch node) and during the shot walk — so installing one
    /// does not force the per-shot loop. Like the other budgets it is
    /// ignored by the budget-free [`Executor::run`].
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Installs a liveness heartbeat: [`Executor::run_resilient`] bumps the
    /// counter at least once per attempted shot (and once per branch node
    /// during prefix-tree construction). A supervisor that samples the
    /// counter can distinguish "slow but alive" from "wedged": a stalled
    /// value across a watchdog interval longer than the worst single-shot
    /// latency means the run is stuck, and its [`CancelToken`] will not be
    /// honoured. Heartbeat stores never consume the shot RNG streams, so
    /// results are bit-identical with or without one installed.
    #[must_use]
    pub fn heartbeat(mut self, beat: Arc<AtomicU64>) -> Self {
        self.heartbeat = Some(beat);
        self
    }

    /// Sets the number of shots.
    #[must_use]
    pub fn shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Fixes the base seed for reproducible runs. Shot `i` then executes on
    /// its own stream seeded with [`rand::stream_seed`]`(seed, i)`, so the
    /// per-shot outcomes are a pure function of `(seed, i, circuit)` — see
    /// the module-level determinism contract.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the worker-thread count for [`Executor::run`] /
    /// [`Executor::run_memory`]. The default is the machine's
    /// `std::thread::available_parallelism`.
    ///
    /// Because every shot runs on its own counter-derived RNG stream, the
    /// thread count is invisible in the results: a seeded run is
    /// bit-identical at 1, 2 or 8 threads (counts, memory order, and
    /// observer counters alike). `threads(1)` forces the in-thread
    /// sequential path.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is 0.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be at least 1");
        self.threads = Some(threads);
        self
    }

    /// Attaches a noise model (applied as quantum trajectories).
    #[must_use]
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Attaches an observability handle. Each [`Executor::run`] /
    /// [`Executor::run_memory`] call then records, into the observer's
    /// metrics registry:
    ///
    /// * `executor.shots` — shots executed;
    /// * `executor.gates.<name>` — gates applied, by gate kind (only gates
    ///   that actually executed: a skipped conditioned gate is not counted);
    /// * `executor.resets` — active resets applied;
    /// * `executor.measurements` / `executor.mid_circuit_measurements` —
    ///   all measurements, and the subset whose qubit is reused later;
    /// * `executor.cc_fired` / `executor.cc_skipped` — classically
    ///   controlled operations whose condition held / did not hold;
    /// * `executor.noise_injections` — stochastic noise-channel
    ///   applications (gate noise and idle noise trajectories);
    /// * `executor.qubits` — a gauge holding the simulated circuit's
    ///   physical width (the reuse planner's lanes + answer wires);
    ///
    /// plus an `executor.run` span (duration histogram `executor.run_ns`).
    ///
    /// Counters accumulate per shot but are flushed to the registry once
    /// per run; with the default [`Observer::disabled`] the hot path is a
    /// single branch.
    #[must_use]
    pub fn observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Attaches a tracing handle (see [`qobs::trace`]). Each run then
    /// records, into the tracer's shared log:
    ///
    /// * a top-level `executor.run` / `executor.run_resilient` span closed
    ///   by an `executor.run_end` instant carrying the termination reason;
    /// * one `shot` span per shot, with `measure` / `reset` / `condition`
    ///   sub-spans, on a lane derived from the shot index;
    /// * qfault injections as instant events (named after their counters,
    ///   e.g. `fault.injected.meas-flip`) on the owning shot's span;
    /// * with the observer **also** enabled, per-gate-kind apply timing
    ///   into `executor.apply.<kind>_ns` histograms (metrics, not events).
    ///
    /// Shots record into owner-local buffers submitted in shot order, so
    /// the trace is deterministic at every thread count; under
    /// [`Tracer::test`] the exported file is byte-identical. Tracing never
    /// consumes the shot RNG streams: results with tracing on are
    /// bit-identical to results with it off. With the default
    /// [`Tracer::disabled`] every instrumentation site is one branch.
    #[must_use]
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Runs the circuit and tallies classical-register outcomes.
    ///
    /// The result keys are bitstrings with classical bit `n-1` leftmost.
    /// Shots are distributed over [`Executor::threads`] workers with
    /// worker-local [`Counts`] buffers, merged in shot order; the result is
    /// bit-identical for every thread count at a fixed seed.
    pub fn run(&self, circuit: &Circuit) -> Counts {
        let parts = self.run_partitioned(
            circuit,
            |_| Counts::new(),
            |counts: &mut Counts, classical| counts.record(bitstring(&classical)),
        );
        let mut counts = Counts::new();
        for part in parts {
            counts.merge(part);
        }
        counts
    }

    /// Runs the circuit and returns the per-shot outcome records in order
    /// (the "memory" mode of hardware backends), for analyses that need
    /// shot-to-shot structure rather than aggregate counts.
    ///
    /// Workers fill worker-local buffers over contiguous shot ranges, which
    /// are concatenated in range order — entry `i` is always shot `i`,
    /// whatever the thread count.
    pub fn run_memory(&self, circuit: &Circuit) -> Vec<String> {
        let parts = self.run_partitioned(
            circuit,
            Vec::with_capacity,
            |memory: &mut Vec<String>, classical| memory.push(bitstring(&classical)),
        );
        let mut memory = Vec::with_capacity(self.shots as usize);
        for part in parts {
            memory.extend(part);
        }
        memory
    }

    /// Runs the circuit with per-shot fault isolation and graceful
    /// degradation, returning whatever counts were gathered plus a
    /// [`RunReport`].
    ///
    /// Differences from [`Executor::run`]:
    ///
    /// * every shot executes under `catch_unwind`: a panicking shot (NaN
    ///   probabilities, a poisoned gate parameter, …) is recorded as
    ///   *failed* instead of killing the run;
    /// * with [`Executor::drift_policy`] set, the statevector norm is
    ///   checked after every instruction and handled per the policy;
    /// * with [`Executor::deadline`] / [`Executor::max_failed`] set, the
    ///   run terminates early once the budget is exhausted and returns the
    ///   **partial** counts gathered so far — it never panics for budget
    ///   reasons.
    ///
    /// Shot `i` still executes on `stream_seed(base, i)`, so a resilient
    /// run that completes (no early termination) produces counts
    /// bit-identical to [`Executor::run`] at every thread count. Early
    /// termination stops workers at chunk granularity, so *which* shots ran
    /// may then depend on timing and thread count — but every recorded shot
    /// is still individually reproducible.
    ///
    /// With an observer attached, the run additionally records
    /// `executor.shots_failed`, `executor.shots_discarded` and
    /// `executor.drift_renormalized` counters on top of the usual set (and
    /// `executor.shots` counts *completed* shots only).
    pub fn run_resilient(&self, circuit: &Circuit) -> (Counts, RunReport) {
        // The prefix engine additionally requires that no drift guard or
        // failed-shot budget is configured: drift guards run per instruction
        // inside the shot and `max_failed` counts per-shot panics — both
        // inherently per-shot semantics. Deadlines and cancellation tokens,
        // by contrast, are polled cooperatively during tree construction
        // and the shot walk, so they stay prefix-eligible; an uninterrupted
        // run remains bit-identical to the per-shot engine.
        let mut carried = None;
        if self.drift.is_none() && self.max_failed.is_none() {
            let budget = self.fresh_budget();
            let tree = {
                let budget = &budget;
                self.prefix_tree_polled(circuit, || {
                    self.beat();
                    self.poll_budget(budget)
                })
            };
            if let Some(tree) = tree {
                return self.run_resilient_prefix(circuit, &tree, &budget);
            }
            // A `None` tree is either ineligibility (fall through to the
            // per-shot loop, keeping the budget so the deadline clock is
            // not restarted) or an interrupted build: the interrupt already
            // recorded its termination reason, so return the empty partial
            // result.
            if budget.stop.load(Ordering::Relaxed) {
                return (
                    Counts::new(),
                    RunReport {
                        requested: self.shots,
                        completed: 0,
                        failed: 0,
                        discarded: 0,
                        termination: budget.termination(),
                    },
                );
            }
            carried = Some(budget);
        }
        let budget = carried.unwrap_or_else(|| self.fresh_budget());
        let base = self.base_seed();
        let workers = (self.effective_threads() as u64).min(self.shots.max(1)) as usize;
        let observed = self.observer.is_enabled();
        let mid = if observed {
            Some(mid_measure_flags(circuit))
        } else {
            None
        };
        let span = if observed {
            let mut span = self.observer.span("executor.run_resilient");
            span.field("shots", self.shots);
            span.field("instructions", circuit.len());
            span.field("threads", workers as u64);
            Some(span)
        } else {
            None
        };
        let guard = self.drift.map(|policy| DriftGuard {
            policy,
            tolerance: self.drift_tolerance,
        });

        let mut top = self.tracer.top_local();
        if let Some(t) = top.as_mut() {
            t.begin("executor.run_resilient");
        }

        let results: Vec<(ChunkOutcome, Option<RunTally>, Vec<TraceEvent>)> = if workers <= 1 {
            let result = self.run_chunk_resilient(
                circuit,
                base,
                0..self.shots,
                mid.as_deref(),
                guard,
                &budget,
            );
            vec![result]
        } else {
            let chunk_len = self.shots.div_ceil(workers as u64);
            let mid = mid.as_deref();
            let budget = &budget;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers as u64)
                    .map(|w| {
                        let lo = w * chunk_len;
                        let hi = (lo + chunk_len).min(self.shots);
                        scope.spawn(move || {
                            self.run_chunk_resilient(circuit, base, lo..hi, mid, guard, budget)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("resilient chunk driver panicked"))
                    .collect()
            })
        };

        let mut counts = Counts::new();
        let mut report = RunReport {
            requested: self.shots,
            completed: 0,
            failed: 0,
            discarded: 0,
            termination: budget.termination(),
        };
        let mut renorms = 0u64;
        let mut merged = RunTally::default();
        for (chunk, tally, trace) in results {
            counts.merge(chunk.counts);
            report.completed += chunk.completed;
            report.failed += chunk.failed;
            report.discarded += chunk.discarded;
            renorms += chunk.renormalized;
            if let Some(tally) = tally {
                merged.absorb(tally);
            }
            self.tracer.submit(trace);
        }
        if observed {
            self.flush_tally(&merged, report.completed);
            let obs = &self.observer;
            obs.gauge_set("executor.qubits", circuit.num_qubits() as f64);
            obs.counter_add("executor.shots_failed", report.failed);
            obs.counter_add("executor.shots_discarded", report.discarded);
            obs.counter_add("executor.drift_renormalized", renorms);
        }
        if let Some(mut t) = top {
            t.instant_with(
                "executor.run_end",
                vec![
                    (
                        "termination",
                        FieldValue::Str(report.termination.to_string()),
                    ),
                    ("completed", FieldValue::U64(report.completed)),
                    ("failed", FieldValue::U64(report.failed)),
                    ("discarded", FieldValue::U64(report.discarded)),
                ],
            );
            t.end();
            self.tracer.submit(t.into_events());
        }
        drop(span);
        (counts, report)
    }

    /// [`Executor::run_resilient`] on the prefix engine: no drift guard or
    /// failed-shot budget by eligibility, so the resilience left to provide
    /// is panic isolation around per-shot replays of pruned branches (walks
    /// themselves cannot panic: every stored probability was validated at
    /// tree construction) plus cooperative deadline/cancellation polls —
    /// the cancel token per shot, the deadline clock and cross-worker stop
    /// flag every 64 shots (an `Instant::elapsed` call costs more than a
    /// whole tree walk, so it is amortized over a sample chunk).
    fn run_resilient_prefix(
        &self,
        circuit: &Circuit,
        tree: &PrefixTree,
        budget: &RunBudget,
    ) -> (Counts, RunReport) {
        let base = self.base_seed();
        let workers = (self.effective_threads() as u64).min(self.shots.max(1)) as usize;
        let observed = self.observer.is_enabled();
        let mid = if observed {
            Some(mid_measure_flags(circuit))
        } else {
            None
        };
        let span = if observed {
            let mut span = self.observer.span("executor.run_resilient");
            span.field("shots", self.shots);
            span.field("instructions", circuit.len());
            span.field("threads", workers as u64);
            Some(span)
        } else {
            None
        };

        let results: Vec<(ChunkOutcome, Option<RunTally>, u64)> = if workers <= 1 {
            vec![self.run_chunk_resilient_prefix(
                tree,
                circuit,
                base,
                0..self.shots,
                mid.as_deref(),
                budget,
            )]
        } else {
            let chunk = self.shots.div_ceil(workers as u64);
            let mid = mid.as_deref();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers as u64)
                    .map(|w| {
                        let lo = w * chunk;
                        let hi = (lo + chunk).min(self.shots);
                        scope.spawn(move || {
                            self.run_chunk_resilient_prefix(
                                tree,
                                circuit,
                                base,
                                lo..hi,
                                mid,
                                budget,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("prefix worker panicked"))
                    .collect()
            })
        };

        let mut counts = Counts::new();
        let mut report = RunReport {
            requested: self.shots,
            completed: 0,
            failed: 0,
            discarded: 0,
            termination: budget.termination(),
        };
        let mut merged = RunTally::default();
        let mut replayed = 0u64;
        for (chunk, tally, bails) in results {
            counts.merge(chunk.counts);
            report.completed += chunk.completed;
            report.failed += chunk.failed;
            replayed += bails;
            if let Some(tally) = tally {
                merged.absorb(tally);
            }
        }
        if observed {
            self.flush_tally(&merged, report.completed);
            let obs = &self.observer;
            obs.gauge_set("executor.qubits", circuit.num_qubits() as f64);
            obs.counter_add("executor.shots_failed", report.failed);
            obs.counter_add("executor.shots_discarded", 0);
            obs.counter_add("executor.drift_renormalized", 0);
            self.flush_prefix_stats(tree, replayed);
        }
        drop(span);
        (counts, report)
    }

    /// One worker's contiguous shot range of a prefix-engine resilient run.
    fn run_chunk_resilient_prefix(
        &self,
        tree: &PrefixTree,
        circuit: &Circuit,
        base: u64,
        shots: Range<u64>,
        mid: Option<&[bool]>,
        budget: &RunBudget,
    ) -> (ChunkOutcome, Option<RunTally>, u64) {
        let mut out = ChunkOutcome::default();
        let mut hits = vec![0u64; tree.num_leaves()];
        let mut tally = mid.map(|_| RunTally::default());
        let mut replayed = 0u64;
        let mut since_poll = 0u32;
        for i in shots {
            self.beat();
            // The cancel token is one relaxed load — check it every shot.
            // The deadline clock and the cross-worker stop flag are
            // amortized over 64-shot sample chunks.
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    budget.terminate(TERMINATION_CANCELLED);
                    break;
                }
            }
            if since_poll == 0 && self.poll_budget(budget) {
                break;
            }
            since_poll = (since_poll + 1) & 63;
            let mut rng = StdRng::seed_from_u64(stream_seed(base, i));
            match tree.walk(&mut rng) {
                Walk::Leaf(leaf) => {
                    hits[leaf as usize] += 1;
                    out.completed += 1;
                    out.counts.record(bitstring(tree.leaf_classical(leaf)));
                }
                Walk::Replay => {
                    replayed += 1;
                    let mut rng = StdRng::seed_from_u64(stream_seed(base, i));
                    let shot = catch_unwind(AssertUnwindSafe(|| {
                        let mut ctx = match (&mut tally, mid) {
                            (Some(tally), Some(mid)) => Some(TallyCtx {
                                tally,
                                mid_measure: mid,
                            }),
                            _ => None,
                        };
                        self.run_shot_with_state_traced(circuit, i, &mut rng, &mut ctx, &mut None)
                    }));
                    match shot {
                        Ok((classical, _)) => {
                            out.completed += 1;
                            out.counts.record(bitstring(&classical));
                        }
                        Err(_) => out.failed += 1,
                    }
                }
            }
        }
        if let Some(t) = &mut tally {
            tree.accumulate_tally(&hits, t);
        }
        (out, tally, replayed)
    }

    /// Executes the contiguous shot range `shots` for
    /// [`Executor::run_resilient`]: per-shot `catch_unwind`, drift guard,
    /// and cooperative early termination through the shared budget.
    fn run_chunk_resilient(
        &self,
        circuit: &Circuit,
        base: u64,
        shots: Range<u64>,
        mid: Option<&[bool]>,
        guard: Option<DriftGuard>,
        budget: &RunBudget,
    ) -> (ChunkOutcome, Option<RunTally>, Vec<TraceEvent>) {
        let mut out = ChunkOutcome::default();
        let mut tally = mid.map(|_| RunTally::default());
        let mut events = Vec::new();
        for i in shots {
            self.beat();
            if self.poll_budget(budget) {
                break;
            }
            let mut rng = StdRng::seed_from_u64(stream_seed(base, i));
            let mut renorms = 0u64;
            // The trace buffer lives outside the unwind boundary so a
            // panicking shot still contributes a balanced span with the
            // panic marked on it.
            let mut lt = self.tracer.shot_local(i);
            if let Some(t) = lt.as_mut() {
                t.begin("shot");
            }
            let shot = {
                let lt = &mut lt;
                catch_unwind(AssertUnwindSafe(|| {
                    let mut ctx = match (&mut tally, mid) {
                        (Some(tally), Some(mid)) => Some(TallyCtx {
                            tally,
                            mid_measure: mid,
                        }),
                        _ => None,
                    };
                    self.run_shot_guarded(
                        circuit,
                        i,
                        &mut rng,
                        &mut ctx,
                        lt,
                        guard.as_ref(),
                        &mut renorms,
                    )
                }))
            };
            out.renormalized += renorms;
            let mut stop = false;
            match shot {
                Ok(ShotControl::Done(classical, _)) => {
                    out.completed += 1;
                    out.counts.record(bitstring(&classical));
                    if let Some(t) = lt.as_mut() {
                        t.end();
                    }
                }
                Ok(ShotControl::Discarded) => {
                    out.discarded += 1;
                    if let Some(t) = lt.as_mut() {
                        t.abort_open("shot.discarded");
                    }
                }
                Ok(ShotControl::Abort) => {
                    budget.terminate(TERMINATION_ABORTED);
                    if let Some(t) = lt.as_mut() {
                        t.abort_open("budget.abort");
                    }
                    stop = true;
                }
                Err(_) => {
                    out.failed += 1;
                    if let Some(t) = lt.as_mut() {
                        t.abort_open("shot.panic");
                    }
                    // Attribute the catch when the panic was an injected
                    // one (the hook's decision is pure, so re-asking gives
                    // the same answer the shot saw).
                    if let Some(t) = &mut tally {
                        if self.fault.as_ref().is_some_and(|h| h.shot_panic(i)) {
                            *t.faults.entry(FAULT_CAUGHT_PANIC).or_insert(0) += 1;
                        }
                    }
                    let failed_total = budget.failed.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(max) = budget.max_failed {
                        if failed_total > max {
                            budget.terminate(TERMINATION_FAILED_BUDGET);
                            if let Some(t) = lt.as_mut() {
                                t.instant("budget.failed-shots");
                            }
                            stop = true;
                        }
                    }
                }
            }
            if let Some(t) = lt {
                events.extend(t.into_events());
            }
            if stop {
                break;
            }
        }
        (out, tally, events)
    }

    /// The run's base seed: the configured seed, or fresh entropy drawn once
    /// per run (so even unseeded runs derive coherent per-shot streams).
    fn base_seed(&self) -> u64 {
        match self.seed {
            Some(s) => s,
            None => StdRng::from_entropy().next_u64(),
        }
    }

    /// The worker count: the explicit [`Executor::threads`] override, else
    /// the machine's available parallelism (1 when undeterminable).
    fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    }

    /// Shared shot driver behind [`Executor::run`] and
    /// [`Executor::run_memory`]: splits the shot range into one contiguous
    /// chunk per worker, executes each chunk with a worker-local accumulator
    /// (built by `make`, filled by `record`), and returns the accumulators
    /// in shot order. With the observer enabled, each worker also keeps a
    /// local [`RunTally`]; the tallies are merged deterministically in shot
    /// order and flushed into the metrics registry exactly once, under the
    /// timed `executor.run` span.
    ///
    /// Shot `i` always executes on `stream_seed(base, i)`, so the partition
    /// geometry (and hence the thread count) is invisible in the results.
    fn run_partitioned<A, M, F>(&self, circuit: &Circuit, make: M, record: F) -> Vec<A>
    where
        A: Send,
        M: Fn(usize) -> A + Sync,
        F: Fn(&mut A, Vec<bool>) + Sync,
    {
        let base = self.base_seed();
        let workers = (self.effective_threads() as u64).min(self.shots.max(1)) as usize;
        let observed = self.observer.is_enabled();
        let mid = if observed {
            Some(mid_measure_flags(circuit))
        } else {
            None
        };
        let span = if observed {
            let mut span = self.observer.span("executor.run");
            span.field("shots", self.shots);
            span.field("instructions", circuit.len());
            span.field("threads", workers as u64);
            Some(span)
        } else {
            None
        };
        let mut top = self.tracer.top_local();
        if let Some(t) = top.as_mut() {
            t.begin("executor.run");
        }

        let tree = self.prefix_tree(circuit);
        let mut replayed = 0u64;
        let results: Vec<(A, Option<RunTally>, Vec<TraceEvent>)> = if let Some(tree) = &tree {
            // Prefix engine: same worker partitioning, but each shot walks
            // the pre-built branch tree instead of re-evolving the state.
            // The tracer is disabled on this path (eligibility), so chunk
            // traces are empty.
            let raw: Vec<(A, Option<RunTally>, u64)> = if workers <= 1 {
                let mut acc = make(self.shots as usize);
                let (tally, bails) = self.run_chunk_prefix(
                    tree,
                    circuit,
                    base,
                    0..self.shots,
                    mid.as_deref(),
                    &mut acc,
                    &record,
                );
                vec![(acc, tally, bails)]
            } else {
                let chunk = self.shots.div_ceil(workers as u64);
                let mid = mid.as_deref();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers as u64)
                        .map(|w| {
                            let lo = w * chunk;
                            let hi = (lo + chunk).min(self.shots);
                            let (make, record) = (&make, &record);
                            scope.spawn(move || {
                                let mut acc = make((hi - lo) as usize);
                                let (tally, bails) = self.run_chunk_prefix(
                                    tree,
                                    circuit,
                                    base,
                                    lo..hi,
                                    mid,
                                    &mut acc,
                                    record,
                                );
                                (acc, tally, bails)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("prefix worker panicked"))
                        .collect()
                })
            };
            raw.into_iter()
                .map(|(acc, tally, bails)| {
                    replayed += bails;
                    (acc, tally, Vec::new())
                })
                .collect()
        } else if workers <= 1 {
            let mut acc = make(self.shots as usize);
            let (tally, trace) = self.run_chunk_with(
                circuit,
                base,
                0..self.shots,
                mid.as_deref(),
                &mut acc,
                &record,
            );
            vec![(acc, tally, trace)]
        } else {
            let chunk = self.shots.div_ceil(workers as u64);
            let mid = mid.as_deref();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers as u64)
                    .map(|w| {
                        let lo = w * chunk;
                        let hi = (lo + chunk).min(self.shots);
                        let (make, record) = (&make, &record);
                        scope.spawn(move || {
                            let mut acc = make((hi - lo) as usize);
                            let (tally, trace) =
                                self.run_chunk_with(circuit, base, lo..hi, mid, &mut acc, record);
                            (acc, tally, trace)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shot worker panicked"))
                    .collect()
            })
        };
        // Chunks cover contiguous shot ranges in worker order, so absorbing
        // and submitting in iteration order is absorbing in shot order —
        // the deterministic-merge contract for counters and traces alike.
        let mut parts = Vec::with_capacity(results.len());
        let mut merged = RunTally::default();
        for (acc, tally, trace) in results {
            parts.push(acc);
            if let Some(tally) = tally {
                merged.absorb(tally);
            }
            self.tracer.submit(trace);
        }
        if observed {
            self.flush_tally(&merged, self.shots);
            self.observer
                .gauge_set("executor.qubits", circuit.num_qubits() as f64);
            if let Some(tree) = &tree {
                self.flush_prefix_stats(tree, replayed);
            }
        }
        if let Some(mut t) = top {
            t.instant_with(
                "executor.run_end",
                vec![
                    ("termination", FieldValue::Str("completed".to_string())),
                    ("shots", FieldValue::U64(self.shots)),
                ],
            );
            t.end();
            self.tracer.submit(t.into_events());
        }
        drop(span);
        parts
    }

    /// Executes the contiguous shot range `shots` on the prefix engine:
    /// each shot walks `tree` on its own counter-derived RNG stream, in
    /// shot order, so memory rows and merge order match the per-shot path
    /// exactly. Returns the chunk tally (when observed) and the number of
    /// shots that bailed to a per-shot replay.
    #[allow(clippy::too_many_arguments)]
    fn run_chunk_prefix<A>(
        &self,
        tree: &PrefixTree,
        circuit: &Circuit,
        base: u64,
        shots: Range<u64>,
        mid: Option<&[bool]>,
        acc: &mut A,
        record: &(impl Fn(&mut A, Vec<bool>) + Sync),
    ) -> (Option<RunTally>, u64) {
        let mut hits = vec![0u64; tree.num_leaves()];
        let mut tally = mid.map(|_| RunTally::default());
        let mut replayed = 0u64;
        for i in shots {
            let mut rng = StdRng::seed_from_u64(stream_seed(base, i));
            match tree.walk(&mut rng) {
                Walk::Leaf(leaf) => {
                    hits[leaf as usize] += 1;
                    record(acc, tree.leaf_classical(leaf).to_vec());
                }
                Walk::Replay => {
                    // A pruned branch: rerun just this shot per-shot, on a
                    // fresh stream — bit-identical to the per-shot engine
                    // by definition.
                    replayed += 1;
                    let mut rng = StdRng::seed_from_u64(stream_seed(base, i));
                    let mut ctx = match (&mut tally, mid) {
                        (Some(tally), Some(mid)) => Some(TallyCtx {
                            tally,
                            mid_measure: mid,
                        }),
                        _ => None,
                    };
                    let (classical, _) =
                        self.run_shot_with_state_traced(circuit, i, &mut rng, &mut ctx, &mut None);
                    record(acc, classical);
                }
            }
        }
        if let Some(t) = &mut tally {
            tree.accumulate_tally(&hits, t);
        }
        (tally, replayed)
    }

    /// Adds the prefix engine's structural counters to the observer: tree
    /// shape (`prefix.nodes` / `prefix.leaves` / `prefix.pruned_branches`),
    /// what gate fusion achieved (`prefix.fused_blocks` /
    /// `prefix.fused_gates`), and how many shots bailed to a per-shot
    /// replay (`prefix.shots_replayed`). All are pure functions of
    /// `(circuit, noise, seed, shots)`, so they are bit-identical across
    /// thread counts like every other counter.
    fn flush_prefix_stats(&self, tree: &PrefixTree, replayed: u64) {
        let obs = &self.observer;
        obs.counter_add("prefix.nodes", tree.num_nodes() as u64);
        obs.counter_add("prefix.leaves", tree.num_leaves() as u64);
        obs.counter_add("prefix.pruned_branches", tree.num_pruned());
        obs.counter_add("prefix.shots_replayed", replayed);
        let fusion = tree.fusion_stats();
        obs.counter_add("prefix.fused_blocks", fusion.blocks as u64);
        obs.counter_add("prefix.fused_gates", fusion.gates_fused as u64);
    }

    /// Executes the contiguous shot range `shots` sequentially, seeding shot
    /// `i` from `stream_seed(base, i)` and feeding each outcome to `record`.
    /// Returns this chunk's tally when `mid` is provided (the observed
    /// path) and this chunk's trace events when the tracer is enabled;
    /// `None`/empty keeps the un-instrumented hot path tally- and
    /// trace-free.
    fn run_chunk_with<A>(
        &self,
        circuit: &Circuit,
        base: u64,
        shots: Range<u64>,
        mid: Option<&[bool]>,
        acc: &mut A,
        record: &(impl Fn(&mut A, Vec<bool>) + Sync),
    ) -> (Option<RunTally>, Vec<TraceEvent>) {
        let mut events = Vec::new();
        match mid {
            Some(mid) => {
                let mut tally = RunTally::default();
                for i in shots {
                    let mut rng = StdRng::seed_from_u64(stream_seed(base, i));
                    let mut ctx = Some(TallyCtx {
                        tally: &mut tally,
                        mid_measure: mid,
                    });
                    let mut lt = self.tracer.shot_local(i);
                    if let Some(t) = lt.as_mut() {
                        t.begin("shot");
                    }
                    let (classical, _) =
                        self.run_shot_with_state_traced(circuit, i, &mut rng, &mut ctx, &mut lt);
                    if let Some(mut t) = lt {
                        t.end();
                        events.extend(t.into_events());
                    }
                    record(acc, classical);
                }
                (Some(tally), events)
            }
            None => {
                for i in shots {
                    let mut rng = StdRng::seed_from_u64(stream_seed(base, i));
                    let mut lt = self.tracer.shot_local(i);
                    if let Some(t) = lt.as_mut() {
                        t.begin("shot");
                    }
                    let (classical, _) =
                        self.run_shot_with_state_traced(circuit, i, &mut rng, &mut None, &mut lt);
                    if let Some(mut t) = lt {
                        t.end();
                        events.extend(t.into_events());
                    }
                    record(acc, classical);
                }
                (None, events)
            }
        }
    }

    /// Adds the run's tally to the observer's registry (one lock
    /// acquisition per counter, once per run). `shots` is the number of
    /// shots actually recorded — all requested shots for [`Executor::run`],
    /// completed shots only for [`Executor::run_resilient`].
    fn flush_tally(&self, tally: &RunTally, shots: u64) {
        let obs = &self.observer;
        obs.counter_add("executor.shots", shots);
        obs.counter_add("executor.resets", tally.resets);
        obs.counter_add("executor.measurements", tally.measurements);
        obs.counter_add("executor.mid_circuit_measurements", tally.mid_measurements);
        obs.counter_add("executor.cc_fired", tally.cc_fired);
        obs.counter_add("executor.cc_skipped", tally.cc_skipped);
        obs.counter_add("executor.noise_injections", tally.noise_applications);
        for (name, n) in &tally.gates {
            obs.counter_add(&format!("executor.gates.{name}"), *n);
        }
        for (name, n) in &tally.faults {
            obs.counter_add(name, *n);
        }
        for (name, h) in &tally.apply_ns {
            obs.metrics()
                .merge_histogram(&format!("executor.apply.{name}_ns"), h);
        }
    }

    /// Runs a single shot, returning the final classical bits.
    ///
    /// Standalone single-shot calls execute as shot 0 of a run, so an
    /// installed [`FaultHook`] sees `shot = 0`.
    pub fn run_shot<R: Rng + ?Sized>(&self, circuit: &Circuit, rng: &mut R) -> Vec<bool> {
        let (classical, _state) = self.run_shot_with_state(circuit, rng);
        classical
    }

    /// Runs a single shot, returning the classical bits and the final
    /// quantum state (useful for inspecting answer qubits that were never
    /// measured).
    ///
    /// With [`NoiseModel::idle`] set, the circuit is executed layer by
    /// layer (ASAP dependency layers) and the idle channel is applied to
    /// every qubit a layer leaves untouched — so deeper circuits decay
    /// more, as on hardware.
    pub fn run_shot_with_state<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        rng: &mut R,
    ) -> (Vec<bool>, StateVector) {
        self.run_shot_with_state_traced(circuit, 0, rng, &mut None, &mut None)
    }

    /// Single-shot execution with an optional tally context and an optional
    /// shot-trace buffer (`None`/`None` on the un-instrumented path: a
    /// per-instruction `Option` branch each is the whole overhead).
    fn run_shot_with_state_traced<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        shot: u64,
        rng: &mut R,
        ctx: &mut Option<TallyCtx<'_>>,
        lt: &mut Option<LocalTrace>,
    ) -> (Vec<bool>, StateVector) {
        match self.run_shot_guarded(circuit, shot, rng, ctx, lt, None, &mut 0) {
            ShotControl::Done(classical, state) => (classical, state),
            // Without a guard a shot always runs to completion.
            ShotControl::Discarded | ShotControl::Abort => unreachable!("unguarded shot"),
        }
    }

    /// Single-shot execution with an optional tally context and an optional
    /// norm-drift guard. With a guard, the squared norm is checked after
    /// every executed instruction (and every idle-noise application) and the
    /// guard's policy decides whether the shot continues, is discarded, or
    /// aborts the run. `renorms` counts the rescues performed under
    /// [`DriftPolicy::Renormalize`].
    #[allow(clippy::too_many_arguments)]
    fn run_shot_guarded<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        shot: u64,
        rng: &mut R,
        ctx: &mut Option<TallyCtx<'_>>,
        lt: &mut Option<LocalTrace>,
        guard: Option<&DriftGuard>,
        renorms: &mut u64,
    ) -> ShotControl {
        if let Some(hook) = &self.fault {
            if let Some(delay) = hook.shot_delay(shot) {
                if let Some(c) = ctx {
                    c.tally.fault(FaultSite::ShotDelay);
                }
                if let Some(t) = lt.as_mut() {
                    t.instant(FaultSite::ShotDelay.counter());
                }
                std::thread::sleep(delay);
            }
            if hook.shot_panic(shot) {
                if let Some(c) = ctx {
                    c.tally.fault(FaultSite::ShotPanic);
                }
                if let Some(t) = lt.as_mut() {
                    t.instant(FaultSite::ShotPanic.counter());
                }
                panic!("qfault: injected panic in shot {shot}");
            }
        }
        let mut state = StateVector::zero_state(circuit.num_qubits());
        let mut classical = vec![false; circuit.num_clbits()];
        if let Some(idle) = &self.noise.idle {
            // Hardware-style schedule: gates as early as possible (ASAP
            // dependency layers), terminal measurements at the very end —
            // so a prepared qubit waiting for readout accumulates decay.
            for layer in scheduled_layers(circuit) {
                if layer.is_empty() {
                    continue;
                }
                let mut touched = vec![false; circuit.num_qubits()];
                for &idx in &layer {
                    let inst = &circuit.instructions()[idx];
                    for q in inst.qubits() {
                        touched[q.index()] = true;
                    }
                    self.execute_instruction(
                        inst,
                        idx,
                        shot,
                        &mut state,
                        &mut classical,
                        rng,
                        ctx,
                        lt,
                    );
                    match check_drift(guard, &mut state, renorms) {
                        DriftAction::Continue => {}
                        DriftAction::Discard => return ShotControl::Discarded,
                        DriftAction::Abort => return ShotControl::Abort,
                    }
                }
                for (q, &t) in touched.iter().enumerate() {
                    if !t {
                        idle.apply_stochastic(&mut state, &[q], rng);
                        if let Some(c) = ctx {
                            c.tally.noise_applications += 1;
                        }
                        match check_drift(guard, &mut state, renorms) {
                            DriftAction::Continue => {}
                            DriftAction::Discard => return ShotControl::Discarded,
                            DriftAction::Abort => return ShotControl::Abort,
                        }
                    }
                }
            }
        } else {
            for (idx, inst) in circuit.iter().enumerate() {
                self.execute_instruction(inst, idx, shot, &mut state, &mut classical, rng, ctx, lt);
                match check_drift(guard, &mut state, renorms) {
                    DriftAction::Continue => {}
                    DriftAction::Discard => return ShotControl::Discarded,
                    DriftAction::Abort => return ShotControl::Abort,
                }
            }
        }
        ShotControl::Done(classical, state)
    }

    /// Executes one instruction under the configured noise. `idx` is the
    /// instruction's index in the circuit (for the mid-circuit-measurement
    /// flags of the tally context and as the fault site); `shot` is the
    /// shot index the fault hook keys its decisions on.
    #[allow(clippy::too_many_arguments)]
    fn execute_instruction<R: Rng + ?Sized>(
        &self,
        inst: &qcir::Instruction,
        idx: usize,
        shot: u64,
        state: &mut StateVector,
        classical: &mut [bool],
        rng: &mut R,
        ctx: &mut Option<TallyCtx<'_>>,
        lt: &mut Option<LocalTrace>,
    ) {
        if let Some(cond) = inst.condition() {
            if let Some(t) = lt.as_mut() {
                t.begin("condition");
            }
            if let Some(hook) = &self.fault {
                let bits = cond.bits();
                match hook.condition_fault(shot, idx, bits.len()) {
                    Some(CcFault::Flip(k)) => {
                        if let Some(b) = bits.get(k) {
                            classical[b.index()] = !classical[b.index()];
                            if let Some(c) = ctx {
                                c.tally.fault(FaultSite::CcFlip);
                            }
                            if let Some(t) = lt.as_mut() {
                                t.instant(FaultSite::CcFlip.counter());
                            }
                        }
                    }
                    Some(CcFault::Lose(k)) => {
                        if let Some(b) = bits.get(k) {
                            classical[b.index()] = false;
                            if let Some(c) = ctx {
                                c.tally.fault(FaultSite::CcLoss);
                            }
                            if let Some(t) = lt.as_mut() {
                                t.instant(FaultSite::CcLoss.counter());
                            }
                        }
                    }
                    None => {}
                }
            }
            let fired = cond.evaluate(classical);
            if let Some(t) = lt.as_mut() {
                t.end();
            }
            if !fired {
                if let Some(c) = ctx {
                    c.tally.cc_skipped += 1;
                }
                return;
            }
            if let Some(c) = ctx {
                c.tally.cc_fired += 1;
            }
        }
        match inst.kind() {
            OpKind::Barrier => {}
            OpKind::Gate(g) => {
                let fate = match &self.fault {
                    Some(hook) => hook.gate_fate(shot, idx),
                    None => GateFate::Execute,
                };
                if fate == GateFate::Drop {
                    if let Some(c) = ctx {
                        c.tally.fault(FaultSite::GateDrop);
                    }
                    if let Some(t) = lt.as_mut() {
                        t.instant(FaultSite::GateDrop.counter());
                    }
                    return;
                }
                let qubits: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
                // Per-gate-kind apply timing: histogram observations only
                // (a span pair per gate would dwarf the trace), taken on
                // the tracer's clock and accumulated into the run tally —
                // so it needs both a trace buffer and a tally context.
                let apply_start = match (lt.as_mut(), &ctx) {
                    (Some(t), Some(_)) => Some(t.now()),
                    _ => None,
                };
                state.apply_gate(g, &qubits);
                if let Some(c) = ctx {
                    *c.tally.gates.entry(g.name()).or_insert(0) += 1;
                }
                if fate == GateFate::Duplicate {
                    state.apply_gate(g, &qubits);
                    if let Some(c) = ctx {
                        *c.tally.gates.entry(g.name()).or_insert(0) += 1;
                        c.tally.fault(FaultSite::GateDup);
                    }
                    if let Some(t) = lt.as_mut() {
                        t.instant(FaultSite::GateDup.counter());
                    }
                }
                if let Some(start) = apply_start {
                    if let (Some(t), Some(c)) = (lt.as_mut(), ctx.as_mut()) {
                        let elapsed = t.now().saturating_sub(start);
                        c.tally
                            .apply_ns
                            .entry(g.name())
                            .or_default()
                            .observe(elapsed);
                    }
                }
                match self.noise.gate_noise(qubits.len()) {
                    Some(GateNoise::Joint(channel)) => {
                        channel.apply_stochastic(state, &qubits, rng);
                        if let Some(c) = ctx {
                            c.tally.noise_applications += 1;
                        }
                    }
                    Some(GateNoise::PerOperand(channel)) => {
                        for &q in &qubits {
                            channel.apply_stochastic(state, &[q], rng);
                            if let Some(c) = ctx {
                                c.tally.noise_applications += 1;
                            }
                        }
                    }
                    None => {}
                }
            }
            OpKind::Measure => {
                if let Some(t) = lt.as_mut() {
                    t.begin("measure");
                }
                let q = inst.qubits()[0].index();
                let mut outcome = state.measure(q, rng);
                if self.noise.readout_flip > 0.0 && rng.gen_bool(self.noise.readout_flip) {
                    outcome = !outcome;
                }
                if let Some(hook) = &self.fault {
                    if hook.measure_flip(shot, idx) {
                        outcome = !outcome;
                        if let Some(c) = ctx {
                            c.tally.fault(FaultSite::MeasFlip);
                        }
                        if let Some(t) = lt.as_mut() {
                            t.instant(FaultSite::MeasFlip.counter());
                        }
                    }
                }
                classical[inst.clbits()[0].index()] = outcome;
                if let Some(c) = ctx {
                    c.tally.measurements += 1;
                    if c.mid_measure.get(idx).copied().unwrap_or(false) {
                        c.tally.mid_measurements += 1;
                    }
                }
                if let Some(t) = lt.as_mut() {
                    t.end();
                }
            }
            OpKind::Reset => {
                if let Some(t) = lt.as_mut() {
                    t.begin("reset");
                }
                let q = inst.qubits()[0].index();
                state.reset(q, rng);
                if self.noise.reset_error > 0.0 && rng.gen_bool(self.noise.reset_error) {
                    state.apply_gate(&qcir::Gate::X, &[q]);
                }
                if let Some(hook) = &self.fault {
                    if hook.reset_leak(shot, idx) {
                        state.apply_gate(&qcir::Gate::X, &[q]);
                        if let Some(c) = ctx {
                            c.tally.fault(FaultSite::ResetLeak);
                        }
                        if let Some(t) = lt.as_mut() {
                            t.instant(FaultSite::ResetLeak.counter());
                        }
                    }
                }
                if let Some(c) = ctx {
                    c.tally.resets += 1;
                }
                if let Some(t) = lt.as_mut() {
                    t.end();
                }
            }
        }
    }
}

/// Hardware-style schedule of a circuit: ASAP dependency layers, with
/// *terminal* measurements (no later operation on their qubit or bit)
/// pinned to the final layer — matching devices, which read out all
/// surviving qubits at the end of the shot. Layers may be empty after the
/// pinning; callers skip those.
fn scheduled_layers(circuit: &Circuit) -> Vec<Vec<usize>> {
    let dag = qcir::DagCircuit::from_circuit(circuit);
    let mut layers = dag.layers();
    if layers.len() < 2 {
        return layers;
    }
    let last = layers.len() - 1;
    let mut pinned: Vec<usize> = Vec::new();
    for layer in &mut layers[..last] {
        layer.retain(|&idx| {
            let inst = &circuit.instructions()[idx];
            let terminal = matches!(inst.kind(), OpKind::Measure) && dag.successors(idx).is_empty();
            if terminal {
                pinned.push(idx);
            }
            !terminal
        });
    }
    layers[last].extend(pinned);
    layers[last].sort_unstable();
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::{Clbit, Condition, Gate, Instruction, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn deterministic_circuit_gives_single_outcome() {
        let mut circ = Circuit::new(2, 2);
        circ.x(q(0)).measure_all();
        let counts = Executor::new().shots(100).seed(1).run(&circ);
        assert_eq!(counts.get("01"), 100);
    }

    #[test]
    fn bitstring_key_is_msb_first() {
        let mut circ = Circuit::new(2, 2);
        circ.x(q(1)).measure_all();
        let counts = Executor::new().shots(10).seed(1).run(&circ);
        // qubit 1 -> clbit 1 -> leftmost character.
        assert_eq!(counts.get("10"), 10);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).measure(q(0), c(0));
        let a = Executor::new().shots(200).seed(42).run(&circ);
        let b = Executor::new().shots(200).seed(42).run(&circ);
        assert_eq!(a, b);
    }

    /// A dynamic circuit exercising every RNG consumer: superposition
    /// measurement, classical control, reset, plus (optionally) noise.
    fn dynamic_test_circuit() -> Circuit {
        let mut circ = Circuit::new(2, 3);
        circ.h(q(0))
            .measure(q(0), c(0))
            .x_if(q(1), c(0))
            .reset(q(0))
            .h(q(0))
            .measure(q(0), c(1))
            .measure(q(1), c(2));
        circ
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        // The tentpole invariant: at a fixed seed, counts AND shot-ordered
        // memory are identical at 1, 2 and 8 threads.
        let circ = dynamic_test_circuit();
        let exec = |threads: usize| Executor::new().shots(257).seed(0xC0FFEE).threads(threads);
        let counts1 = exec(1).run(&circ);
        let memory1 = exec(1).run_memory(&circ);
        for threads in [2, 8] {
            assert_eq!(exec(threads).run(&circ), counts1, "counts @ {threads}");
            assert_eq!(
                exec(threads).run_memory(&circ),
                memory1,
                "memory @ {threads}"
            );
        }
    }

    #[test]
    fn noisy_results_are_bit_identical_across_thread_counts() {
        let circ = dynamic_test_circuit();
        let exec = |threads: usize| {
            Executor::new()
                .shots(200)
                .seed(99)
                .threads(threads)
                .noise(NoiseModel::depolarizing(0.05, 0.1))
        };
        let baseline = exec(1).run_memory(&circ);
        assert_eq!(exec(2).run_memory(&circ), baseline);
        assert_eq!(exec(8).run_memory(&circ), baseline);
    }

    #[test]
    fn observer_counters_are_identical_across_thread_counts() {
        let circ = dynamic_test_circuit();
        let counters = |threads: usize| {
            let obs = qobs::Observer::metrics_only();
            Executor::new()
                .shots(128)
                .seed(7)
                .threads(threads)
                .observer(obs.clone())
                .run(&circ);
            let json = obs.metrics().to_json();
            let start = json.find("\"counters\"").unwrap();
            let end = json.find("\"gauges\"").unwrap();
            json[start..end].to_string()
        };
        let one = counters(1);
        assert_eq!(counters(2), one);
        assert_eq!(counters(8), one);
    }

    #[test]
    fn shorter_runs_are_prefixes_of_longer_runs() {
        // Order independence: shot i depends only on (seed, i, circuit), so
        // a 100-shot run is literally the first 100 shots of a 300-shot run.
        let circ = dynamic_test_circuit();
        let short = Executor::new().shots(100).seed(5).run_memory(&circ);
        let long = Executor::new().shots(300).seed(5).run_memory(&circ);
        assert_eq!(short[..], long[..100]);
    }

    // ---- engines ---------------------------------------------------------

    /// The executor-counter keys the two engines must agree on exactly.
    const ENGINE_COUNTER_KEYS: [&str; 8] = [
        "executor.shots",
        "executor.resets",
        "executor.measurements",
        "executor.mid_circuit_measurements",
        "executor.cc_fired",
        "executor.cc_skipped",
        "executor.noise_injections",
        "executor.gates.x",
    ];

    /// Counts, memory rows and executor counters of one engine at one
    /// thread count.
    type EngineFingerprint = (Counts, Vec<String>, Vec<(String, Option<u64>)>);

    fn engine_fingerprint(
        circ: &Circuit,
        engine: Engine,
        threads: usize,
        noise: &NoiseModel,
    ) -> EngineFingerprint {
        let obs = qobs::Observer::metrics_only();
        let exec = Executor::new()
            .shots(257)
            .seed(0xC0FFEE)
            .threads(threads)
            .noise(noise.clone())
            .observer(obs.clone())
            .engine(engine);
        let counts = exec.run(circ);
        let memory = exec.run_memory(circ);
        let counters = ENGINE_COUNTER_KEYS
            .iter()
            .map(|k| ((*k).to_string(), obs.metrics().counter(k)))
            .collect();
        (counts, memory, counters)
    }

    #[test]
    fn prefix_engine_is_bit_identical_to_per_shot_engine() {
        let circ = dynamic_test_circuit();
        let ideal = NoiseModel::ideal();
        for threads in [1, 2, 8] {
            let shots = engine_fingerprint(&circ, Engine::Shots, threads, &ideal);
            let prefix = engine_fingerprint(&circ, Engine::Prefix, threads, &ideal);
            assert_eq!(shots, prefix, "threads = {threads}");
        }
    }

    #[test]
    fn prefix_engine_matches_with_readout_and_reset_noise() {
        // readout_flip / reset_error are modeled as tree decision nodes,
        // so they stay prefix-eligible — and must stay bit-identical.
        let circ = dynamic_test_circuit();
        let noise = NoiseModel {
            readout_flip: 0.25,
            reset_error: 0.2,
            ..NoiseModel::ideal()
        };
        let exec = Executor::new().shots(400).seed(31).noise(noise.clone());
        assert_eq!(
            exec.clone().engine(Engine::Prefix).resolve_engine(&circ),
            Engine::Prefix,
            "readout/reset noise must not force the per-shot path"
        );
        for threads in [1, 8] {
            let shots = engine_fingerprint(&circ, Engine::Shots, threads, &noise);
            let prefix = engine_fingerprint(&circ, Engine::Prefix, threads, &noise);
            assert_eq!(shots, prefix, "threads = {threads}");
        }
    }

    #[test]
    fn prefix_engine_emits_tree_counters() {
        let obs = qobs::Observer::metrics_only();
        Executor::new()
            .shots(64)
            .seed(1)
            .engine(Engine::Prefix)
            .observer(obs.clone())
            .run(&dynamic_test_circuit());
        let m = obs.metrics();
        assert!(m.counter("prefix.nodes").unwrap_or(0) > 0);
        assert!(m.counter("prefix.leaves").unwrap_or(0) >= 2);
        assert_eq!(m.counter("prefix.shots_replayed"), Some(0));
        // dynamic_test_circuit has no fusable adjacent run of >= 2 gates
        // sharing support, so fusion counters exist but may be zero.
        assert!(m.counter("prefix.fused_blocks").is_some());
    }

    #[test]
    fn engine_resolution_honours_the_fallback_matrix() {
        let circ = dynamic_test_circuit();
        let auto = Executor::new().seed(1);
        assert_eq!(auto.resolve_engine(&circ), Engine::Prefix);
        assert_eq!(
            auto.clone().engine(Engine::Shots).resolve_engine(&circ),
            Engine::Shots
        );
        // Tracer, fault hook, and gate/idle noise each force per-shot.
        assert_eq!(
            auto.clone().tracer(Tracer::test()).resolve_engine(&circ),
            Engine::Shots
        );
        assert_eq!(
            auto.clone()
                .fault_hook(Arc::new(TestHook::default()))
                .resolve_engine(&circ),
            Engine::Shots
        );
        assert_eq!(
            auto.clone()
                .noise(NoiseModel::depolarizing(0.05, 0.1))
                .resolve_engine(&circ),
            Engine::Shots
        );
        assert_eq!(
            auto.clone()
                .noise(NoiseModel::ideal().with_idle_damping(0.1))
                .resolve_engine(&circ),
            Engine::Shots
        );
        // Readout noise alone stays prefix-eligible.
        assert_eq!(
            auto.clone()
                .noise(NoiseModel {
                    readout_flip: 0.1,
                    ..NoiseModel::ideal()
                })
                .resolve_engine(&circ),
            Engine::Prefix
        );
    }

    #[test]
    fn engine_names_round_trip() {
        for engine in [Engine::Shots, Engine::Prefix, Engine::Auto] {
            assert_eq!(Engine::parse(&engine.to_string()), Some(engine));
        }
        assert_eq!(Engine::parse("warp"), None);
    }

    #[test]
    fn prefix_resilient_run_matches_per_shot_resilient_run() {
        let circ = dynamic_test_circuit();
        let exec = |engine: Engine| {
            Executor::new()
                .shots(257)
                .seed(0xFEED)
                .threads(4)
                .engine(engine)
        };
        let (shots_counts, shots_report) = exec(Engine::Shots).run_resilient(&circ);
        let (prefix_counts, prefix_report) = exec(Engine::Prefix).run_resilient(&circ);
        assert_eq!(shots_counts, prefix_counts);
        assert_eq!(shots_report, prefix_report);
        assert_eq!(prefix_report.termination, Termination::Completed);
    }

    #[test]
    fn prefix_resilient_isolates_poisoned_circuits_via_fallback() {
        // Tree construction aborts on the non-finite branch probability, so
        // even a forced prefix engine degrades to the per-shot resilient
        // loop and isolates every panic.
        let (counts, report) = Executor::new()
            .shots(8)
            .seed(1)
            .threads(1)
            .engine(Engine::Prefix)
            .run_resilient(&poisoned_circuit());
        assert!(counts.is_empty());
        assert_eq!(report.failed, 8);
        assert_eq!(report.termination, Termination::Completed);
    }

    #[test]
    fn prefix_engine_with_live_budgets_matches_per_shot_engine() {
        // A cancel token that never fires and a generous deadline must not
        // change results or force the per-shot loop: the prefix path polls
        // them cooperatively and an uninterrupted run stays bit-identical.
        let circ = dynamic_test_circuit();
        let exec = |engine: Engine| {
            Executor::new()
                .shots(257)
                .seed(0xFEED)
                .threads(4)
                .engine(engine)
                .deadline(Duration::from_secs(3600))
                .cancel_token(CancelToken::new())
        };
        assert_eq!(
            exec(Engine::Prefix).resolve_engine(&circ),
            Engine::Prefix,
            "a deadline/cancel budget must not force the per-shot engine"
        );
        let (shots_counts, shots_report) = exec(Engine::Shots).run_resilient(&circ);
        let (prefix_counts, prefix_report) = exec(Engine::Prefix).run_resilient(&circ);
        assert_eq!(shots_counts, prefix_counts);
        assert_eq!(shots_report, prefix_report);
        assert_eq!(prefix_report.termination, Termination::Completed);
    }

    #[test]
    fn prefix_engine_honours_a_pre_cancelled_token() {
        // Regression: the prefix path used to ignore cancellation entirely
        // (tokens forced the per-shot loop); now the tree build polls the
        // token at branch-node granularity and stops before the first shot.
        let token = CancelToken::new();
        token.cancel();
        let (counts, report) = Executor::new()
            .shots(1 << 20)
            .seed(11)
            .threads(1)
            .engine(Engine::Prefix)
            .cancel_token(token)
            .run_resilient(&dynamic_test_circuit());
        assert!(counts.is_empty());
        assert_eq!(report.completed, 0);
        assert_eq!(report.termination, Termination::Cancelled);
    }

    #[test]
    fn prefix_engine_honours_an_expired_deadline() {
        let (counts, report) = Executor::new()
            .shots(1 << 20)
            .seed(11)
            .threads(2)
            .engine(Engine::Prefix)
            .deadline(Duration::ZERO)
            .run_resilient(&dynamic_test_circuit());
        assert!(counts.is_empty());
        assert_eq!(report.completed, 0);
        assert_eq!(report.termination, Termination::Deadline);
    }

    #[test]
    fn prefix_engine_cancels_mid_walk() {
        // Cancel from another thread while the walk is running: the run
        // stops early with partial counts. The per-shot token check makes
        // this deterministic-free-of-livelock, not deterministic in *when*
        // it stops, so only the invariants are asserted.
        let token = CancelToken::new();
        let handle = token.clone();
        let exec = Executor::new()
            .shots(1 << 22)
            .seed(5)
            .threads(2)
            .engine(Engine::Prefix)
            .cancel_token(token);
        let circ = dynamic_test_circuit();
        let (counts, report) = std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                handle.cancel();
            });
            exec.run_resilient(&circ)
        });
        assert_eq!(report.termination, Termination::Cancelled);
        assert!(report.completed < report.requested);
        assert_eq!(counts.total(), report.completed);
    }

    #[test]
    fn heartbeat_ticks_on_both_engines() {
        for engine in [Engine::Shots, Engine::Prefix] {
            let beat = Arc::new(AtomicU64::new(0));
            let (_, report) = Executor::new()
                .shots(64)
                .seed(3)
                .threads(1)
                .engine(engine)
                .heartbeat(Arc::clone(&beat))
                .run_resilient(&dynamic_test_circuit());
            assert_eq!(report.completed, 64);
            assert!(
                beat.load(Ordering::Relaxed) >= 64,
                "{engine}: heartbeat must tick at least once per shot, got {}",
                beat.load(Ordering::Relaxed)
            );
        }
    }

    #[test]
    fn thread_count_exceeding_shots_is_fine() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0)).measure(q(0), c(0));
        let counts = Executor::new().shots(3).seed(1).threads(16).run(&circ);
        assert_eq!(counts.get("1"), 3);
        let none = Executor::new().shots(0).seed(1).threads(4).run(&circ);
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "threads must be at least 1")]
    fn zero_threads_is_rejected() {
        let _ = Executor::new().threads(0);
    }

    #[test]
    fn mid_measure_flags_ignore_barriers_and_find_reuse() {
        // measure; barrier on the same qubit; nothing else -> NOT mid-circuit.
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0)).measure(q(0), c(0));
        circ.push(Instruction::barrier(vec![q(0), q(1)]));
        circ.measure(q(1), c(1));
        let flags = mid_measure_flags(&circ);
        assert_eq!(flags, vec![false, false, false, false]);

        // measure; later gate on the same qubit -> mid-circuit.
        let mut circ2 = Circuit::new(1, 2);
        circ2.measure(q(0), c(0));
        circ2.push(Instruction::barrier(vec![q(0)]));
        circ2.h(q(0)).measure(q(0), c(1));
        let flags2 = mid_measure_flags(&circ2);
        assert_eq!(flags2, vec![true, false, false, false]);

        // Reset counts as reuse; the final measurement does not.
        let mut circ3 = Circuit::new(1, 2);
        circ3.measure(q(0), c(0)).reset(q(0)).measure(q(0), c(1));
        assert_eq!(mid_measure_flags(&circ3), vec![true, false, false]);
    }

    #[test]
    fn trailing_barrier_does_not_inflate_mid_measure_counter() {
        // Regression: the old forward rescan counted a trailing barrier
        // touching the measured qubit as "reuse".
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).measure(q(0), c(0));
        circ.push(Instruction::barrier(vec![q(0)]));
        let obs = qobs::Observer::metrics_only();
        Executor::new()
            .shots(10)
            .seed(3)
            .observer(obs.clone())
            .run(&circ);
        assert_eq!(
            obs.metrics().counter("executor.mid_circuit_measurements"),
            Some(0)
        );
        assert_eq!(obs.metrics().counter("executor.measurements"), Some(10));
    }

    #[test]
    fn superposition_statistics_are_roughly_even() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).measure(q(0), c(0));
        let counts = Executor::new().shots(4000).seed(3).run(&circ);
        let p0 = counts.probability("0");
        assert!((p0 - 0.5).abs() < 0.05, "p0 = {p0}");
    }

    #[test]
    fn classically_controlled_gate_fires_only_on_condition() {
        // Teleport-style: measure a 1, conditionally flip the other qubit.
        let mut circ = Circuit::new(2, 2);
        circ.x(q(0)).measure(q(0), c(0)).x_if(q(1), c(0));
        circ.measure(q(1), c(1));
        let counts = Executor::new().shots(50).seed(4).run(&circ);
        assert_eq!(counts.get("11"), 50);

        let mut circ0 = Circuit::new(2, 2);
        circ0.measure(q(0), c(0)).x_if(q(1), c(0));
        circ0.measure(q(1), c(1));
        let counts0 = Executor::new().shots(50).seed(5).run(&circ0);
        assert_eq!(counts0.get("00"), 50);
    }

    #[test]
    fn register_condition_requires_exact_value() {
        let mut circ = Circuit::new(2, 3);
        circ.x(q(0)).measure(q(0), c(0));
        // c == 0b01 over bits [c0, c1]: true here.
        circ.push(
            Instruction::gate(Gate::X, vec![q(1)])
                .with_condition(Condition::register(vec![c(0), c(1)], 0b01)),
        );
        circ.measure(q(1), c(2));
        let counts = Executor::new().shots(20).seed(6).run(&circ);
        assert_eq!(counts.get("101"), 20);
    }

    #[test]
    fn mid_circuit_measurement_collapses() {
        // Measure |+> then measure again: outcomes must agree.
        let mut circ = Circuit::new(1, 2);
        circ.h(q(0)).measure(q(0), c(0)).measure(q(0), c(1));
        let counts = Executor::new().shots(300).seed(7).run(&circ);
        for (key, _) in counts.iter() {
            let bits: Vec<char> = key.chars().collect();
            assert_eq!(bits[0], bits[1], "outcome {key} not consistent");
        }
    }

    #[test]
    fn reset_reinitializes_for_reuse() {
        // The defining DQC pattern: use, measure, reset, reuse.
        let mut circ = Circuit::new(1, 2);
        circ.x(q(0))
            .measure(q(0), c(0))
            .reset(q(0))
            .measure(q(0), c(1));
        let counts = Executor::new().shots(100).seed(8).run(&circ);
        assert_eq!(counts.get("01"), 100);
    }

    #[test]
    fn readout_error_flips_outcomes() {
        let mut circ = Circuit::new(1, 1);
        circ.measure(q(0), c(0));
        let noisy = Executor::new().shots(2000).seed(9).noise(NoiseModel {
            readout_flip: 0.25,
            ..NoiseModel::ideal()
        });
        let counts = noisy.run(&circ);
        let p1 = counts.probability("1");
        assert!((p1 - 0.25).abs() < 0.04, "p1 = {p1}");
    }

    #[test]
    fn reset_error_leaves_excited_population() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0)).reset(q(0)).measure(q(0), c(0));
        let noisy = Executor::new().shots(2000).seed(10).noise(NoiseModel {
            reset_error: 0.2,
            ..NoiseModel::ideal()
        });
        let p1 = noisy.run(&circ).probability("1");
        assert!((p1 - 0.2).abs() < 0.04, "p1 = {p1}");
    }

    #[test]
    fn depolarizing_noise_degrades_bell_correlations() {
        let mut bell = Circuit::new(2, 2);
        bell.h(q(0)).cx(q(0), q(1)).measure_all();
        let noisy = Executor::new()
            .shots(2000)
            .seed(11)
            .noise(NoiseModel::depolarizing(0.05, 0.1));
        let counts = noisy.run(&bell);
        let bad = counts.probability("01") + counts.probability("10");
        assert!(bad > 0.01, "noise should produce anticorrelated outcomes");
        assert!(bad < 0.5, "noise should not dominate");
    }

    #[test]
    fn idle_noise_decays_waiting_qubits() {
        // q1 is excited then waits while q0 runs a long gate chain; with
        // amplitude-damping idle noise it should decay toward |0>.
        let depth = 30usize;
        let mut circ = Circuit::new(2, 1);
        circ.x(q(1));
        for _ in 0..depth {
            circ.h(q(0));
        }
        circ.measure(q(1), c(0));
        let gamma = 0.05;
        let noisy = Executor::new()
            .shots(3000)
            .seed(17)
            .noise(NoiseModel::ideal().with_idle_damping(gamma));
        let p1 = noisy.run(&circ).probability("1");
        // q1 idles for `depth` layers (the X layer touches it; the final
        // measurement layer too): expected survival ~ (1-gamma)^depth.
        let expect = (1.0 - gamma_f(gamma)).powi(depth as i32 - 1);
        assert!(
            (p1 - expect).abs() < 0.05,
            "survival {p1} vs expected {expect}"
        );
    }

    fn gamma_f(g: f64) -> f64 {
        g
    }

    #[test]
    fn idle_noise_is_noop_for_parallel_circuits() {
        // All qubits busy every layer: idle noise never fires.
        let mut circ = Circuit::new(2, 2);
        for _ in 0..10 {
            circ.h(q(0)).h(q(1));
        }
        circ.measure_all();
        let ideal = Executor::new().shots(500).seed(18).run(&circ);
        let noisy = Executor::new()
            .shots(500)
            .seed(18)
            .noise(NoiseModel::ideal().with_idle_damping(0.5))
            .run(&circ);
        assert_eq!(ideal, noisy);
    }

    #[test]
    fn memory_mode_matches_counts() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).measure(q(0), c(0));
        let exec = Executor::new().shots(500).seed(33);
        let memory = exec.run_memory(&circ);
        assert_eq!(memory.len(), 500);
        let counts = exec.run(&circ);
        let ones = memory.iter().filter(|m| m.as_str() == "1").count() as u64;
        assert_eq!(ones, counts.get("1"));
    }

    #[test]
    fn observer_counts_dynamic_circuit_operations() {
        // The defining DQC shot: gate, mid-circuit measure, conditioned
        // gate, reset, final measure.
        let mut circ = Circuit::new(2, 2);
        circ.x(q(0))
            .measure(q(0), c(0)) // mid-circuit: q0 is reset afterwards
            .x_if(q(1), c(0)) // fires every shot (outcome is 1)
            .reset(q(0))
            .measure(q(1), c(1));
        let obs = qobs::Observer::metrics_only();
        let counts = Executor::new()
            .shots(10)
            .seed(1)
            .observer(obs.clone())
            .run(&circ);
        assert_eq!(counts.total(), 10);
        let m = obs.metrics();
        assert_eq!(m.counter("executor.shots"), Some(10));
        assert_eq!(m.counter("executor.gates.x"), Some(20)); // X + fired X_if
        assert_eq!(m.counter("executor.resets"), Some(10));
        assert_eq!(m.counter("executor.measurements"), Some(20));
        assert_eq!(m.counter("executor.mid_circuit_measurements"), Some(10));
        assert_eq!(m.counter("executor.cc_fired"), Some(10));
        assert_eq!(m.counter("executor.cc_skipped"), Some(0));
        assert_eq!(m.counter("executor.noise_injections"), Some(0));
        assert_eq!(m.gauge("executor.qubits"), Some(2.0));
        assert_eq!(m.histogram("executor.run_ns").unwrap().count, 1);
    }

    #[test]
    fn observer_counts_skipped_conditionals() {
        let mut circ = Circuit::new(2, 2);
        circ.measure(q(0), c(0)).x_if(q(1), c(0)); // outcome 0: never fires
        circ.measure(q(1), c(1));
        let obs = qobs::Observer::metrics_only();
        Executor::new()
            .shots(8)
            .seed(2)
            .observer(obs.clone())
            .run(&circ);
        assert_eq!(obs.metrics().counter("executor.cc_skipped"), Some(8));
        assert_eq!(obs.metrics().counter("executor.cc_fired"), Some(0));
        assert_eq!(obs.metrics().counter("executor.gates.x"), None);
    }

    #[test]
    fn observer_counts_noise_trajectories() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).measure(q(0), c(0));
        let obs = qobs::Observer::metrics_only();
        Executor::new()
            .shots(5)
            .seed(3)
            .noise(NoiseModel::depolarizing(0.1, 0.1))
            .observer(obs.clone())
            .run(&circ);
        // One single-qubit channel application per H gate per shot.
        assert_eq!(obs.metrics().counter("executor.noise_injections"), Some(5));
    }

    #[test]
    fn observer_does_not_change_outcomes() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0)).cx(q(0), q(1)).measure_all();
        let plain = Executor::new().shots(300).seed(21).run(&circ);
        let observed = Executor::new()
            .shots(300)
            .seed(21)
            .observer(qobs::Observer::metrics_only())
            .run(&circ);
        assert_eq!(plain, observed);
    }

    #[test]
    fn observed_metrics_are_deterministic_per_seed() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0))
            .measure(q(0), c(0))
            .x_if(q(1), c(0))
            .measure(q(1), c(1));
        let run = || {
            let obs = qobs::Observer::metrics_only();
            Executor::new()
                .shots(256)
                .seed(99)
                .observer(obs.clone())
                .run(&circ);
            obs.metrics().to_json()
        };
        let (a, b) = (run(), run());
        // Identical counter sections (histograms carry wall-clock times,
        // which legitimately differ between runs).
        let counters = |s: &str| {
            let start = s.find("\"counters\"").unwrap();
            let end = s.find("\"gauges\"").unwrap();
            s[start..end].to_string()
        };
        assert_eq!(counters(&a), counters(&b));
    }

    #[test]
    fn disabled_observer_overhead_is_within_noise() {
        // A disabled observer must take the un-instrumented fast path; we
        // check the median wall-clock of interleaved runs stays within a
        // generous factor (the real overhead is one boolean branch, but CI
        // timers are noisy, so the threshold is deliberately loose).
        let mut circ = Circuit::new(4, 4);
        for _ in 0..8 {
            circ.h(q(0)).cx(q(0), q(1)).cx(q(1), q(2)).cx(q(2), q(3));
        }
        circ.measure_all();
        let time = |observed: bool| {
            let mut ex = Executor::new().shots(200).seed(5);
            if observed {
                ex = ex.observer(qobs::Observer::disabled());
            }
            let start = std::time::Instant::now();
            ex.run(&circ);
            start.elapsed()
        };
        // Warm-up, then interleave to cancel drift.
        time(false);
        time(true);
        let mut plain: Vec<_> = Vec::new();
        let mut disabled: Vec<_> = Vec::new();
        for _ in 0..9 {
            plain.push(time(false));
            disabled.push(time(true));
        }
        plain.sort();
        disabled.sort();
        let (p, d) = (plain[4].as_secs_f64(), disabled[4].as_secs_f64());
        assert!(
            d < p * 2.0,
            "disabled-observer median {d:.6}s vs plain {p:.6}s"
        );
    }

    /// A circuit whose every shot panics: `p(NaN)` poisons the amplitudes,
    /// so the following measurement draws `gen_bool(NaN)`.
    fn poisoned_circuit() -> Circuit {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).p(f64::NAN, q(0)).measure(q(0), c(0));
        circ
    }

    /// A circuit where roughly half the shots panic: the `p(NaN)` gate is
    /// conditioned on a fair-coin measurement, so only the `1` branch is
    /// poisoned.
    fn half_poisoned_circuit() -> Circuit {
        let mut circ = Circuit::new(1, 2);
        circ.h(q(0)).measure(q(0), c(0));
        circ.gate_if(Gate::P(f64::NAN), &[q(0)], Condition::bit(c(0)));
        circ.measure(q(0), c(1));
        circ
    }

    #[test]
    fn resilient_run_matches_plain_run_when_nothing_fails() {
        let circ = dynamic_test_circuit();
        let exec = Executor::new()
            .shots(300)
            .seed(41)
            .noise(NoiseModel::depolarizing(0.02, 0.05));
        let plain = exec.run(&circ);
        let (counts, report) = exec.run_resilient(&circ);
        assert_eq!(counts, plain);
        assert_eq!(report.requested, 300);
        assert_eq!(report.completed, 300);
        assert_eq!(report.failed, 0);
        assert_eq!(report.discarded, 0);
        assert_eq!(report.termination, Termination::Completed);
    }

    #[test]
    fn resilient_counts_are_bit_identical_across_thread_counts() {
        let circ = dynamic_test_circuit();
        let exec = |threads: usize| Executor::new().shots(257).seed(0xFEED).threads(threads);
        let (one, _) = exec(1).run_resilient(&circ);
        let (four, _) = exec(4).run_resilient(&circ);
        assert_eq!(one, four);
    }

    #[test]
    fn panicking_shot_is_isolated_not_fatal() {
        // Every shot of the poisoned circuit panics; the run must survive
        // and account for all of them as failed.
        let (counts, report) = Executor::new()
            .shots(8)
            .seed(1)
            .threads(1)
            .run_resilient(&poisoned_circuit());
        assert!(counts.is_empty());
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 8);
        assert_eq!(report.termination, Termination::Completed);
    }

    #[test]
    fn partial_counts_survive_mixed_failures() {
        // Only the measured-1 branch panics: the measured-0 shots must
        // still be recorded, and completed + failed must cover every shot.
        let shots = 64;
        let (counts, report) = Executor::new()
            .shots(shots)
            .seed(5)
            .run_resilient(&half_poisoned_circuit());
        assert_eq!(report.completed + report.failed, shots);
        assert!(report.completed > 0, "some shots should survive");
        assert!(report.failed > 0, "some shots should fail");
        assert_eq!(counts.total(), report.completed);
        // Every surviving shot measured 0 both times.
        assert_eq!(counts.get("00"), report.completed);
    }

    #[test]
    fn exhausted_failed_shot_budget_returns_partial_counts() {
        // Acceptance criterion: an exhausted budget returns partial counts
        // plus a report instead of panicking.
        let (counts, report) = Executor::new()
            .shots(1000)
            .seed(2)
            .threads(1)
            .max_failed(5)
            .run_resilient(&poisoned_circuit());
        assert_eq!(report.termination, Termination::FailedShotBudget);
        assert_eq!(report.failed, 6, "stops as soon as failed exceeds 5");
        assert!(report.completed + report.failed + report.discarded < 1000);
        assert_eq!(counts.total(), report.completed);
    }

    #[test]
    fn expired_deadline_terminates_before_any_shot() {
        let circ = dynamic_test_circuit();
        let (counts, report) = Executor::new()
            .shots(100)
            .seed(3)
            .deadline(Duration::ZERO)
            .run_resilient(&circ);
        assert!(counts.is_empty());
        assert_eq!(report.completed, 0);
        assert_eq!(report.termination, Termination::Deadline);
    }

    #[test]
    fn drift_guard_discards_nan_shots_before_they_panic() {
        let (counts, report) = Executor::new()
            .shots(16)
            .seed(4)
            .drift_policy(DriftPolicy::DiscardShot)
            .run_resilient(&poisoned_circuit());
        assert!(counts.is_empty());
        assert_eq!(report.discarded, 16);
        assert_eq!(report.failed, 0, "guard fires before the panic");
        assert_eq!(report.termination, Termination::Completed);
    }

    #[test]
    fn drift_abort_policy_stops_the_run() {
        let (_, report) = Executor::new()
            .shots(100)
            .seed(5)
            .threads(1)
            .drift_policy(DriftPolicy::Abort)
            .run_resilient(&poisoned_circuit());
        assert_eq!(report.termination, Termination::Aborted);
        assert_eq!(report.completed + report.failed + report.discarded, 0);
    }

    #[test]
    fn renormalize_policy_rescues_benign_drift_and_discards_nan() {
        // With a negative tolerance every check trips; a healthy state is
        // renormalized (a no-op-sized rescale) and the shot completes.
        let circ = dynamic_test_circuit();
        let exec = Executor::new()
            .shots(50)
            .seed(6)
            .drift_policy(DriftPolicy::Renormalize)
            .drift_tolerance(-1.0);
        let obs = qobs::Observer::metrics_only();
        let (counts, report) = exec.observer(obs.clone()).run_resilient(&circ);
        assert_eq!(report.completed, 50);
        assert_eq!(counts.total(), 50);
        let renorms = obs.metrics().counter("executor.drift_renormalized");
        assert!(renorms.unwrap_or(0) > 0, "renormalizations must be counted");

        // A NaN norm cannot be rescaled: the shot is discarded instead.
        let (_, nan_report) = Executor::new()
            .shots(4)
            .seed(7)
            .drift_policy(DriftPolicy::Renormalize)
            .run_resilient(&poisoned_circuit());
        assert_eq!(nan_report.discarded, 4);
    }

    #[test]
    fn resilient_observer_counters_track_the_report() {
        let obs = qobs::Observer::metrics_only();
        let (_, report) = Executor::new()
            .shots(32)
            .seed(8)
            .observer(obs.clone())
            .run_resilient(&half_poisoned_circuit());
        let m = obs.metrics();
        assert_eq!(m.counter("executor.shots"), Some(report.completed));
        assert_eq!(m.counter("executor.shots_failed"), Some(report.failed));
        assert_eq!(m.counter("executor.shots_discarded"), Some(0));
        assert_eq!(m.histogram("executor.run_resilient_ns").unwrap().count, 1);
    }

    #[test]
    fn toffoli_under_1q_noise_perturbs_every_operand() {
        // Regression for channel_for_arity: arity-3 gates used to silently
        // reuse the 2-qubit channel on a 2-operand subset. They now take
        // the 1-qubit channel independently on each operand.
        let mut circ = Circuit::new(3, 3);
        circ.x(q(0)).x(q(1)).ccx(q(0), q(1), q(2)).measure_all();
        let obs = qobs::Observer::metrics_only();
        let shots = 600;
        let counts = Executor::new()
            .shots(shots)
            .seed(12)
            .noise(NoiseModel::depolarizing(0.25, 0.0))
            .observer(obs.clone())
            .run(&circ);
        // Noise must actually reach the Toffoli: the ideal outcome can no
        // longer be the only one.
        assert!(counts.get("111") < shots, "noise never touched the CCX");
        // Each of the three operands must see errors (keys are MSB-first:
        // position 2 - i holds clbit i).
        for bit in 0..3 {
            let flipped: u64 = counts
                .iter()
                .filter(|(key, _)| key.as_bytes()[2 - bit] == b'0')
                .map(|(_, n)| n)
                .sum();
            assert!(flipped > 0, "operand {bit} never saw an error");
        }
        // Two X gates + per-operand CCX noise = 2 + 3 injections per shot.
        assert_eq!(
            obs.metrics().counter("executor.noise_injections"),
            Some(5 * shots)
        );
    }

    #[test]
    fn toffoli_no_longer_borrows_the_2q_channel() {
        // With only a 2-qubit channel configured, a Toffoli is now
        // noise-free instead of silently noising a 2-operand subset.
        let mut circ = Circuit::new(3, 3);
        circ.x(q(0)).x(q(1)).ccx(q(0), q(1), q(2)).measure_all();
        let counts = Executor::new()
            .shots(200)
            .seed(13)
            .noise(NoiseModel::depolarizing(0.0, 0.5))
            .run(&circ);
        assert_eq!(counts.get("111"), 200);
    }

    #[test]
    fn final_state_is_returned() {
        let mut circ = Circuit::new(2, 1);
        circ.x(q(1)).measure(q(0), c(0));
        let mut rng = StdRng::seed_from_u64(12);
        let (classical, state) = Executor::new().run_shot_with_state(&circ, &mut rng);
        assert_eq!(classical, vec![false]);
        assert!((state.prob_one(1) - 1.0).abs() < 1e-12);
    }

    // ---- fault-injection seam -------------------------------------------

    /// Test hook firing fixed fault kinds unconditionally (or, for panics,
    /// on odd shots only) — a pure function of its configuration, as the
    /// [`FaultHook`] contract requires.
    #[derive(Debug, Default)]
    struct TestHook {
        flip_measures: bool,
        leak_resets: bool,
        drop_gates: bool,
        dup_gates: bool,
        flip_conditions: bool,
        panic_odd_shots: bool,
        delay: Option<Duration>,
    }

    impl FaultHook for TestHook {
        fn shot_panic(&self, shot: u64) -> bool {
            self.panic_odd_shots && shot % 2 == 1
        }
        fn shot_delay(&self, _shot: u64) -> Option<Duration> {
            self.delay
        }
        fn gate_fate(&self, _shot: u64, _site: usize) -> GateFate {
            if self.drop_gates {
                GateFate::Drop
            } else if self.dup_gates {
                GateFate::Duplicate
            } else {
                GateFate::Execute
            }
        }
        fn reset_leak(&self, _shot: u64, _site: usize) -> bool {
            self.leak_resets
        }
        fn measure_flip(&self, _shot: u64, _site: usize) -> bool {
            self.flip_measures
        }
        fn condition_fault(&self, _shot: u64, _site: usize, num_bits: usize) -> Option<CcFault> {
            (self.flip_conditions && num_bits > 0).then_some(CcFault::Flip(0))
        }
    }

    #[test]
    fn noop_hook_is_bit_identical_to_no_hook() {
        // A hook whose every decision is "no fault" must not perturb
        // anything: fault draws never touch the shot's RNG stream.
        let circ = dynamic_test_circuit();
        let exec = Executor::new()
            .shots(200)
            .seed(21)
            .noise(NoiseModel::depolarizing(0.02, 0.05));
        let bare = exec.run_memory(&circ);
        let hooked = exec
            .clone()
            .fault_hook(Arc::new(TestHook::default()))
            .run_memory(&circ);
        assert_eq!(bare, hooked);
    }

    #[test]
    fn measure_flip_fault_flips_the_recorded_bit() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0)).measure(q(0), c(0));
        let hook = TestHook {
            flip_measures: true,
            ..TestHook::default()
        };
        let counts = Executor::new()
            .shots(20)
            .seed(1)
            .fault_hook(Arc::new(hook))
            .run(&circ);
        assert_eq!(counts.get("0"), 20, "every readout flipped 1 -> 0");
    }

    #[test]
    fn reset_leak_fault_leaves_the_qubit_in_one() {
        let mut circ = Circuit::new(1, 1);
        circ.reset(q(0)).measure(q(0), c(0));
        let hook = TestHook {
            leak_resets: true,
            ..TestHook::default()
        };
        let counts = Executor::new()
            .shots(20)
            .seed(2)
            .fault_hook(Arc::new(hook))
            .run(&circ);
        assert_eq!(counts.get("1"), 20, "every reset leaked |1>");
    }

    #[test]
    fn gate_drop_and_duplication_faults() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0)).measure(q(0), c(0));
        let run = |hook: TestHook| {
            Executor::new()
                .shots(10)
                .seed(3)
                .fault_hook(Arc::new(hook))
                .run(&circ)
        };
        let dropped = run(TestHook {
            drop_gates: true,
            ..TestHook::default()
        });
        assert_eq!(dropped.get("0"), 10, "dropped X never fires");
        let duplicated = run(TestHook {
            dup_gates: true,
            ..TestHook::default()
        });
        assert_eq!(duplicated.get("0"), 10, "X twice is the identity");
    }

    #[test]
    fn condition_flip_fault_fires_a_dormant_branch() {
        // c0 is never written, so the conditioned X is dead code — until
        // the injected flip corrupts c0 right before evaluation.
        let mut circ = Circuit::new(1, 2);
        circ.x_if(q(0), c(0)).measure(q(0), c(1));
        let bare = Executor::new().shots(10).seed(4).run(&circ);
        assert_eq!(bare.get("00"), 10);
        let hook = TestHook {
            flip_conditions: true,
            ..TestHook::default()
        };
        let counts = Executor::new()
            .shots(10)
            .seed(4)
            .fault_hook(Arc::new(hook))
            .run(&circ);
        // The corruption lands in the register itself, so c0 reads 1 too.
        assert_eq!(counts.get("11"), 10);
    }

    #[test]
    fn injected_panics_are_isolated_and_counted() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0)).measure(q(0), c(0));
        let obs = qobs::Observer::metrics_only();
        let (counts, report) = Executor::new()
            .shots(10)
            .seed(5)
            .threads(2)
            .observer(obs.clone())
            .fault_hook(Arc::new(TestHook {
                panic_odd_shots: true,
                ..TestHook::default()
            }))
            .run_resilient(&circ);
        assert_eq!(report.completed, 5);
        assert_eq!(report.failed, 5);
        assert_eq!(report.termination, Termination::Completed);
        assert_eq!(counts.get("1"), 5, "even shots complete normally");
        let m = obs.metrics();
        assert_eq!(m.counter("fault.injected.panic"), Some(5));
        assert_eq!(m.counter("fault.caught.panic"), Some(5));
    }

    #[test]
    fn injected_delay_trips_the_deadline() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0)).measure(q(0), c(0));
        let (counts, report) = Executor::new()
            .shots(1000)
            .seed(6)
            .threads(1)
            .deadline(Duration::from_millis(20))
            .fault_hook(Arc::new(TestHook {
                delay: Some(Duration::from_millis(5)),
                ..TestHook::default()
            }))
            .run_resilient(&circ);
        assert_eq!(report.termination, Termination::Deadline);
        assert!(report.completed < 1000, "deadline must cut the run short");
        assert_eq!(
            counts.total(),
            report.completed,
            "partial counts well-formed"
        );
    }

    #[test]
    fn fault_counters_are_bit_identical_across_thread_counts() {
        // Shot-keyed hooks keep the determinism contract: counts AND
        // fault.* counters agree at 1 vs 8 threads.
        let circ = dynamic_test_circuit();
        let run = |threads: usize| {
            let obs = qobs::Observer::metrics_only();
            let (counts, _) = Executor::new()
                .shots(257)
                .seed(0xFA)
                .threads(threads)
                .observer(obs.clone())
                .fault_hook(Arc::new(TestHook {
                    flip_measures: true,
                    panic_odd_shots: true,
                    ..TestHook::default()
                }))
                .run_resilient(&circ);
            // Counters only: the metrics JSON also holds wall-clock span
            // histograms, which legitimately differ run to run.
            let json = obs.metrics().to_json();
            let start = json.find("\"counters\":{").expect("counters section");
            let end = start + json[start..].find('}').expect("closing brace");
            (counts, json[start..=end].to_string())
        };
        let (counts1, json1) = run(1);
        let (counts8, json8) = run(8);
        assert_eq!(counts1, counts8);
        assert!(json1.contains("fault.injected.meas-flip"), "{json1}");
        assert_eq!(json1, json8);
    }

    // ---- tracing --------------------------------------------------------

    #[test]
    fn termination_variants_render_stable_one_liners() {
        assert_eq!(Termination::Completed.to_string(), "completed");
        assert_eq!(Termination::Deadline.to_string(), "deadline");
        assert_eq!(
            Termination::FailedShotBudget.to_string(),
            "failed-shot-budget"
        );
        assert_eq!(Termination::Aborted.to_string(), "aborted");
        assert_eq!(Termination::Cancelled.to_string(), "cancelled");
    }

    #[test]
    fn pre_cancelled_token_stops_before_the_first_shot() {
        let token = CancelToken::new();
        token.cancel();
        let exec = Executor::new()
            .shots(256)
            .seed(3)
            .threads(2)
            .cancel_token(token);
        let (counts, report) = exec.run_resilient(&dynamic_test_circuit());
        assert_eq!(report.termination, Termination::Cancelled);
        assert_eq!(report.completed, 0);
        assert_eq!(counts.total(), 0);
    }

    #[test]
    fn cancelling_mid_run_returns_partial_counts() {
        // A fault hook that stalls every shot keeps the run alive long
        // enough for another thread to cancel it deterministically.
        #[derive(Debug)]
        struct Stall;
        impl crate::fault::FaultHook for Stall {
            fn shot_delay(&self, _shot: u64) -> Option<Duration> {
                Some(Duration::from_millis(5))
            }
        }
        let token = CancelToken::new();
        let handle = token.clone();
        let exec = Executor::new()
            .shots(100_000)
            .seed(5)
            .threads(1)
            .fault_hook(Arc::new(Stall))
            .cancel_token(token);
        let circuit = dynamic_test_circuit();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            handle.cancel();
        });
        let (counts, report) = exec.run_resilient(&circuit);
        waker.join().expect("cancel thread");
        assert_eq!(report.termination, Termination::Cancelled);
        assert!(report.completed < report.requested);
        assert_eq!(counts.total(), report.completed);
    }

    #[test]
    fn uncancelled_token_leaves_results_bit_identical() {
        let circuit = dynamic_test_circuit();
        let plain = Executor::new().shots(512).seed(9).run(&circuit);
        let (with_token, report) = Executor::new()
            .shots(512)
            .seed(9)
            .cancel_token(CancelToken::new())
            .run_resilient(&circuit);
        assert_eq!(report.termination, Termination::Completed);
        assert_eq!(plain, with_token);
    }

    #[test]
    fn run_report_display_is_one_stable_line() {
        let report = RunReport {
            requested: 1024,
            completed: 1000,
            failed: 20,
            discarded: 4,
            termination: Termination::FailedShotBudget,
        };
        let line = report.to_string();
        assert_eq!(
            line,
            "completed 1000/1024 shots (20 failed, 4 discarded): failed-shot-budget"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn tracing_never_perturbs_results() {
        // The tracer must not consume shot RNG streams: traced and
        // untraced runs are bit-identical, noise and all.
        let circ = dynamic_test_circuit();
        let exec = || {
            Executor::new()
                .shots(199)
                .seed(17)
                .noise(NoiseModel::depolarizing(0.02, 0.05))
        };
        let plain = exec().run(&circ);
        let traced = exec().tracer(Tracer::wall()).run(&circ);
        assert_eq!(plain, traced);
        let (resilient, report) = exec().tracer(Tracer::test()).run_resilient(&circ);
        assert_eq!(plain, resilient);
        assert_eq!(report.termination, Termination::Completed);
    }

    #[test]
    fn traced_run_is_byte_identical_across_thread_counts() {
        // The acceptance-criterion property: under the test clock the whole
        // exported Chrome trace — event order and timestamps — is a pure
        // function of (circuit, seed, shots), never of the thread count.
        let circ = dynamic_test_circuit();
        let run = |threads: usize| {
            let tracer = Tracer::test();
            let exec = Executor::new()
                .shots(64)
                .seed(9)
                .threads(threads)
                .observer(qobs::Observer::metrics_only())
                .tracer(tracer.clone());
            let (counts, _) = exec.run_resilient(&circ);
            (counts, tracer.export_chrome())
        };
        let (counts1, json1) = run(1);
        let (counts8, json8) = run(8);
        assert_eq!(counts1, counts8);
        assert_eq!(json1, json8);
        assert!(qobs::json::validate(&json1).is_ok());
        assert!(json1.contains(r#""name":"shot""#), "{json1}");
        assert!(json1.contains(r#""name":"measure""#), "{json1}");
        assert!(json1.contains(r#""name":"executor.run_resilient""#));
        assert!(json1.contains(r#""termination":"completed""#));
    }

    #[test]
    fn trace_surfaces_fault_instants_and_sub_spans() {
        let circ = dynamic_test_circuit();
        let tracer = Tracer::test();
        let _ = Executor::new()
            .shots(4)
            .seed(3)
            .threads(1)
            .tracer(tracer.clone())
            .fault_hook(Arc::new(TestHook {
                flip_measures: true,
                leak_resets: true,
                ..TestHook::default()
            }))
            .run(&circ);
        let events = tracer.events();
        let instants: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Instant { name, .. } => Some(*name),
                _ => None,
            })
            .collect();
        assert!(
            instants.contains(&"fault.injected.meas-flip"),
            "{instants:?}"
        );
        assert!(
            instants.contains(&"fault.injected.reset-leak"),
            "{instants:?}"
        );
        // Sub-spans appear between the owning shot's begin/end pair.
        let begins: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Begin { name, .. } => Some(*name),
                _ => None,
            })
            .collect();
        assert!(begins.contains(&"shot"));
        assert!(begins.contains(&"measure"));
        assert!(begins.contains(&"reset"));
        assert!(begins.contains(&"condition"));
    }

    #[test]
    fn panicking_shot_leaves_balanced_trace_with_marker() {
        let tracer = Tracer::test();
        let (_, report) = Executor::new()
            .shots(8)
            .seed(2)
            .threads(1)
            .tracer(tracer.clone())
            .fault_hook(Arc::new(TestHook {
                panic_odd_shots: true,
                ..TestHook::default()
            }))
            .run_resilient(&poisonless_bell());
        assert_eq!(report.failed, 4);
        let events = tracer.events();
        let begins = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Begin { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::End { .. }))
            .count();
        assert_eq!(begins, ends, "panicking shots still close their spans");
        let panics = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Instant {
                        name: "shot.panic",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(panics, 4);
        // The injected panic is also visible as its fault instant.
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Instant {
                name: "fault.injected.panic",
                ..
            }
        )));
    }

    /// A small measured circuit with no poison, for panic-injection tests.
    fn poisonless_bell() -> Circuit {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0)).cx(q(0), q(1)).measure_all();
        circ
    }

    #[test]
    fn run_end_instant_reports_early_termination() {
        let tracer = Tracer::test();
        let (_, report) = Executor::new()
            .shots(50)
            .seed(5)
            .threads(1)
            .max_failed(0)
            .tracer(tracer.clone())
            .run_resilient(&poisoned_circuit());
        assert_eq!(report.termination, Termination::FailedShotBudget);
        let json = tracer.export_chrome();
        assert!(
            json.contains(r#""termination":"failed-shot-budget""#),
            "{json}"
        );
        assert!(json.contains("budget.failed-shots"), "{json}");
    }

    #[test]
    fn apply_histograms_flush_when_traced_and_observed() {
        let circ = dynamic_test_circuit();
        let obs = qobs::Observer::metrics_only();
        let _ = Executor::new()
            .shots(16)
            .seed(1)
            .observer(obs.clone())
            .tracer(Tracer::test())
            .run(&circ);
        let h = obs
            .metrics()
            .histogram("executor.apply.h_ns")
            .expect("per-gate apply histogram");
        // dynamic_test_circuit applies two H gates per shot.
        assert_eq!(h.count, 32);
        // Without a tracer the histograms are absent (no clock reads on the
        // metrics-only hot path).
        let obs2 = qobs::Observer::metrics_only();
        let _ = Executor::new()
            .shots(16)
            .seed(1)
            .observer(obs2.clone())
            .run(&circ);
        assert!(obs2.metrics().histogram("executor.apply.h_ns").is_none());
    }
}
