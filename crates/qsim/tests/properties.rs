//! Property-based tests for the simulators.

use proptest::prelude::*;
use qcir::{Circuit, Clbit, Gate, Qubit};
use qsim::branch::exact_distribution;
use qsim::density::exact_distribution_noisy;
use qsim::{circuit_unitary, DensityMatrix, KrausChannel, NoiseModel, StateVector};

const NQ: usize = 3;

fn arb_unitary_op() -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let one = (0usize..NQ).prop_flat_map(|q| {
        prop_oneof![
            Just(Gate::H),
            Just(Gate::X),
            Just(Gate::Y),
            Just(Gate::Z),
            Just(Gate::S),
            Just(Gate::T),
            Just(Gate::V),
            Just(Gate::Vdg),
        ]
        .prop_map(move |g| (g, vec![q]))
    });
    let two = (0usize..NQ, 0usize..NQ - 1).prop_flat_map(|(a, b)| {
        let b = if b >= a { b + 1 } else { b };
        prop_oneof![
            Just(Gate::Cx),
            Just(Gate::Cz),
            Just(Gate::Cv),
            Just(Gate::Swap)
        ]
        .prop_map(move |g| (g, vec![a, b]))
    });
    prop_oneof![one, two]
}

/// Ops for dynamic circuits: gates plus measure/reset markers.
#[derive(Debug, Clone)]
enum DynOp {
    Gate(Gate, Vec<usize>),
    Measure(usize, usize),
    Reset(usize),
    CondX(usize, usize),
}

fn arb_dyn_op() -> impl Strategy<Value = DynOp> {
    prop_oneof![
        4 => arb_unitary_op().prop_map(|(g, qs)| DynOp::Gate(g, qs)),
        1 => (0usize..NQ, 0usize..NQ).prop_map(|(q, c)| DynOp::Measure(q, c)),
        1 => (0usize..NQ).prop_map(DynOp::Reset),
        1 => (0usize..NQ, 0usize..NQ).prop_map(|(q, c)| DynOp::CondX(q, c)),
    ]
}

fn build_dynamic(ops: Vec<DynOp>) -> Circuit {
    let mut c = Circuit::new(NQ, NQ);
    for op in ops {
        match op {
            DynOp::Gate(g, qs) => {
                let qubits: Vec<Qubit> = qs.into_iter().map(Qubit::new).collect();
                c.gate(g, &qubits);
            }
            DynOp::Measure(q, cl) => {
                c.measure(Qubit::new(q), Clbit::new(cl));
            }
            DynOp::Reset(q) => {
                c.reset(Qubit::new(q));
            }
            DynOp::CondX(q, cl) => {
                c.x_if(Qubit::new(q), Clbit::new(cl));
            }
        }
    }
    // Terminal measurement so outcomes depend on the whole evolution.
    for q in 0..NQ {
        c.measure(Qubit::new(q), Clbit::new(q));
    }
    c
}

/// Every gate variant, with angles drawn from a small set.
fn arb_any_gate() -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let angle = prop_oneof![
        Just(0.0),
        Just(std::f64::consts::FRAC_PI_4),
        Just(-std::f64::consts::FRAC_PI_2),
        Just(0.3),
        Just(2.7),
    ];
    prop_oneof![
        (0usize..NQ).prop_map(|q| (Gate::I, vec![q])),
        (0usize..NQ).prop_map(|q| (Gate::X, vec![q])),
        (0usize..NQ).prop_map(|q| (Gate::Y, vec![q])),
        (0usize..NQ).prop_map(|q| (Gate::Z, vec![q])),
        (0usize..NQ).prop_map(|q| (Gate::H, vec![q])),
        (0usize..NQ).prop_map(|q| (Gate::S, vec![q])),
        (0usize..NQ).prop_map(|q| (Gate::Sdg, vec![q])),
        (0usize..NQ).prop_map(|q| (Gate::T, vec![q])),
        (0usize..NQ).prop_map(|q| (Gate::Tdg, vec![q])),
        (0usize..NQ).prop_map(|q| (Gate::V, vec![q])),
        (0usize..NQ, angle.clone()).prop_map(|(q, t)| (Gate::P(t), vec![q])),
        (0usize..NQ, angle.clone()).prop_map(|(q, t)| (Gate::Rz(t), vec![q])),
        (0usize..NQ, angle.clone()).prop_map(|(q, t)| (Gate::Rx(t), vec![q])),
        two_qubit_any(angle),
        Just((Gate::Ccx, vec![0, 1, 2])),
        Just((Gate::Ccz, vec![2, 0, 1])),
    ]
}

fn two_qubit_any(
    angle: impl Strategy<Value = f64> + Clone + 'static,
) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    (0usize..NQ, 0usize..NQ - 1, angle).prop_flat_map(|(a, b, t)| {
        let b = if b >= a { b + 1 } else { b };
        prop_oneof![
            Just((Gate::Cx, vec![a, b])),
            Just((Gate::Cz, vec![a, b])),
            Just((Gate::Cp(t), vec![a, b])),
            Just((Gate::Swap, vec![a, b])),
            Just((Gate::Cv, vec![a, b])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The specialized gate paths in `apply_gate` agree amplitude-for-
    /// amplitude with the general matrix path.
    #[test]
    fn fast_gate_paths_match_general_matrix_path(
        prep in proptest::collection::vec(arb_unitary_op(), 0..8),
        (g, qs) in arb_any_gate(),
    ) {
        let mut state = StateVector::zero_state(NQ);
        for (pg, pqs) in prep {
            state.apply_gate(&pg, &pqs);
        }
        let mut fast = state.clone();
        fast.apply_gate(&g, &qs);
        let mut general = state;
        general.apply_matrix(&g.matrix(), &qs);
        prop_assert!(
            fast.approx_eq(&general, 1e-10),
            "fast path of {g} diverges from the matrix path"
        );
    }

    #[test]
    fn unitary_circuits_keep_norm(ops in proptest::collection::vec(arb_unitary_op(), 0..25)) {
        let mut sv = StateVector::zero_state(NQ);
        for (g, qs) in ops {
            sv.apply_gate(&g, &qs);
        }
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn statevector_matches_unitary_matrix(ops in proptest::collection::vec(arb_unitary_op(), 0..12)) {
        let mut circ = Circuit::new(NQ, 0);
        let mut sv = StateVector::zero_state(NQ);
        for (g, qs) in ops {
            let qubits: Vec<Qubit> = qs.iter().copied().map(Qubit::new).collect();
            circ.gate(g.clone(), &qubits);
            sv.apply_gate(&g, &qs);
        }
        let u = circuit_unitary(&circ).unwrap();
        let expect = u.mul_vec(StateVector::zero_state(NQ).amplitudes());
        for (a, b) in sv.amplitudes().iter().zip(expect) {
            prop_assert!(a.approx_eq(b, 1e-9));
        }
    }

    #[test]
    fn density_matches_statevector_for_pure_evolution(
        ops in proptest::collection::vec(arb_unitary_op(), 0..10)
    ) {
        let mut sv = StateVector::zero_state(NQ);
        let mut rho = DensityMatrix::zero_state(NQ);
        for (g, qs) in ops {
            sv.apply_gate(&g, &qs);
            rho.apply_gate(&g, &qs);
        }
        prop_assert!((rho.fidelity_pure(&sv) - 1.0).abs() < 1e-8);
        prop_assert!((rho.purity() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn exact_distribution_is_normalized(ops in proptest::collection::vec(arb_dyn_op(), 0..12)) {
        let circ = build_dynamic(ops);
        let d = exact_distribution(&circ);
        prop_assert!((d.total() - 1.0).abs() < 1e-8, "total = {}", d.total());
    }

    #[test]
    fn density_and_statevector_branching_agree(
        ops in proptest::collection::vec(arb_dyn_op(), 0..8)
    ) {
        let circ = build_dynamic(ops);
        let pure = exact_distribution(&circ);
        let mixed = exact_distribution_noisy(&circ, &NoiseModel::ideal());
        prop_assert!(pure.tvd(&mixed) < 1e-8, "tvd = {}", pure.tvd(&mixed));
    }

    #[test]
    fn sampling_agrees_with_exact_distribution(
        ops in proptest::collection::vec(arb_dyn_op(), 0..6)
    ) {
        let circ = build_dynamic(ops);
        let exact = exact_distribution(&circ);
        let counts = qsim::Executor::new().shots(3000).seed(99).run(&circ);
        let tvd = exact.tvd(&counts.to_distribution());
        prop_assert!(tvd < 0.06, "tvd = {tvd}");
    }

    #[test]
    fn noise_never_breaks_normalization(
        ops in proptest::collection::vec(arb_dyn_op(), 0..8),
        scale in 0.0f64..1.0,
    ) {
        let circ = build_dynamic(ops);
        let d = exact_distribution_noisy(&circ, &NoiseModel::device_like(scale));
        prop_assert!((d.total() - 1.0).abs() < 1e-6, "total = {}", d.total());
    }

    #[test]
    fn depolarizing_moves_toward_uniform(p in 0.0f64..1.0) {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_kraus(&qsim::KrausChannel::depolarizing(p, 1), &[0]);
        let expect = p / 2.0;
        prop_assert!((rho.prob_one(0) - expect).abs() < 1e-9);
    }

    /// Every named channel constructor, over its whole parameter range,
    /// satisfies the CPTP condition `sum K†K = I` — `try_new` revalidates
    /// what the constructor built, so a constructed channel passing back
    /// through `try_new` is the assertion.
    #[test]
    fn every_channel_constructor_is_trace_preserving(
        p in prop_oneof![Just(0.0f64), Just(1.0f64), 0.0f64..1.0],
        arity in 1usize..3,
    ) {
        for ch in [
            KrausChannel::depolarizing(p, arity),
            KrausChannel::bit_flip(p),
            KrausChannel::phase_flip(p),
            KrausChannel::amplitude_damping(p),
            KrausChannel::phase_damping(p),
            KrausChannel::identity(arity),
        ] {
            prop_assert!(
                KrausChannel::try_new(ch.operators().to_vec()).is_ok(),
                "constructor output failed CPTP revalidation"
            );
        }
    }

    /// The zero point of the device profile is exactly the ideal model —
    /// not merely a model with zero-probability channels attached.
    #[test]
    fn device_like_zero_scale_is_exactly_ideal(eps in 0.0f64..1e-12) {
        prop_assert_eq!(NoiseModel::device_like(0.0), NoiseModel::ideal());
        prop_assert_eq!(NoiseModel::device_like(-eps), NoiseModel::ideal());
        prop_assert!(NoiseModel::device_like(0.0).is_ideal());
    }

    /// Stochastic (trajectory) channel application preserves the state
    /// norm: whichever Kraus branch is selected, the state is renormalized.
    #[test]
    fn apply_stochastic_preserves_state_norm(
        prep in proptest::collection::vec(arb_unitary_op(), 0..8),
        p in prop_oneof![Just(0.0f64), Just(1.0f64), 0.0f64..1.0],
        qubit in 0usize..NQ,
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut state = StateVector::zero_state(NQ);
        for (g, qs) in prep {
            state.apply_gate(&g, &qs);
        }
        let other = (qubit + 1) % NQ;
        for ch in [
            KrausChannel::depolarizing(p, 1),
            KrausChannel::bit_flip(p),
            KrausChannel::phase_flip(p),
            KrausChannel::amplitude_damping(p),
            KrausChannel::phase_damping(p),
        ] {
            ch.apply_stochastic(&mut state, &[qubit], &mut rng);
            let n2 = state.norm_sqr();
            prop_assert!((n2 - 1.0).abs() < 1e-9, "norm^2 = {n2} after 1q channel");
        }
        KrausChannel::depolarizing(p, 2).apply_stochastic(&mut state, &[qubit, other], &mut rng);
        let n2 = state.norm_sqr();
        prop_assert!((n2 - 1.0).abs() < 1e-9, "norm^2 = {n2} after 2q channel");
    }

    #[test]
    fn counts_merge_equals_concatenated_recording(
        left in proptest::collection::vec(0u8..4, 0..40),
        right in proptest::collection::vec(0u8..4, 0..40),
    ) {
        let key = |v: u8| format!("{:02b}", v);
        let mut a = qsim::Counts::new();
        for &v in &left {
            a.record(key(v));
        }
        let mut b = qsim::Counts::new();
        for &v in &right {
            b.record(key(v));
        }
        a.merge(b);
        let mut concat = qsim::Counts::new();
        for &v in left.iter().chain(right.iter()) {
            concat.record(key(v));
        }
        prop_assert_eq!(a, concat);
    }

    #[test]
    fn parallel_execution_is_invisible_in_results(
        ops in proptest::collection::vec(arb_dyn_op(), 0..6),
        seed in 0u64..1000,
        threads in 2usize..8,
    ) {
        // Per-shot streams make the thread count unobservable: memory
        // preserves shot order bit-for-bit and the counts are the memory's
        // tally, at every worker count.
        let circ = build_dynamic(ops);
        let exec = |t: usize| qsim::Executor::new().shots(97).seed(seed).threads(t);
        let sequential = exec(1).run_memory(&circ);
        let parallel = exec(threads).run_memory(&circ);
        prop_assert_eq!(&sequential, &parallel);
        let mut from_memory = qsim::Counts::new();
        for outcome in &sequential {
            from_memory.record(outcome.clone());
        }
        prop_assert_eq!(exec(threads).run(&circ), from_memory);
    }

    #[test]
    fn prefix_engine_is_bit_identical_to_per_shot_engine(
        ops in proptest::collection::vec(arb_dyn_op(), 0..6),
        seed in 0u64..1000,
        threads in 1usize..8,
        flip in prop_oneof![Just(0.0), Just(0.25)],
        reset_err in prop_oneof![Just(0.0), Just(0.125)],
    ) {
        // Walking the branch tree must reproduce the per-shot executor's
        // memory rows (and hence counts) bit-for-bit at the same seed, with
        // or without prefix-eligible readout/reset noise.
        let circ = build_dynamic(ops);
        let noise = qsim::NoiseModel {
            readout_flip: flip,
            reset_error: reset_err,
            ..qsim::NoiseModel::ideal()
        };
        let exec = |engine: qsim::Engine| {
            qsim::Executor::new()
                .shots(97)
                .seed(seed)
                .threads(threads)
                .noise(noise.clone())
                .engine(engine)
        };
        let per_shot = exec(qsim::Engine::Shots).run_memory(&circ);
        let prefix = exec(qsim::Engine::Prefix).run_memory(&circ);
        prop_assert_eq!(per_shot, prefix);
    }

    #[test]
    fn prefix_leaf_weights_sum_to_one(
        ops in proptest::collection::vec(arb_dyn_op(), 0..6),
        flip in prop_oneof![Just(0.0), Just(0.3)],
    ) {
        // The branch tree partitions probability space: leaf weights must
        // sum to 1 up to BRANCH_EPS per pruned dust edge.
        let circ = build_dynamic(ops);
        let noise = qsim::NoiseModel {
            readout_flip: flip,
            ..qsim::NoiseModel::ideal()
        };
        let tree = qsim::prefix::PrefixTree::build(&circ, &noise)
            .expect("suite circuits fit the node budget");
        let total = tree.leaf_distribution().total();
        let slack = (tree.num_pruned() as f64 + 1.0) * qsim::prefix::BRANCH_EPS;
        prop_assert!(
            (total - 1.0).abs() <= slack,
            "leaf weights sum to {} (pruned: {})",
            total,
            tree.num_pruned()
        );
    }
}
