//! The [`Observer`] facade: one cheap-to-clone handle bundling an event
//! sink and a metrics registry, threaded through the transform→simulate
//! pipeline.

use crate::metrics::MetricsRegistry;
use crate::sink::{CollectingSink, Event, EventSink, FieldValue, NullSink, SpanRecord};
use std::sync::Arc;
use std::time::Instant;

/// A shared observability handle.
///
/// Cloning is two `Arc` bumps. A disabled observer ([`Observer::disabled`])
/// makes every instrumentation call a branch on a boolean — no timestamps,
/// no allocation, no locking — which is the zero-overhead-when-disabled
/// guarantee the executor's hot path relies on.
#[derive(Clone)]
pub struct Observer {
    sink: Arc<dyn EventSink>,
    metrics: Arc<MetricsRegistry>,
    enabled: bool,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

impl Default for Observer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Observer {
    /// An observer that records nothing ([`NullSink`], empty registry).
    #[must_use]
    pub fn disabled() -> Self {
        Observer {
            sink: Arc::new(NullSink),
            metrics: Arc::new(MetricsRegistry::new()),
            enabled: false,
        }
    }

    /// An enabled observer collecting events and spans in memory.
    #[must_use]
    pub fn collecting() -> Self {
        Self::with_sink(Arc::new(CollectingSink::new()))
    }

    /// An enabled observer with metrics only (events and spans dropped,
    /// but counters/histograms recorded) — the cheapest *enabled* mode.
    #[must_use]
    pub fn metrics_only() -> Self {
        Observer {
            sink: Arc::new(NullSink),
            metrics: Arc::new(MetricsRegistry::new()),
            enabled: true,
        }
    }

    /// An enabled observer with the given sink and a fresh registry.
    #[must_use]
    pub fn with_sink(sink: Arc<dyn EventSink>) -> Self {
        Observer {
            sink,
            metrics: Arc::new(MetricsRegistry::new()),
            enabled: true,
        }
    }

    /// Replaces the metrics registry (for sharing one registry across
    /// several observers).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Whether instrumentation should record anything.
    #[must_use]
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A clonable handle to the metrics registry.
    #[must_use]
    pub fn metrics_arc(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Emits a structured event (no-op when disabled).
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled {
            return;
        }
        self.sink.event(&Event::new(name, fields));
    }

    /// Adds to a counter (no-op when disabled).
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if self.enabled {
            self.metrics.inc_counter(name, delta);
        }
    }

    /// Sets a gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if self.enabled {
            self.metrics.set_gauge(name, value);
        }
    }

    /// Opens a timed span; the returned guard reports to the sink **and**
    /// records the duration into the `<name>_ns` histogram when it closes.
    ///
    /// When disabled the guard holds no timestamp and its drop is a no-op.
    #[must_use = "dropping the guard immediately records a zero-length span"]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            observer: self,
            name,
            start: if self.enabled {
                Some(Instant::now())
            } else {
                None
            },
            fields: Vec::new(),
        }
    }
}

/// RAII guard for a timed region; created by [`Observer::span`].
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard<'a> {
    observer: &'a Observer,
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(String, FieldValue)>,
}

impl SpanGuard<'_> {
    /// Attaches a field reported when the span closes (no-op when the
    /// observer is disabled).
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        if self.start.is_some() {
            self.fields.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let duration = start.elapsed();
        self.observer
            .metrics
            .observe_duration(&format!("{}_ns", self.name), duration);
        self.observer.sink.span(&SpanRecord {
            name: self.name.to_string(),
            duration,
            fields: std::mem::take(&mut self.fields),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectingSink;

    #[test]
    fn disabled_observer_records_nothing() {
        let obs = Observer::disabled();
        obs.counter_add("c", 1);
        obs.gauge_set("g", 1.0);
        obs.event("e", &[]);
        {
            let mut s = obs.span("stage");
            s.field("k", 1u64);
        }
        assert!(obs.metrics().is_empty());
    }

    #[test]
    fn enabled_observer_records_spans_and_metrics() {
        let sink = Arc::new(CollectingSink::new());
        let obs = Observer::with_sink(sink.clone());
        obs.counter_add("c", 2);
        {
            let mut s = obs.span("stage");
            s.field("items", 3u64);
        }
        assert_eq!(obs.metrics().counter("c"), Some(2));
        assert_eq!(sink.span_names(), vec!["stage".to_string()]);
        let h = obs.metrics().histogram("stage_ns").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(
            sink.spans()[0].fields[0],
            ("items".to_string(), FieldValue::U64(3))
        );
    }

    #[test]
    fn shared_registry_aggregates_across_observers() {
        let a = Observer::metrics_only();
        let b = Observer::metrics_only().with_metrics(a.metrics_arc());
        a.counter_add("n", 1);
        b.counter_add("n", 2);
        assert_eq!(a.metrics().counter("n"), Some(3));
    }
}
