//! # qobs — zero-dependency observability for the dqct pipeline
//!
//! `qobs` provides tracing (events + timed spans), metrics (counters,
//! gauges, log-scale histograms) and JSON/text rendering with **no
//! external crate dependencies**, so the workspace builds fully offline.
//!
//! The central type is [`Observer`]: a cheap-to-clone handle bundling an
//! [`EventSink`] and a [`MetricsRegistry`]. Library code accepts an
//! `Observer` and instruments itself with [`Observer::span`],
//! [`Observer::event`] and [`Observer::counter_add`]; when the observer is
//! disabled every one of those calls short-circuits on a boolean — no
//! timestamps, no allocation, no locking. That is the
//! zero-overhead-when-disabled guarantee the simulator hot path relies on.
//!
//! ```
//! use qobs::Observer;
//!
//! let obs = Observer::collecting();
//! obs.counter_add("shots", 16);
//! {
//!     let mut span = obs.span("transform");
//!     span.field("iterations", 3u64);
//! }
//! assert_eq!(obs.metrics().counter("shots"), Some(16));
//! assert_eq!(obs.metrics().histogram("transform_ns").unwrap().count, 1);
//! ```

pub mod json;
pub mod metrics;
pub mod observer;
pub mod sink;
pub mod trace;

pub use metrics::{Histogram, Metric, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use observer::{Observer, SpanGuard};
pub use sink::{CollectingSink, Event, EventSink, FieldValue, FmtSink, NullSink, SpanRecord};
pub use trace::{ClockMode, LocalTrace, TraceEvent, Tracer};
