//! Hand-rolled JSON emission and a minimal validating parser.
//!
//! The workspace is offline (no `serde`), so the observability layer writes
//! its own JSON. [`JsonWriter`] produces compact, valid JSON with correct
//! string escaping; [`validate`] is a small recursive-descent checker used
//! by tests (and the CLI's self-checks) to assert that emitted documents
//! are well-formed without pulling in a parser dependency.

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
///
/// Control characters **and every non-ASCII character** are `\u`-escaped
/// (astral-plane characters as UTF-16 surrogate pairs), so emitted
/// documents are pure ASCII: counter and label keys built from arbitrary
/// fault-site or gate-kind names can never produce invalid or
/// encoding-sensitive JSON, whatever bytes a hostile name carries.
///
/// # Examples
///
/// ```
/// assert_eq!(qobs::json::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
/// assert_eq!(qobs::json::escape("plain"), "plain");
/// assert_eq!(qobs::json::escape("π"), "\\u03c0");
/// assert_eq!(qobs::json::escape("😀"), "\\ud83d\\ude00");
/// ```
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 || !c.is_ascii() => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{unit:04x}");
                }
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; those are
/// emitted as `null`).
#[must_use]
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip representation Rust offers.
        let s = format!("{v}");
        // `{}` on f64 never produces exponent-free integers with a dot for
        // whole numbers; JSON accepts both, so pass through.
        s
    } else {
        "null".to_string()
    }
}

/// An incremental writer for compact JSON documents.
///
/// Tracks nesting and comma placement so call sites stay linear:
///
/// ```
/// use qobs::json::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("name");
/// w.string("carry");
/// w.key("shots");
/// w.uint(1024);
/// w.end_object();
/// let doc = w.finish();
/// assert_eq!(doc, r#"{"name":"carry","shots":1024}"#);
/// assert!(qobs::json::validate(&doc).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Per-depth flag: does the current container already hold an item?
    has_item: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn comma_if_needed(&mut self) {
        if let Some(has) = self.has_item.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) {
        self.comma_if_needed();
        self.out.push('{');
        self.has_item.push(false);
    }

    /// Closes `}`.
    pub fn end_object(&mut self) {
        self.has_item.pop();
        self.out.push('}');
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) {
        self.comma_if_needed();
        self.out.push('[');
        self.has_item.push(false);
    }

    /// Closes `]`.
    pub fn end_array(&mut self) {
        self.has_item.pop();
        self.out.push(']');
    }

    /// Writes an object key; the next value call provides its value.
    pub fn key(&mut self, k: &str) {
        self.comma_if_needed();
        let _ = write!(self.out, "\"{}\":", escape(k));
        // The value that follows must not emit its own comma.
        if let Some(has) = self.has_item.last_mut() {
            *has = false;
        }
    }

    /// Writes a string value.
    pub fn string(&mut self, v: &str) {
        self.comma_if_needed();
        let _ = write!(self.out, "\"{}\"", escape(v));
    }

    /// Writes an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.comma_if_needed();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a signed integer value.
    pub fn int(&mut self, v: i64) {
        self.comma_if_needed();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a float value (`null` for non-finite).
    pub fn float(&mut self, v: f64) {
        self.comma_if_needed();
        let _ = write!(self.out, "{}", number(v));
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.comma_if_needed();
        let _ = write!(self.out, "{v}");
    }

    /// Writes pre-rendered JSON (caller guarantees validity).
    pub fn raw(&mut self, json: &str) {
        self.comma_if_needed();
        self.out.push_str(json);
    }

    /// Returns the document.
    ///
    /// # Panics
    ///
    /// Panics when containers are still open (a structural bug at the call
    /// site).
    #[must_use]
    pub fn finish(self) -> String {
        assert!(
            self.has_item.is_empty(),
            "JsonWriter::finish with {} unclosed container(s)",
            self.has_item.len()
        );
        self.out
    }
}

/// Validates that `s` is one complete, well-formed JSON value.
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the first
/// problem.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {}", *c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {}", *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials_and_controls() {
        assert_eq!(escape(r#"say "hi""#), r#"say \"hi\""#);
        assert_eq!(escape("back\\slash"), "back\\\\slash");
        assert_eq!(escape("tab\there"), "tab\\there");
        assert_eq!(escape("\u{01}"), "\\u0001");
        assert_eq!(escape("unicode: π ✓"), "unicode: \\u03c0 \\u2713");
        // Astral-plane characters become surrogate pairs.
        assert_eq!(escape("😀"), "\\ud83d\\ude00");
        // The output is always pure ASCII.
        assert!(escape("mixé \u{7f} \u{e9}\u{10FFFF}").is_ascii());
    }

    #[test]
    fn hostile_keys_round_trip_through_writer_and_validator() {
        // Keys mixing control bytes, quotes, backslashes, non-ASCII and
        // astral-plane characters — the shapes a fault-site or gate-kind
        // label could smuggle in — must always yield a valid document.
        let hostile = [
            "fault.injected.\u{0}null",
            "gate.\"quoted\"\\slashed",
            "π-rotation ✓",
            "emoji.😀.key",
            "\u{1b}[31mansi\u{1b}[0m",
            "del\u{7f}ete",
        ];
        for key in hostile {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key(key);
            w.string(key);
            w.end_object();
            let doc = w.finish();
            assert!(validate(&doc).is_ok(), "{key}: {doc}");
            assert!(doc.is_ascii(), "{key}: {doc}");
        }
    }

    #[test]
    fn writer_nests_objects_and_arrays() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("list");
        w.begin_array();
        w.uint(1);
        w.uint(2);
        w.begin_object();
        w.key("x");
        w.float(0.5);
        w.end_object();
        w.end_array();
        w.key("flag");
        w.bool(true);
        w.end_object();
        let doc = w.finish();
        assert_eq!(doc, r#"{"list":[1,2,{"x":0.5}],"flag":true}"#);
        assert!(validate(&doc).is_ok());
    }

    #[test]
    fn writer_escapes_keys_and_strings() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("we\"ird\nkey");
        w.string("va\\lue");
        w.end_object();
        let doc = w.finish();
        assert!(validate(&doc).is_ok(), "{doc}");
        assert!(doc.contains("\\\"ird\\nkey"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(1.5), "1.5");
    }

    #[test]
    fn validator_accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            r#"{"a":[1,2,3],"b":{"c":"d\""}}"#,
            "  [ true , false , null ]  ",
        ] {
            assert!(validate(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "[01x]",
        ] {
            assert!(validate(doc).is_err(), "{doc}");
        }
    }
}
