//! Counters, gauges and log-scale timing histograms with hand-rolled JSON
//! and text serialization.

use crate::json::JsonWriter;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// Number of log₂ buckets: bucket `i` (for `i ≥ 1`) holds values `v` with
/// `2^(i-1) ≤ v < 2^i`; bucket 0 holds `v == 0`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Maps a value (e.g. nanoseconds) to its log₂ bucket index.
///
/// # Examples
///
/// ```
/// use qobs::metrics::bucket_index;
/// assert_eq!(bucket_index(0), 0);
/// assert_eq!(bucket_index(1), 1);
/// assert_eq!(bucket_index(2), 2);
/// assert_eq!(bucket_index(3), 2);
/// assert_eq!(bucket_index(4), 3);
/// assert_eq!(bucket_index(u64::MAX), 64);
/// ```
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// A log₂-bucketed histogram (values are u64, conventionally nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket occupancy; see [`bucket_index`].
    pub buckets: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u128,
    /// Minimum observation (`u64::MAX` when empty).
    pub min: u64,
    /// Maximum observation (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean observation, or 0 for an empty histogram.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges `other` into `self` bucket-wise; the result is exactly the
    /// histogram of the union of both observation streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, v) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += v;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic counter.
    Counter(u64),
    /// Last-write-wins value.
    Gauge(f64),
    /// Log-scale distribution.
    Histogram(Histogram),
}

/// A registry of named counters, gauges and histograms.
///
/// Thread-safe (internally locked); instrumented hot paths accumulate into
/// local tallies and flush here once per run, so the lock is never on a
/// per-gate path.
///
/// # Examples
///
/// ```
/// use qobs::MetricsRegistry;
/// use std::time::Duration;
///
/// let m = MetricsRegistry::new();
/// m.inc_counter("executor.shots", 1024);
/// m.set_gauge("verify.tvd", 0.0);
/// m.observe_duration("transform.total_ns", Duration::from_micros(250));
///
/// assert_eq!(m.counter("executor.shots"), Some(1024));
/// let json = m.to_json();
/// assert!(qobs::json::validate(&json).is_ok());
/// assert!(json.contains("\"executor.shots\":1024"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn with_inner<T>(&self, f: impl FnOnce(&mut BTreeMap<String, Metric>) -> T) -> T {
        f(&mut self.inner.lock().expect("metrics lock"))
    }

    /// Adds `delta` to the named counter (creating it at zero).
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn inc_counter(&self, name: &str, delta: u64) {
        self.with_inner(
            |m| match m.entry(name.to_string()).or_insert(Metric::Counter(0)) {
                Metric::Counter(c) => *c += delta,
                other => panic!("metric '{name}' is not a counter: {other:?}"),
            },
        );
    }

    /// Sets the named gauge.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.with_inner(
            |m| match m.entry(name.to_string()).or_insert(Metric::Gauge(0.0)) {
                Metric::Gauge(g) => *g = value,
                other => panic!("metric '{name}' is not a gauge: {other:?}"),
            },
        );
    }

    /// Records a raw value into the named histogram.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn observe(&self, name: &str, value: u64) {
        self.with_inner(|m| {
            match m
                .entry(name.to_string())
                .or_insert_with(|| Metric::Histogram(Histogram::default()))
            {
                Metric::Histogram(h) => h.observe(value),
                other => panic!("metric '{name}' is not a histogram: {other:?}"),
            }
        });
    }

    /// Records a duration (as nanoseconds) into the named histogram.
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.observe(name, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merges a locally accumulated histogram into the named registry
    /// histogram in one lock acquisition — the flush half of the
    /// accumulate-locally, flush-once-per-run pattern the executor's
    /// per-gate apply timing uses.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        self.with_inner(|m| {
            match m
                .entry(name.to_string())
                .or_insert_with(|| Metric::Histogram(Histogram::default()))
            {
                Metric::Histogram(mine) => mine.merge(h),
                other => panic!("metric '{name}' is not a histogram: {other:?}"),
            }
        });
    }

    /// Reads a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.with_inner(|m| match m.get(name) {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        })
    }

    /// Reads a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.with_inner(|m| match m.get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        })
    }

    /// Reads a histogram (cloned).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.with_inner(|m| match m.get(name) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        })
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.with_inner(|m| m.is_empty())
    }

    /// A point-in-time copy of every metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> BTreeMap<String, Metric> {
        self.with_inner(|m| m.clone())
    }

    /// Merges every metric of `other` into `self` (counters add, gauges
    /// overwrite, histograms merge bucket-wise).
    pub fn merge_from(&self, other: &MetricsRegistry) {
        for (name, metric) in other.snapshot() {
            match metric {
                Metric::Counter(c) => self.inc_counter(&name, c),
                Metric::Gauge(g) => self.set_gauge(&name, g),
                Metric::Histogram(h) => self.merge_histogram(&name, &h),
            }
        }
    }

    /// Serializes the registry as a compact JSON object with `counters`,
    /// `gauges` and `histograms` sections (always present, possibly empty).
    #[must_use]
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut w = JsonWriter::new();
        w.begin_object();

        w.key("counters");
        w.begin_object();
        for (name, metric) in &snap {
            if let Metric::Counter(c) = metric {
                w.key(name);
                w.uint(*c);
            }
        }
        w.end_object();

        w.key("gauges");
        w.begin_object();
        for (name, metric) in &snap {
            if let Metric::Gauge(g) = metric {
                w.key(name);
                w.float(*g);
            }
        }
        w.end_object();

        w.key("histograms");
        w.begin_object();
        for (name, metric) in &snap {
            if let Metric::Histogram(h) = metric {
                w.key(name);
                w.begin_object();
                w.key("count");
                w.uint(h.count);
                w.key("sum");
                w.float(h.sum as f64);
                w.key("min");
                w.uint(if h.count == 0 { 0 } else { h.min });
                w.key("max");
                w.uint(h.max);
                w.key("mean");
                w.float(h.mean());
                w.key("buckets");
                w.begin_array();
                for (i, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    w.begin_object();
                    w.key("le");
                    // Upper bound (exclusive) of bucket i: 2^i; bucket 0 is
                    // exactly zero, bucket 64 saturates at u64::MAX.
                    w.uint(if i == 0 {
                        0
                    } else if i == 64 {
                        u64::MAX
                    } else {
                        1u64 << i
                    });
                    w.key("count");
                    w.uint(n);
                    w.end_object();
                }
                w.end_array();
                w.end_object();
            }
        }
        w.end_object();

        w.end_object();
        w.finish()
    }

    /// Human-readable multi-line rendering, sorted by metric name.
    #[must_use]
    pub fn to_text(&self) -> String {
        let snap = self.snapshot();
        if snap.is_empty() {
            return "(no metrics recorded)\n".to_string();
        }
        let mut out = String::new();
        for (name, metric) in &snap {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "counter   {name} = {c}");
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "gauge     {name} = {g}");
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "histogram {name}: count={} mean={:.1} min={} max={}",
                        h.count,
                        h.mean(),
                        if h.count == 0 { 0 } else { h.min },
                        h.max
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_serializes_to_empty_sections() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        let json = m.to_json();
        assert_eq!(json, r#"{"counters":{},"gauges":{},"histograms":{}}"#);
        assert!(crate::json::validate(&json).is_ok());
        assert_eq!(m.to_text(), "(no metrics recorded)\n");
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.inc_counter("a", 2);
        m.inc_counter("a", 3);
        m.set_gauge("g", 1.0);
        m.set_gauge("g", -2.5);
        assert_eq!(m.counter("a"), Some(5));
        assert_eq!(m.gauge("g"), Some(-2.5));
        let json = m.to_json();
        assert!(json.contains(r#""a":5"#), "{json}");
        assert!(json.contains(r#""g":-2.5"#), "{json}");
    }

    #[test]
    fn histogram_bucket_boundaries_are_powers_of_two() {
        // Values on both sides of each boundary land in adjacent buckets.
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 2); // 4..8 -> 4, 7
        assert_eq!(h.buckets[4], 1); // 8
        assert_eq!(h.buckets[10], 1); // 512..1024 -> 1023
        assert_eq!(h.buckets[11], 1); // 1024
        assert_eq!(h.buckets[64], 1); // u64::MAX
        assert_eq!(h.count, 10);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn histogram_json_emits_only_occupied_buckets() {
        let m = MetricsRegistry::new();
        m.observe("lat", 3);
        m.observe("lat", 1000);
        let json = m.to_json();
        assert!(crate::json::validate(&json).is_ok(), "{json}");
        assert!(json.contains(r#"{"le":4,"count":1}"#), "{json}");
        assert!(json.contains(r#"{"le":1024,"count":1}"#), "{json}");
        assert!(json.contains(r#""count":2"#), "{json}");
    }

    #[test]
    fn names_needing_escapes_stay_valid_json() {
        let m = MetricsRegistry::new();
        m.inc_counter("weird\"name\\with\nstuff", 1);
        let json = m.to_json();
        assert!(crate::json::validate(&json).is_ok(), "{json}");
    }

    #[test]
    fn merge_combines_all_kinds() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.inc_counter("c", 1);
        b.inc_counter("c", 2);
        b.set_gauge("g", 7.0);
        a.observe("h", 4);
        b.observe("h", 4);
        a.merge_from(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.gauge("g"), Some(7.0));
        assert_eq!(a.histogram("h").unwrap().count, 2);
    }

    #[test]
    fn merge_histogram_flushes_local_accumulation() {
        let m = MetricsRegistry::new();
        let mut local = Histogram::default();
        local.observe(3);
        local.observe(1000);
        m.merge_histogram("executor.apply.h_ns", &local);
        m.merge_histogram("executor.apply.h_ns", &local);
        let h = m.histogram("executor.apply.h_ns").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 3);
        assert_eq!(h.max, 1000);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let m = MetricsRegistry::new();
        m.set_gauge("x", 1.0);
        m.inc_counter("x", 1);
    }
}
