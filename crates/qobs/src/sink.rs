//! Structured events, spans and the [`EventSink`] trait with its three
//! built-in implementations.

use std::fmt;
use std::io::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// A typed field value attached to events and spans.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A point-in-time structured record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted event name, e.g. `transform.iteration`.
    pub name: String,
    /// Ordered key/value fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Builds an event from a name and field slice.
    #[must_use]
    pub fn new(name: &str, fields: &[(&str, FieldValue)]) -> Self {
        Event {
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        }
    }

    /// Looks up a field by key.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A completed timed region.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Dotted span name, e.g. `pipeline.transform`.
    pub name: String,
    /// Wall-clock duration of the region.
    pub duration: Duration,
    /// Ordered key/value fields attached at close time.
    pub fields: Vec<(String, FieldValue)>,
}

/// Receiver of events and spans.
///
/// Implementations must be cheap when [`EventSink::enabled`] is `false`:
/// instrumented code checks that flag before building any payload, which is
/// the zero-overhead-when-disabled guarantee.
pub trait EventSink: Send + Sync {
    /// Whether this sink wants records at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives an event.
    fn event(&self, event: &Event);

    /// Receives a completed span.
    fn span(&self, span: &SpanRecord);
}

/// A sink that drops everything and reports itself disabled.
///
/// Instrumented code short-circuits on [`EventSink::enabled`], so a
/// `NullSink` run never materializes events, spans or timestamps.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn event(&self, _event: &Event) {}
    fn span(&self, _span: &SpanRecord) {}
}

/// A sink that stores every record in memory, for tests and programmatic
/// inspection.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<Event>>,
    spans: Mutex<Vec<SpanRecord>>,
}

impl CollectingSink {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of collected events.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("collector lock").clone()
    }

    /// Snapshot of collected spans.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("collector lock").clone()
    }

    /// Names of collected spans, in completion order.
    #[must_use]
    pub fn span_names(&self) -> Vec<String> {
        self.spans().into_iter().map(|s| s.name).collect()
    }
}

impl EventSink for CollectingSink {
    fn event(&self, event: &Event) {
        self.events
            .lock()
            .expect("collector lock")
            .push(event.clone());
    }
    fn span(&self, span: &SpanRecord) {
        self.spans
            .lock()
            .expect("collector lock")
            .push(span.clone());
    }
}

/// A human-readable line-per-record sink writing to any `io::Write`.
pub struct FmtSink {
    out: Mutex<Box<dyn std::io::Write + Send>>,
}

impl fmt::Debug for FmtSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FmtSink").finish_non_exhaustive()
    }
}

impl FmtSink {
    /// A sink writing to the given stream.
    #[must_use]
    pub fn new(out: Box<dyn std::io::Write + Send>) -> Self {
        FmtSink {
            out: Mutex::new(out),
        }
    }

    /// A sink writing to standard error.
    #[must_use]
    pub fn stderr() -> Self {
        Self::new(Box::new(std::io::stderr()))
    }

    fn write_line(&self, line: &str) {
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{line}");
        }
    }
}

impl EventSink for FmtSink {
    fn event(&self, event: &Event) {
        let mut line = format!("event {}", event.name);
        for (k, v) in &event.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        self.write_line(&line);
    }

    fn span(&self, span: &SpanRecord) {
        let micros = span.duration.as_nanos() as f64 / 1e3;
        let mut line = format!("span  {} {micros:.1}us", span.name);
        for (k, v) in &span.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        self.write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn collecting_sink_stores_records() {
        let sink = CollectingSink::new();
        sink.event(&Event::new("a.b", &[("k", FieldValue::U64(3))]));
        sink.span(&SpanRecord {
            name: "s".into(),
            duration: Duration::from_micros(5),
            fields: vec![],
        });
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.events()[0].field("k"), Some(&FieldValue::U64(3)));
        assert_eq!(sink.span_names(), vec!["s".to_string()]);
    }

    #[test]
    fn fmt_sink_renders_lines() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(Mutex::new(buf));
        struct SharedWriter(std::sync::Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedWriter {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = FmtSink::new(Box::new(SharedWriter(shared.clone())));
        sink.event(&Event::new("x", &[("n", FieldValue::Str("v".into()))]));
        sink.span(&SpanRecord {
            name: "stage".into(),
            duration: Duration::from_micros(1500),
            fields: vec![("count".into(), FieldValue::U64(2))],
        });
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        assert!(text.contains("event x n=v"), "{text}");
        assert!(text.contains("span  stage 1500.0us count=2"), "{text}");
    }
}
