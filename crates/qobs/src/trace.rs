//! Hierarchical tracing with a monotonic clock seam and deterministic merge.
//!
//! [`Tracer`] is the trace-side sibling of [`crate::Observer`]: a
//! cheap-to-clone handle the executor and pipeline thread through their hot
//! paths. A disabled tracer is `None` behind the handle, so every
//! instrumentation site costs exactly one branch — the same
//! zero-overhead-when-disabled guarantee the metrics layer gives, enforced
//! by the `perf_baseline --check` overhead assertion in CI.
//!
//! # Clock seam
//!
//! Timestamps come from a [`ClockMode`] chosen at construction:
//!
//! * [`Tracer::wall`] — nanoseconds since the tracer's creation, read from a
//!   shared `Instant` anchor. Real profiles use this.
//! * [`Tracer::test`] — a deterministic virtual clock: every local buffer
//!   owns its own tick counter (shot `i` starts at `(i + 1) * 1_000_000`
//!   virtual ns, top-level buffers draw from a shared sequential lane), and
//!   each timestamp request advances it by a fixed step. No wall clock is
//!   ever read, so traces are byte-identical run to run **and thread count
//!   to thread count** — the property the check.sh trace gate pins.
//!
//! # Determinism contract for merged spans
//!
//! Like `Counts::merge`, the trace of a parallel run is assembled from
//! worker-local buffers in shot order: each shot records into its own
//! [`LocalTrace`] (no shared state on the hot path), workers return their
//! buffers per contiguous chunk, and the driver submits them to the shared
//! log in chunk order. Event order in the exported trace is therefore a pure
//! function of `(circuit, seed, shots)` — never of the thread count or of
//! which worker finished first. Under [`Tracer::test`] the timestamps are
//! deterministic too, so the whole exported file is byte-identical.
//!
//! ```
//! use qobs::trace::Tracer;
//!
//! let tracer = Tracer::test();
//! let mut shot = tracer.shot_local(0).expect("enabled");
//! shot.begin("shot");
//! shot.instant("fault.injected.meas-flip");
//! shot.end();
//! tracer.submit(shot.into_events());
//! let json = tracer.export_chrome();
//! assert!(qobs::json::validate(&json).is_ok());
//! assert!(json.contains(r#""ph":"B""#) && json.contains(r#""ph":"i""#));
//! ```

use crate::json::{number, JsonWriter};
use crate::sink::FieldValue;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Virtual-ns gap between consecutive shot lanes under [`Tracer::test`].
const TEST_SHOT_BASE: u64 = 1_000_000;
/// Virtual ns each test-clock timestamp request advances the local clock.
const TEST_STEP: u64 = 1_000;
/// Number of Chrome `tid` lanes shots are spread across (deterministically,
/// by shot index — not by worker thread, which would break byte-identity).
const SHOT_LANES: u64 = 8;
/// The Chrome `tid` of the top-level lane (pipeline phases, run spans).
pub const TOP_TID: u32 = 0;

/// Where timestamps come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Monotonic wall clock, anchored at tracer creation.
    Wall,
    /// Deterministic virtual ticks (see the module docs).
    Test,
}

/// One recorded trace event. Names are `&'static str` so the recording hot
/// path never allocates for the common case.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A span opened at `ts` (virtual or wall ns) on lane `tid`.
    Begin {
        /// Span name.
        name: &'static str,
        /// Timestamp in ns.
        ts: u64,
        /// Chrome lane.
        tid: u32,
    },
    /// The innermost open span on lane `tid` closed at `ts`.
    End {
        /// Span name (matches the `Begin` it closes).
        name: &'static str,
        /// Timestamp in ns.
        ts: u64,
        /// Chrome lane.
        tid: u32,
    },
    /// A point-in-time marker with optional arguments.
    Instant {
        /// Event name.
        name: &'static str,
        /// Timestamp in ns.
        ts: u64,
        /// Chrome lane.
        tid: u32,
        /// Key/value arguments rendered into the Chrome `args` object.
        args: Vec<(&'static str, FieldValue)>,
    },
}

impl TraceEvent {
    fn ts(&self) -> u64 {
        match self {
            TraceEvent::Begin { ts, .. }
            | TraceEvent::End { ts, .. }
            | TraceEvent::Instant { ts, .. } => *ts,
        }
    }

    fn tid(&self) -> u32 {
        match self {
            TraceEvent::Begin { tid, .. }
            | TraceEvent::End { tid, .. }
            | TraceEvent::Instant { tid, .. } => *tid,
        }
    }
}

#[derive(Debug)]
struct TraceShared {
    mode: ClockMode,
    anchor: Instant,
    /// Sequential tick allocator for top-level lanes under the test clock.
    top_next: AtomicU64,
    log: Mutex<Vec<TraceEvent>>,
}

/// A cheap-to-clone tracing handle; `None` inside means disabled and every
/// call short-circuits on that single branch.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<TraceShared>>,
}

impl Tracer {
    /// A tracer that records nothing; every instrumentation site costs one
    /// branch on an `Option` discriminant.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer { shared: None }
    }

    /// An enabled tracer timestamping from the monotonic wall clock.
    #[must_use]
    pub fn wall() -> Self {
        Self::enabled(ClockMode::Wall)
    }

    /// An enabled tracer on the deterministic virtual clock (see the module
    /// docs); traces are byte-identical across runs and thread counts.
    #[must_use]
    pub fn test() -> Self {
        Self::enabled(ClockMode::Test)
    }

    /// An enabled tracer with the given clock mode.
    #[must_use]
    pub fn enabled(mode: ClockMode) -> Self {
        Tracer {
            shared: Some(Arc::new(TraceShared {
                mode,
                anchor: Instant::now(),
                top_next: AtomicU64::new(0),
                log: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this tracer records anything.
    #[must_use]
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The clock mode, or `None` when disabled.
    #[must_use]
    pub fn mode(&self) -> Option<ClockMode> {
        self.shared.as_ref().map(|s| s.mode)
    }

    /// A local buffer for shot `shot`, or `None` when disabled.
    ///
    /// The shot's lane and (under the test clock) its timestamp base are
    /// pure functions of the shot index, so the recorded events never depend
    /// on which worker thread ran the shot.
    #[must_use]
    #[inline]
    pub fn shot_local(&self, shot: u64) -> Option<LocalTrace> {
        let shared = self.shared.as_ref()?;
        let tid = 1 + (shot % SHOT_LANES) as u32;
        let clock = match shared.mode {
            ClockMode::Wall => LocalClock::Wall {
                anchor: shared.anchor,
            },
            ClockMode::Test => LocalClock::Test {
                next: (shot + 1) * TEST_SHOT_BASE,
            },
        };
        Some(LocalTrace::new(clock, tid))
    }

    /// A local buffer on the top-level lane (pipeline phases, run spans), or
    /// `None` when disabled. Test-clock timestamps draw from a shared
    /// sequential lane; top-level instrumentation runs on one thread, so the
    /// allocation order — and hence the trace — stays deterministic.
    #[must_use]
    pub fn top_local(&self) -> Option<LocalTrace> {
        let shared = self.shared.as_ref()?;
        let clock = match shared.mode {
            ClockMode::Wall => LocalClock::Wall {
                anchor: shared.anchor,
            },
            ClockMode::Test => LocalClock::Shared {
                next: Arc::clone(shared),
            },
        };
        Some(LocalTrace::new(clock, TOP_TID))
    }

    /// Appends a batch of events to the shared log. Drivers call this in
    /// shot/chunk order, which is what makes the merged trace deterministic.
    pub fn submit(&self, events: Vec<TraceEvent>) {
        if events.is_empty() {
            return;
        }
        if let Some(shared) = &self.shared {
            shared.log.lock().expect("trace log lock").extend(events);
        }
    }

    /// A snapshot of every submitted event, in submission order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.shared {
            Some(shared) => shared.log.lock().expect("trace log lock").clone(),
            None => Vec::new(),
        }
    }

    /// Exports the submitted events as Chrome trace-event JSON
    /// (array-of-events form, loadable in `chrome://tracing` and Perfetto).
    #[must_use]
    pub fn export_chrome(&self) -> String {
        export_chrome(&self.events())
    }

    /// A compact text summary of the submitted events (see [`summary`]).
    #[must_use]
    pub fn summary(&self, top_n: usize) -> String {
        summary(&self.events(), top_n)
    }
}

#[derive(Debug)]
enum LocalClock {
    Wall { anchor: Instant },
    Test { next: u64 },
    Shared { next: Arc<TraceShared> },
}

impl LocalClock {
    fn now(&mut self) -> u64 {
        match self {
            LocalClock::Wall { anchor } => {
                u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            LocalClock::Test { next } => {
                let t = *next;
                *next += TEST_STEP;
                t
            }
            LocalClock::Shared { next } => next.top_next.fetch_add(TEST_STEP, Ordering::Relaxed),
        }
    }
}

/// A thread-local (more precisely: owner-local) span buffer.
///
/// Records begin/end spans and instant events with no locking and no shared
/// state; the owner hands the finished buffer to [`Tracer::submit`] (or
/// lets the driver do so) in deterministic order.
#[derive(Debug)]
pub struct LocalTrace {
    clock: LocalClock,
    tid: u32,
    events: Vec<TraceEvent>,
    open: Vec<&'static str>,
}

impl LocalTrace {
    fn new(clock: LocalClock, tid: u32) -> Self {
        LocalTrace {
            clock,
            tid,
            events: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Reads the local clock (virtual or wall ns). Exposed so callers can
    /// time regions into histograms without emitting span events.
    #[inline]
    pub fn now(&mut self) -> u64 {
        self.clock.now()
    }

    /// Opens a span.
    #[inline]
    pub fn begin(&mut self, name: &'static str) {
        let ts = self.clock.now();
        self.open.push(name);
        self.events.push(TraceEvent::Begin {
            name,
            ts,
            tid: self.tid,
        });
    }

    /// Closes the innermost open span; a no-op when none is open.
    #[inline]
    pub fn end(&mut self) {
        if let Some(name) = self.open.pop() {
            let ts = self.clock.now();
            self.events.push(TraceEvent::End {
                name,
                ts,
                tid: self.tid,
            });
        }
    }

    /// Records an instant event with no arguments.
    #[inline]
    pub fn instant(&mut self, name: &'static str) {
        self.instant_with(name, Vec::new());
    }

    /// Records an instant event carrying arguments.
    pub fn instant_with(&mut self, name: &'static str, args: Vec<(&'static str, FieldValue)>) {
        let ts = self.clock.now();
        self.events.push(TraceEvent::Instant {
            name,
            ts,
            tid: self.tid,
            args,
        });
    }

    /// Closes every span still open and records `marker` — the unwind path:
    /// a panicking shot still produces a balanced trace with the panic
    /// visible as an instant on its span.
    pub fn abort_open(&mut self, marker: &'static str) {
        while !self.open.is_empty() {
            self.end();
        }
        self.instant(marker);
    }

    /// Number of spans currently open.
    #[must_use]
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }

    /// Consumes the buffer, returning its events for [`Tracer::submit`].
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

/// Renders events as Chrome trace-event JSON (the array-of-events form).
///
/// Timestamps are converted from ns to the format's microseconds; under the
/// test clock they are whole µs, so the rendering is exact and stable.
#[must_use]
pub fn export_chrome(events: &[TraceEvent]) -> String {
    let mut w = JsonWriter::new();
    w.begin_array();
    for e in events {
        w.begin_object();
        let (name, ph) = match e {
            TraceEvent::Begin { name, .. } => (*name, "B"),
            TraceEvent::End { name, .. } => (*name, "E"),
            TraceEvent::Instant { name, .. } => (*name, "i"),
        };
        w.key("name");
        w.string(name);
        w.key("cat");
        w.string("dqct");
        w.key("ph");
        w.string(ph);
        w.key("ts");
        w.raw(&number(e.ts() as f64 / 1_000.0));
        w.key("pid");
        w.uint(1);
        w.key("tid");
        w.uint(u64::from(e.tid()));
        if let TraceEvent::Instant { args, .. } = e {
            w.key("s");
            w.string("t");
            if !args.is_empty() {
                w.key("args");
                w.begin_object();
                for (k, v) in args {
                    w.key(k);
                    match v {
                        FieldValue::U64(v) => w.uint(*v),
                        FieldValue::I64(v) => w.int(*v),
                        FieldValue::F64(v) => w.float(*v),
                        FieldValue::Bool(v) => w.bool(*v),
                        FieldValue::Str(v) => w.string(v),
                    }
                }
                w.end_object();
            }
        }
        w.end_object();
    }
    w.end_array();
    w.finish()
}

/// Per-span-name aggregate used by [`summary`].
#[derive(Debug, Default, Clone, Copy)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

/// A compact text summary: the top `top_n` span names by total time, with
/// call counts and self time (total minus time spent in nested spans), plus
/// instant-event counts. Works on both clock modes; under the test clock
/// the "times" are virtual ticks, which still rank nesting structure.
#[must_use]
pub fn summary(events: &[TraceEvent], top_n: usize) -> String {
    let mut stats: BTreeMap<&'static str, SpanStat> = BTreeMap::new();
    let mut instants: BTreeMap<&'static str, u64> = BTreeMap::new();
    // Per-lane stacks of (name, begin_ts, child_ns).
    let mut stacks: BTreeMap<u32, Vec<(&'static str, u64, u64)>> = BTreeMap::new();
    for e in events {
        let stack = stacks.entry(e.tid()).or_default();
        match e {
            TraceEvent::Begin { name, ts, .. } => stack.push((name, *ts, 0)),
            TraceEvent::End { ts, .. } => {
                if let Some((name, begin, child_ns)) = stack.pop() {
                    let dur = ts.saturating_sub(begin);
                    let stat = stats.entry(name).or_default();
                    stat.count += 1;
                    stat.total_ns += dur;
                    stat.self_ns += dur.saturating_sub(child_ns);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += dur;
                    }
                }
            }
            TraceEvent::Instant { name, .. } => *instants.entry(name).or_default() += 1,
        }
    }

    let mut rows: Vec<(&'static str, SpanStat)> = stats.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    rows.truncate(top_n);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>10} {:>14} {:>14}",
        "span", "count", "total_us", "self_us"
    );
    for (name, s) in &rows {
        let _ = writeln!(
            out,
            "{:<40} {:>10} {:>14.1} {:>14.1}",
            name,
            s.count,
            s.total_ns as f64 / 1e3,
            s.self_ns as f64 / 1e3
        );
    }
    if !instants.is_empty() {
        let _ = writeln!(out, "instants:");
        for (name, n) in &instants {
            let _ = writeln!(out, "  {name} x{n}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn disabled_tracer_hands_out_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(t.shot_local(3).is_none());
        assert!(t.top_local().is_none());
        assert_eq!(t.export_chrome(), "[]");
        t.submit(vec![]); // harmless
        assert!(t.events().is_empty());
    }

    #[test]
    fn test_clock_is_a_pure_function_of_the_shot_index() {
        let record = |tracer: &Tracer, shot: u64| {
            let mut lt = tracer.shot_local(shot).expect("enabled");
            lt.begin("shot");
            lt.begin("measure");
            lt.end();
            lt.instant("fault.injected.meas-flip");
            lt.end();
            lt.into_events()
        };
        let a = Tracer::test();
        let b = Tracer::test();
        // Record shots in opposite orders; per-shot buffers must not care.
        let (a0, a1) = (record(&a, 0), record(&a, 1));
        let (b1, b0) = (record(&b, 1), record(&b, 0));
        assert_eq!(a0, b0);
        assert_eq!(a1, b1);
        // Shot 1's lane and base differ from shot 0's.
        assert_eq!(a0[0].ts(), TEST_SHOT_BASE);
        assert_eq!(a1[0].ts(), 2 * TEST_SHOT_BASE);
        assert_eq!(a0[0].tid(), 1);
        assert_eq!(a1[0].tid(), 2);
    }

    #[test]
    fn chrome_export_is_valid_and_carries_args() {
        let t = Tracer::test();
        let mut top = t.top_local().expect("enabled");
        top.begin("pipeline.run");
        top.instant_with(
            "run.end",
            vec![
                ("termination", FieldValue::Str("completed".into())),
                ("completed", FieldValue::U64(16)),
            ],
        );
        top.end();
        t.submit(top.into_events());
        let json = t.export_chrome();
        assert!(validate(&json).is_ok(), "{json}");
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains(r#""ph":"B""#), "{json}");
        assert!(json.contains(r#""ph":"E""#), "{json}");
        assert!(json.contains(r#""ph":"i""#), "{json}");
        assert!(json.contains(r#""termination":"completed""#), "{json}");
        assert!(json.contains(r#""completed":16"#), "{json}");
    }

    #[test]
    fn abort_open_balances_and_marks() {
        let t = Tracer::test();
        let mut lt = t.shot_local(5).expect("enabled");
        lt.begin("shot");
        lt.begin("measure");
        assert_eq!(lt.open_depth(), 2);
        lt.abort_open("shot.panic");
        assert_eq!(lt.open_depth(), 0);
        let events = lt.into_events();
        let begins = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Begin { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::End { .. }))
            .count();
        assert_eq!(begins, ends);
        assert!(matches!(
            events.last(),
            Some(TraceEvent::Instant {
                name: "shot.panic",
                ..
            })
        ));
    }

    #[test]
    fn summary_computes_total_and_self_time() {
        let t = Tracer::test();
        let mut lt = t.shot_local(0).expect("enabled");
        lt.begin("shot"); // ts 1_000_000
        lt.begin("measure"); // ts 1_001_000
        lt.end(); // ts 1_002_000 -> measure total 1000
        lt.end(); // ts 1_003_000 -> shot total 3000, self 2000
        t.submit(lt.into_events());
        let text = t.summary(10);
        let shot_line = text
            .lines()
            .find(|l| l.starts_with("shot"))
            .expect("shot row");
        assert!(shot_line.contains("3.0"), "{text}");
        assert!(shot_line.contains("2.0"), "{text}");
        let measure_line = text
            .lines()
            .find(|l| l.starts_with("measure"))
            .expect("measure row");
        assert!(measure_line.contains("1.0"), "{text}");
    }

    #[test]
    fn wall_clock_timestamps_are_monotonic() {
        let t = Tracer::wall();
        let mut lt = t.shot_local(0).expect("enabled");
        let a = lt.now();
        let b = lt.now();
        assert!(b >= a);
    }

    #[test]
    fn top_lane_allocates_sequential_ticks() {
        let t = Tracer::test();
        let mut one = t.top_local().expect("enabled");
        one.begin("a");
        one.end();
        t.submit(one.into_events());
        let mut two = t.top_local().expect("enabled");
        two.begin("b");
        two.end();
        t.submit(two.into_events());
        let events = t.events();
        assert_eq!(events.len(), 4);
        let ts: Vec<u64> = events.iter().map(TraceEvent::ts).collect();
        assert_eq!(ts, vec![0, 1_000, 2_000, 3_000]);
        assert!(events.iter().all(|e| e.tid() == TOP_TID));
    }
}
