//! Chaos harness: differential tests proving each mitigation protocol
//! actually counters the fault class it was designed for.
//!
//! Every test runs the same circuit twice under the same deterministic
//! [`FaultPlan`] — once bare, once hardened by a mitigation pass — and
//! asserts the hardened run recovers the ideal distribution where the bare
//! run degrades. Seeds and rates are fixed, so the margins are stable.

use dqc::{mitigate, MitigationOptions, ReadoutCalibration};
use qcir::{Circuit, Clbit, Qubit};
use qfault::{FaultPlan, FaultSite};
use qsim::{Counts, Executor, FaultHook};
use std::sync::Arc;

fn q(i: usize) -> Qubit {
    Qubit::new(i)
}

fn c(i: usize) -> Clbit {
    Clbit::new(i)
}

const SHOTS: u64 = 2000;

fn run(circuit: &Circuit, plan: &FaultPlan) -> Counts {
    let hook: Arc<dyn FaultHook> = Arc::new(plan.clone());
    Executor::new()
        .shots(SHOTS)
        .seed(23)
        .fault_hook(hook)
        .run(circuit)
}

fn p(counts: &Counts, key: &str) -> f64 {
    counts.get(key) as f64 / counts.total().max(1) as f64
}

#[test]
fn reset_verify_counters_injected_reset_leaks() {
    // x; measure -> c0; reset; measure -> c1. Ideally c0=1, c1=0 ("01").
    // A leaked reset leaves |1>, so the second readout reports "11".
    let mut circ = Circuit::new(1, 2);
    circ.x(q(0))
        .measure(q(0), c(0))
        .reset(q(0))
        .measure(q(0), c(1));
    let plan = FaultPlan::new(3).with_rate(FaultSite::ResetLeak, 0.4);

    let bare = run(&circ, &plan);
    assert!(
        p(&bare, "11") > 0.3,
        "reset leaks must corrupt the bare run: {bare:?}"
    );

    let hardened = mitigate(
        &circ,
        &MitigationOptions {
            reset_verify: Some(1),
            ..MitigationOptions::none()
        },
    );
    let resolved = hardened.resolve(&run(hardened.circuit(), &plan));
    assert!(
        resolved.reset_verify_fired > 0,
        "verification rounds must catch leaked resets"
    );
    assert!(
        p(&resolved.counts, "11") < 0.05,
        "verified resets must recover the ideal readout: {:?}",
        resolved.counts
    );
    assert!(p(&resolved.counts, "01") > 0.9, "{:?}", resolved.counts);
}

#[test]
fn meas_repeat_counters_injected_measurement_flips() {
    // x; measure -> c0. Ideally "1"; a flipped readout reports "0".
    let mut circ = Circuit::new(1, 1);
    circ.x(q(0)).measure(q(0), c(0));
    let plan = FaultPlan::new(5).with_rate(FaultSite::MeasFlip, 0.2);

    let bare = run(&circ, &plan);
    let bare_err = p(&bare, "0");
    assert!(bare_err > 0.15, "flips must corrupt the bare run: {bare:?}");

    // Three independent readings: each ballot is a distinct instruction, so
    // its flip draw is independent, and the majority error drops to
    // 3p^2(1-p) + p^3 ~ 0.104 for p = 0.2.
    let hardened = mitigate(
        &circ,
        &MitigationOptions {
            meas_repeat: Some(3),
            ..MitigationOptions::none()
        },
    );
    let resolved = hardened.resolve(&run(hardened.circuit(), &plan));
    assert!(resolved.votes_flipped > 0, "majority votes must overturn");
    let mitigated_err = p(&resolved.counts, "0");
    assert!(
        mitigated_err < bare_err - 0.03,
        "majority vote must beat the single reading: {mitigated_err} vs {bare_err}"
    );
}

#[test]
fn voted_conditions_counter_injected_classical_corruption() {
    // x; measure -> c0; x q1 if c0; measure q1 -> c1. Ideally "11".
    // cc-flip at rate 1.0 corrupts one condition bit in *every* shot: the
    // bare single-bit condition always misfires; a 3-ballot vote group
    // shrugs off any single corrupted ballot.
    let mut circ = Circuit::new(2, 2);
    circ.x(q(0))
        .measure(q(0), c(0))
        .x_if(q(1), c(0))
        .measure(q(1), c(1));
    let plan = FaultPlan::new(11).with_rate(FaultSite::CcFlip, 1.0);

    let bare = run(&circ, &plan);
    assert!(
        p(&bare, "11") < 0.05,
        "certain corruption must break the bare conditioned gate: {bare:?}"
    );

    let hardened = mitigate(
        &circ,
        &MitigationOptions {
            meas_repeat: Some(3),
            ..MitigationOptions::none()
        },
    );
    let resolved = hardened.resolve(&run(hardened.circuit(), &plan));
    assert!(
        p(&resolved.counts, "11") > 0.95,
        "a voted condition must absorb one corrupted ballot: {:?}",
        resolved.counts
    );
}

#[test]
fn readout_calibration_counters_injected_symmetric_flips() {
    // x; measure -> c0 under a 25% injected flip: observed p("1") ~ 0.75.
    // Inverting the matching symmetric confusion matrix restores ~1.0.
    let mut circ = Circuit::new(1, 1);
    circ.x(q(0)).measure(q(0), c(0));
    let plan = FaultPlan::new(17).with_rate(FaultSite::MeasFlip, 0.25);

    let bare = run(&circ, &plan);
    let bare_p1 = p(&bare, "1");
    assert!((0.65..0.85).contains(&bare_p1), "{bare:?}");

    let cal = ReadoutCalibration::from_error_rates(vec![0.25], vec![0.25])
        .expect("symmetric 25% confusion is well-conditioned");
    let corrected = cal.correct(&bare).expect("inversion succeeds");
    assert!(
        corrected.get("1") > 0.95,
        "calibration must recover the ideal readout: {corrected:?}"
    );
    assert!(corrected.get("1") > bare_p1 + 0.1);
}
