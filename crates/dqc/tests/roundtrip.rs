//! QASM round-trips of the reuse design space.
//!
//! Every width the planner can emit — the paper's k = 1, an intermediate
//! width, and the no-reuse k = m — must survive emit → parse → emit with a
//! byte-identical second emission, including mid-circuit resets, measures
//! and classically controlled gates. The mitigated variants add `Voted`
//! conditions (measurement repetition) and verified resets on top, so the
//! whole dynamic instruction vocabulary is covered.

use dqc::{
    mitigate, plan_with_scheme, CostModel, DynamicScheme, MitigationOptions, QubitRoles, ReuseMode,
    TransformOptions,
};
use qcir::qasm::{from_qasm, to_qasm};
use qcir::{Circuit, Condition, Qubit};

fn q(i: usize) -> Qubit {
    Qubit::new(i)
}

/// BV(110): 3 data + 1 answer, Toffoli-free, every width 1..=3 feasible.
fn bv110() -> (Circuit, QubitRoles) {
    let mut c = Circuit::new(4, 0);
    c.x(q(3)).h(q(3));
    for i in 0..3 {
        c.h(q(i));
    }
    c.cx(q(1), q(3)).cx(q(2), q(3));
    for i in 0..3 {
        c.h(q(i));
    }
    (c, QubitRoles::data_plus_answer(4))
}

/// DJ AND: one Toffoli, lowered by dynamic-2 (widths 1 and 3 feasible).
fn dj_and() -> (Circuit, QubitRoles) {
    let mut c = Circuit::new(3, 0);
    c.x(q(2)).h(q(2));
    c.h(q(0)).h(q(1));
    c.ccx(q(0), q(1), q(2));
    c.h(q(0)).h(q(1));
    (c, QubitRoles::data_plus_answer(3))
}

fn dynamic_at(circuit: &Circuit, roles: &QubitRoles, mode: ReuseMode) -> Circuit {
    let (dynamic, _) = plan_with_scheme(
        circuit,
        roles,
        DynamicScheme::Dynamic2,
        mode,
        &CostModel::default(),
        &TransformOptions::default(),
    )
    .unwrap_or_else(|e| panic!("planning {mode} failed: {e}"));
    dynamic.circuit().clone()
}

fn assert_round_trips(circuit: &Circuit, what: &str) {
    let first = to_qasm(circuit);
    let reparsed = from_qasm(&first).unwrap_or_else(|e| panic!("{what}: parse failed: {e}"));
    let second = to_qasm(&reparsed);
    assert_eq!(first, second, "{what}: second emission drifted");
    assert_eq!(
        reparsed.num_qubits(),
        circuit.num_qubits(),
        "{what}: width changed"
    );
    assert_eq!(reparsed.len(), circuit.len(), "{what}: length changed");
}

#[test]
fn every_width_round_trips_for_bv() {
    let (circuit, roles) = bv110();
    for mode in [ReuseMode::Width(1), ReuseMode::Width(2), ReuseMode::Off] {
        let dynamic = dynamic_at(&circuit, &roles, mode);
        assert_round_trips(&dynamic, &format!("BV_110 at {mode}"));
    }
    // k = 1 and k = 2 replay lanes, so the reset must survive the trip.
    let k1 = to_qasm(&dynamic_at(&circuit, &roles, ReuseMode::Width(1)));
    assert!(k1.contains("reset"), "{k1}");
}

#[test]
fn lowered_toffoli_widths_round_trip() {
    let (circuit, roles) = dj_and();
    // Widths 1 (paper scheme, classically controlled gates) and m (no
    // reuse) — k = 2 is soundly infeasible for this circuit.
    for mode in [ReuseMode::Width(1), ReuseMode::Off] {
        let dynamic = dynamic_at(&circuit, &roles, mode);
        assert_round_trips(&dynamic, &format!("DJ_AND at {mode}"));
    }
    let k1 = to_qasm(&dynamic_at(&circuit, &roles, ReuseMode::Width(1)));
    assert!(
        k1.contains("if ("),
        "conditioned gates must be emitted: {k1}"
    );
}

#[test]
fn voted_conditions_round_trip_at_every_width() {
    let (circuit, roles) = dj_and();
    let opts = MitigationOptions {
        reset_verify: Some(1),
        meas_repeat: Some(3),
        readout_cal: false,
    };
    for mode in [ReuseMode::Width(1), ReuseMode::Off] {
        let dynamic = dynamic_at(&circuit, &roles, mode);
        let hardened = mitigate(&dynamic, &opts).circuit().clone();
        assert_round_trips(&hardened, &format!("mitigated DJ_AND at {mode}"));
    }
    // The k = 1 mitigated circuit actually exercises Voted feed-forward.
    let hardened = mitigate(&dynamic_at(&circuit, &roles, ReuseMode::Width(1)), &opts);
    let voted = hardened
        .circuit()
        .iter()
        .filter(|i| matches!(i.condition(), Some(Condition::Voted { .. })))
        .count();
    assert!(voted > 0, "expected voted conditions after meas-repeat");
}
