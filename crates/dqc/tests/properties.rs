//! Property-based tests of the dynamic transformation.
//!
//! Strategy: generate random *phase-oracle* circuits (the structure BV/DJ
//! oracles share: data-qubit preparation, controlled X-power gates onto the
//! answer, data-qubit closing gates). For this family the transformation
//! must be exactly functionally equivalent, so each random instance checks
//! the full pipeline end to end.

use dqc::{transform, transform_with_scheme, verify, DynamicScheme, QubitRoles, TransformOptions};
use proptest::prelude::*;
use qcir::{Circuit, CircuitStats, Gate, Qubit};

/// An oracle term: which data qubits control which X-power on the answer.
#[derive(Debug, Clone)]
enum Term {
    /// `CX(data, answer)`.
    Cx(usize),
    /// `CV(data, answer)` / `CV†(data, answer)`.
    Cv(usize, bool),
    /// `CCX(data_a, data_b, answer)` (a Toffoli term).
    Ccx(usize, usize),
}

fn arb_term(n_data: usize) -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..n_data).prop_map(Term::Cx),
        (0..n_data, any::<bool>()).prop_map(|(d, dg)| Term::Cv(d, dg)),
        (0..n_data, 0..n_data.max(2) - 1).prop_map(move |(a, b)| {
            let b = if b >= a { b + 1 } else { b };
            Term::Ccx(a, b.min(n_data - 1))
        }),
    ]
}

/// Builds a DJ-style circuit from oracle terms over `n_data` data qubits.
fn build_oracle_circuit(n_data: usize, terms: &[Term], toffoli_free: bool) -> Circuit {
    let ans = Qubit::new(n_data);
    let mut c = Circuit::new(n_data + 1, 0);
    c.x(ans).h(ans);
    for d in 0..n_data {
        c.h(Qubit::new(d));
    }
    for t in terms {
        match *t {
            Term::Cx(d) => {
                c.cx(Qubit::new(d), ans);
            }
            Term::Cv(d, false) => {
                c.cv(Qubit::new(d), ans);
            }
            Term::Cv(d, true) => {
                c.cvdg(Qubit::new(d), ans);
            }
            Term::Ccx(a, b) => {
                if toffoli_free || a == b {
                    c.cx(Qubit::new(a), ans);
                } else {
                    c.ccx(Qubit::new(a), Qubit::new(b), ans);
                }
            }
        }
    }
    for d in 0..n_data {
        c.h(Qubit::new(d));
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Toffoli-free phase oracles transform exactly (the paper's Table I
    /// equivalence claim, generalized to random instances).
    #[test]
    fn toffoli_free_oracles_are_exactly_equivalent(
        n_data in 1usize..4,
        terms in proptest::collection::vec(arb_term(3), 0..8),
    ) {
        let circ = build_oracle_circuit(n_data, &terms_clamped(&terms, n_data), true);
        let roles = QubitRoles::data_plus_answer(n_data + 1);
        let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
        let report = verify::compare(&circ, &roles, &d);
        prop_assert!(report.equivalent(1e-9), "{report}");
    }

    /// The dynamic circuit always uses exactly 2 physical qubits... i.e.
    /// 1 + number of answer qubits, with one classical bit per data qubit.
    #[test]
    fn dynamic_circuits_use_one_data_qubit(
        n_data in 1usize..4,
        terms in proptest::collection::vec(arb_term(3), 0..8),
    ) {
        let circ = build_oracle_circuit(n_data, &terms_clamped(&terms, n_data), false);
        let roles = QubitRoles::data_plus_answer(n_data + 1);
        for scheme in [DynamicScheme::Dynamic1, DynamicScheme::Dynamic2] {
            let d = transform_with_scheme(&circ, &roles, scheme, &TransformOptions::default())
                .unwrap();
            prop_assert_eq!(d.circuit().num_qubits(), 2);
            prop_assert_eq!(d.circuit().num_clbits(), n_data);
            prop_assert_eq!(d.result_bits().len(), n_data);
        }
    }

    /// Iteration counts: dynamic-1 has one iteration per data qubit;
    /// dynamic-2 adds exactly one shared ancilla iteration when Toffolis
    /// are present (Lemma 1).
    #[test]
    fn iteration_counts_follow_lemma_one(
        n_data in 2usize..4,
        terms in proptest::collection::vec(arb_term(3), 1..8),
    ) {
        let terms = terms_clamped(&terms, n_data);
        let circ = build_oracle_circuit(n_data, &terms, false);
        let has_toffoli = circ.iter().any(|i| i.as_gate() == Some(&Gate::Ccx));
        let roles = QubitRoles::data_plus_answer(n_data + 1);
        let opts = TransformOptions::default();
        let d1 = transform_with_scheme(&circ, &roles, DynamicScheme::Dynamic1, &opts).unwrap();
        let d2 = transform_with_scheme(&circ, &roles, DynamicScheme::Dynamic2, &opts).unwrap();
        prop_assert_eq!(d1.num_iterations(), n_data);
        prop_assert_eq!(
            d2.num_iterations(),
            n_data + usize::from(has_toffoli)
        );
    }

    /// For the paper's benchmark family — at most one Toffoli term —
    /// dynamic-2 is *exact* and therefore at least as accurate as
    /// dynamic-1 (the Fig. 7 ordering). This is not a theorem for
    /// arbitrary Toffoli networks: stacking several Toffolis on the same
    /// control pair makes the coherent cross-phases matter and dynamic-2
    /// can then deviate (see EXPERIMENTS.md), so the property is scoped to
    /// the family the paper evaluates.
    #[test]
    fn dynamic2_exact_on_single_toffoli_family(
        n_data in 2usize..4,
        terms in proptest::collection::vec(arb_term(3), 1..6),
    ) {
        let terms = at_most_one_toffoli(&terms_clamped(&terms, n_data));
        let circ = build_oracle_circuit(n_data, &terms, false);
        let roles = QubitRoles::data_plus_answer(n_data + 1);
        let opts = TransformOptions::default();
        let d1 = transform_with_scheme(&circ, &roles, DynamicScheme::Dynamic1, &opts).unwrap();
        let d2 = transform_with_scheme(&circ, &roles, DynamicScheme::Dynamic2, &opts).unwrap();
        let r1 = verify::compare(&circ, &roles, &d1);
        let r2 = verify::compare(&circ, &roles, &d2);
        prop_assert!(r2.equivalent(1e-9), "dynamic-2 not exact: {r2}");
        prop_assert!(
            r2.tvd <= r1.tvd + 1e-9,
            "dynamic-2 tvd {} > dynamic-1 tvd {}",
            r2.tvd,
            r1.tvd
        );
    }

    /// Resource shape: one measurement per data qubit on both schemes, and
    /// dynamic-2 spends exactly one more reset when a Toffoli is present
    /// (its shared ancilla iteration).
    #[test]
    fn resource_shape_matches_tables(
        n_data in 2usize..4,
        terms in proptest::collection::vec(arb_term(3), 1..8),
    ) {
        let terms = terms_clamped(&terms, n_data);
        let circ = build_oracle_circuit(n_data, &terms, false);
        let has_toffoli = circ.iter().any(|i| i.as_gate() == Some(&Gate::Ccx));
        let roles = QubitRoles::data_plus_answer(n_data + 1);
        let opts = TransformOptions::default();
        let d1 = transform_with_scheme(&circ, &roles, DynamicScheme::Dynamic1, &opts).unwrap();
        let d2 = transform_with_scheme(&circ, &roles, DynamicScheme::Dynamic2, &opts).unwrap();
        let s1 = CircuitStats::of(d1.circuit());
        let s2 = CircuitStats::of(d2.circuit());
        prop_assert_eq!(s1.measure_count, n_data);
        prop_assert_eq!(s2.measure_count, n_data);
        prop_assert_eq!(s1.reset_count, n_data - 1);
        prop_assert_eq!(s2.reset_count, n_data - 1 + usize::from(has_toffoli));
    }

    /// Soundness of the static exactness analysis, on random circuits: an
    /// `Exact` verdict must imply zero total-variation distance between
    /// the traditional circuit and its (direct-scheme) dynamic realization.
    #[test]
    fn exact_analysis_verdicts_are_sound(
        n_data in 1usize..4,
        terms in proptest::collection::vec(arb_term(3), 0..8),
    ) {
        let circ = build_oracle_circuit(n_data, &terms_clamped(&terms, n_data), false);
        let roles = QubitRoles::data_plus_answer(n_data + 1);
        let verdict = dqc::analysis::analyze(&circ, &roles).unwrap();
        let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
        let report = verify::compare(&circ, &roles, &d);
        if verdict.is_exact() {
            prop_assert!(
                report.tvd < 1e-9,
                "analysis said Exact but tvd = {}",
                report.tvd
            );
        }
    }

    /// The transformation is deterministic.
    #[test]
    fn transformation_is_deterministic(
        n_data in 1usize..4,
        terms in proptest::collection::vec(arb_term(3), 0..8),
    ) {
        let circ = build_oracle_circuit(n_data, &terms_clamped(&terms, n_data), false);
        let roles = QubitRoles::data_plus_answer(n_data + 1);
        let opts = TransformOptions::default();
        let a = transform_with_scheme(&circ, &roles, DynamicScheme::Dynamic2, &opts).unwrap();
        let b = transform_with_scheme(&circ, &roles, DynamicScheme::Dynamic2, &opts).unwrap();
        prop_assert_eq!(a.circuit().instructions(), b.circuit().instructions());
    }
}

/// Restricts a term list to the paper's benchmark family, where dynamic-2
/// is exactly equivalent: at most one Toffoli term, and no CV/CV† terms on
/// the Toffoli's control qubits (an extra quarter-phase on a Toffoli
/// control interacts non-separably with the Toffoli's own phase and breaks
/// the product structure the dynamic realization produces). Demoted terms
/// become plain `CX` terms, whose full phases stay separable.
fn at_most_one_toffoli(terms: &[Term]) -> Vec<Term> {
    let toffoli = terms.iter().find_map(|t| match *t {
        Term::Ccx(a, b) => Some((a, b)),
        _ => None,
    });
    let mut seen = false;
    terms
        .iter()
        .map(|t| match *t {
            Term::Ccx(a, b) => {
                if seen {
                    Term::Cx(a)
                } else {
                    seen = true;
                    Term::Ccx(a, b)
                }
            }
            Term::Cv(d, _) if toffoli.is_some_and(|(a, b)| d == a || d == b) => Term::Cx(d),
            ref other => other.clone(),
        })
        .collect()
}

/// Clamps term qubit indices into range for the generated data count.
fn terms_clamped(terms: &[Term], n_data: usize) -> Vec<Term> {
    terms
        .iter()
        .map(|t| match *t {
            Term::Cx(d) => Term::Cx(d % n_data),
            Term::Cv(d, dg) => Term::Cv(d % n_data, dg),
            Term::Ccx(a, b) => {
                let a = a % n_data;
                let mut b = b % n_data;
                if a == b {
                    b = (b + 1) % n_data;
                }
                Term::Ccx(a, b)
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Reuse-plan properties: the lane generalization must preserve the paper's
// structural invariants at every width.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The work-qubit dependency graph of a phase-oracle circuit is always
    /// acyclic (controls only ever point at the answer), so a replay order
    /// exists and the reuse planner has a well-defined search space.
    #[test]
    fn reuse_dependency_graph_is_acyclic(
        n_data in 1usize..4,
        terms in proptest::collection::vec(arb_term(3), 0..8),
    ) {
        let circ = build_oracle_circuit(n_data, &terms_clamped(&terms, n_data), false);
        let work: Vec<Qubit> = (0..n_data).map(Qubit::new).collect();
        let graph = qcir::reuse::QubitDependencyGraph::build(&circ, &work).unwrap();
        prop_assert!(graph.is_acyclic());
        let order = graph.topological_order().unwrap();
        prop_assert_eq!(order.len(), n_data);
    }

    /// Every lane partition the enumerator yields is a plan the validator
    /// accepts, and the number of lanes is exactly the requested width.
    #[test]
    fn enumerated_lane_partitions_are_valid_plans(m in 1usize..6, k_raw in 0usize..6) {
        let k = k_raw % m + 1;
        let order: Vec<Qubit> = (0..m).map(Qubit::new).collect();
        for part in qcir::reuse::lane_partitions(m, k, 4096) {
            let lanes: Vec<Vec<Qubit>> = part
                .iter()
                .map(|lane| lane.iter().map(|&p| order[p]).collect())
                .collect();
            let plan = dqc::ReusePlan::from_lanes(lanes);
            let resolved = plan.resolve(&order).unwrap();
            prop_assert_eq!(resolved.len(), k);
            let mut members: Vec<usize> =
                resolved.iter().flatten().map(|q| q.index()).collect();
            members.sort_unstable();
            prop_assert_eq!(members, (0..m).collect::<Vec<_>>());
        }
    }

    /// The k = m plan (no reuse) reproduces a Toffoli-free input
    /// instruction-for-instruction: the original unitary gates in order,
    /// then one trailing measurement per work qubit — and nothing else.
    #[test]
    fn full_width_plan_is_the_identity_transform(
        n_data in 1usize..4,
        terms in proptest::collection::vec(arb_term(3), 0..8),
    ) {
        let circ = build_oracle_circuit(n_data, &terms_clamped(&terms, n_data), true);
        let roles = QubitRoles::data_plus_answer(n_data + 1);
        let opts = TransformOptions { peephole: false, ..TransformOptions::default() };
        let d = dqc::transform_with_plan(&circ, &roles, &dqc::ReusePlan::full_width(), &opts)
            .unwrap();
        let out = d.circuit();
        prop_assert_eq!(out.num_qubits(), circ.num_qubits());
        prop_assert_eq!(out.len(), circ.len() + n_data);
        for (emitted, original) in out.iter().zip(circ.iter()) {
            prop_assert_eq!(emitted.as_gate(), original.as_gate());
            prop_assert_eq!(emitted.qubits(), original.qubits());
            prop_assert!(emitted.condition().is_none());
        }
        let stats = CircuitStats::of(out);
        prop_assert_eq!(stats.reset_count, 0);
        prop_assert_eq!(stats.measure_count, n_data);
    }

    /// Feed-forward ordering: at every feasible width, each classically
    /// controlled gate only reads classical bits some earlier measurement
    /// already wrote. A read-before-write would mean the lane schedule
    /// broke the measurement → feed-forward dependency.
    #[test]
    fn feed_forward_reads_follow_their_measurements(
        n_data in 2usize..4,
        terms in proptest::collection::vec(arb_term(3), 1..8),
    ) {
        let circ = build_oracle_circuit(n_data, &terms_clamped(&terms, n_data), false);
        let roles = QubitRoles::data_plus_answer(n_data + 1);
        let opts = dqc::ExploreOptions {
            verify: false,
            ..dqc::ExploreOptions::default()
        };
        for point in dqc::explore(&circ, &roles, &opts).unwrap() {
            let mut written = std::collections::HashSet::new();
            for inst in point.dynamic.circuit().iter() {
                for bit in inst.clbits_read() {
                    prop_assert!(
                        written.contains(&bit),
                        "k={}: condition reads bit {:?} before any measurement wrote it",
                        point.k,
                        bit
                    );
                }
                for &bit in inst.clbits_written() {
                    written.insert(bit);
                }
            }
        }
    }
}
