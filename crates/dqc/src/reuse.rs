//! Qubit-reuse planning: the design space between "one data qubit" and
//! "no reuse at all".
//!
//! The paper's transformation folds all `m` work qubits onto **one**
//! physical data qubit. Rovara, Burgholzer & Wille generalize this: any
//! partition of the work-qubit iteration order into `k` *lanes* — each lane
//! an increasing subsequence replayed on its own physical wire — yields a
//! legal dynamic circuit, trading width (`k + answers` wires) against depth
//! and classicalization. `k = 1` is the paper's scheme; `k = m` is the
//! original circuit (modulo wire naming and final measurements).
//!
//! * [`ReusePlan`] — a concrete lane assignment consumed by
//!   [`transform_with_plan`](crate::transform_with_plan);
//! * [`ReuseMode`] — the user-facing selector (`auto`, `off`, or a width);
//! * [`plan_with_scheme`] — the planner: enumerates lane partitions for the
//!   requested width(s), scores feasible plans with a
//!   [`CostModel`](crate::CostModel) and returns the best dynamic circuit
//!   together with a [`ReuseReport`].

use crate::cost::{CostModel, ResourceSummary};
use crate::error::DqcError;
use crate::reorder::reorder_work_qubits;
use crate::roles::{QubitRoles, Role};
use crate::scheme::{lower_for_scheme, DynamicScheme};
use crate::transform::{transform_with_plan_observed, DynamicCircuit, TransformOptions};
use qcir::reuse::lane_partitions;
use qcir::{Circuit, OpKind, Qubit};
use qobs::Observer;
use std::fmt;
use std::str::FromStr;

/// The user-facing reuse selector, as parsed from `--reuse=auto|off|<k>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseMode {
    /// Pick the width with the best cost-model score among all feasible
    /// widths (ties go to the smaller width).
    Auto,
    /// No reuse: every work qubit keeps its own physical wire (`k = m`).
    Off,
    /// Fold onto exactly this many physical lanes (`1..=m`); `1` is the
    /// paper's single-data-qubit scheme.
    Width(usize),
}

impl fmt::Display for ReuseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReuseMode::Auto => f.write_str("auto"),
            ReuseMode::Off => f.write_str("off"),
            ReuseMode::Width(k) => write!(f, "{k}"),
        }
    }
}

impl FromStr for ReuseMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(ReuseMode::Auto),
            "off" => Ok(ReuseMode::Off),
            _ => match s.parse::<usize>() {
                Ok(k) if k >= 1 => Ok(ReuseMode::Width(k)),
                _ => Err(format!(
                    "invalid reuse mode '{s}' (expected auto, off, or a width >= 1)"
                )),
            },
        }
    }
}

/// How the emitter folds work qubits onto physical lanes.
///
/// A plan is resolved against the work-qubit iteration order (the Case-2
/// topological order) at transform time: each lane must be a non-empty,
/// strictly increasing subsequence of that order, the lanes must partition
/// it, and lanes are listed in order of their first qubit. Lane `i` replays
/// on physical wire `i`; answer qubits follow on wires `k..`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReusePlan {
    kind: PlanKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum PlanKind {
    SingleLane,
    FullWidth,
    Lanes(Vec<Vec<Qubit>>),
}

impl ReusePlan {
    /// The paper's scheme: all work qubits share one physical data qubit.
    #[must_use]
    pub fn single_lane() -> Self {
        Self {
            kind: PlanKind::SingleLane,
        }
    }

    /// No reuse: each work qubit gets its own lane (`k = m`).
    #[must_use]
    pub fn full_width() -> Self {
        Self {
            kind: PlanKind::FullWidth,
        }
    }

    /// An explicit lane assignment (validated at transform time).
    #[must_use]
    pub fn from_lanes(lanes: Vec<Vec<Qubit>>) -> Self {
        Self {
            kind: PlanKind::Lanes(lanes),
        }
    }

    /// Resolves the plan against a concrete work-qubit order.
    ///
    /// # Errors
    ///
    /// [`DqcError::InvalidPlan`] when explicit lanes do not partition
    /// `work_order` into increasing subsequences ordered by first qubit.
    pub fn resolve(&self, work_order: &[Qubit]) -> Result<Vec<Vec<Qubit>>, DqcError> {
        match &self.kind {
            PlanKind::SingleLane => Ok(if work_order.is_empty() {
                Vec::new()
            } else {
                vec![work_order.to_vec()]
            }),
            PlanKind::FullWidth => Ok(work_order.iter().map(|&q| vec![q]).collect()),
            PlanKind::Lanes(lanes) => {
                let pos = |q: Qubit| work_order.iter().position(|&w| w == q);
                let mut covered = vec![false; work_order.len()];
                for lane in lanes {
                    if lane.is_empty() {
                        return Err(DqcError::InvalidPlan {
                            reason: "empty lane".into(),
                        });
                    }
                    let mut prev: Option<usize> = None;
                    for &q in lane {
                        let Some(p) = pos(q) else {
                            return Err(DqcError::InvalidPlan {
                                reason: format!("{q} is not a work qubit"),
                            });
                        };
                        if covered[p] {
                            return Err(DqcError::InvalidPlan {
                                reason: format!("{q} appears in more than one lane"),
                            });
                        }
                        covered[p] = true;
                        if let Some(pv) = prev {
                            if p <= pv {
                                return Err(DqcError::InvalidPlan {
                                    reason: format!(
                                        "{q} violates the iteration order within its lane"
                                    ),
                                });
                            }
                        }
                        prev = Some(p);
                    }
                }
                if covered.iter().any(|&c| !c) {
                    return Err(DqcError::InvalidPlan {
                        reason: "lanes do not cover every work qubit".into(),
                    });
                }
                for pair in lanes.windows(2) {
                    let (a, b) = (pos(pair[0][0]), pos(pair[1][0]));
                    if a >= b {
                        return Err(DqcError::InvalidPlan {
                            reason: "lanes are not ordered by their first qubit".into(),
                        });
                    }
                }
                Ok(lanes.clone())
            }
        }
    }
}

/// Activation/retirement schedule derived from resolved lanes.
///
/// Positions refer to the work-qubit iteration order. A lane head activates
/// at step 0 (all lanes start together); a later lane member activates at
/// its own position, retiring its predecessor. A qubit retires when its
/// lane successor activates, or at step `m` (end of circuit) for the last
/// member of a lane.
pub(crate) struct LaneSchedule {
    /// Position in the work order, by qubit wire index.
    pos: Vec<Option<usize>>,
    /// Lane index, by qubit wire index.
    lane: Vec<Option<usize>>,
    /// Activation step, by work-order position.
    activate: Vec<usize>,
    /// Retirement step, by work-order position.
    retire: Vec<usize>,
}

impl LaneSchedule {
    pub(crate) fn new(lanes: &[Vec<Qubit>], work_order: &[Qubit], num_qubits: usize) -> Self {
        let m = work_order.len();
        let mut pos = vec![None; num_qubits];
        for (p, &w) in work_order.iter().enumerate() {
            pos[w.index()] = Some(p);
        }
        let mut lane = vec![None; num_qubits];
        let mut activate = vec![0usize; m];
        let mut retire = vec![m; m];
        for (l, members) in lanes.iter().enumerate() {
            for (j, &w) in members.iter().enumerate() {
                lane[w.index()] = Some(l);
                let p = pos[w.index()].expect("lane member is in the work order");
                activate[p] = if j == 0 { 0 } else { p };
                retire[p] = members
                    .get(j + 1)
                    .and_then(|&s| pos[s.index()])
                    .unwrap_or(m);
            }
        }
        Self {
            pos,
            lane,
            activate,
            retire,
        }
    }

    /// The physical lane of a work qubit.
    pub(crate) fn lane_of(&self, q: Qubit) -> usize {
        self.lane[q.index()].expect("work qubit has a lane")
    }

    /// `true` when operand `q` of a gate over `gate_qubits` is guaranteed
    /// to be retired (measured) by the time the gate can first be emitted —
    /// the static prediction that its value will be read classically.
    pub(crate) fn statically_classical(&self, q: Qubit, gate_qubits: &[Qubit]) -> bool {
        let Some(p) = self.pos[q.index()] else {
            return false;
        };
        let t_emit = gate_qubits
            .iter()
            .filter_map(|&x| self.pos[x.index()])
            .map(|xp| self.activate[xp])
            .max()
            .unwrap_or(0);
        self.retire[p] <= t_emit
    }
}

/// Quick static feasibility check of a lane assignment: every operand that
/// will be retired by a gate's earliest emission step must be a *data
/// control* whose early classical read is exact (no later basis-changing
/// gates on it — the deferred-measurement criterion; at `width == 1` the
/// paper's approximation applies instead and the read is always allowed).
/// A plan passing this check can still fail in the emitter
/// (commutation-blocked hoisting can delay a gate past a retirement), so
/// the planner attempts the transform as the final filter.
fn statically_feasible(
    circuit: &Circuit,
    roles: &QubitRoles,
    sched: &LaneSchedule,
    width: usize,
    frontier: &[Option<usize>],
) -> bool {
    for (idx, inst) in circuit.iter().enumerate() {
        let OpKind::Gate(gate) = inst.kind() else {
            continue;
        };
        let qubits = inst.qubits();
        let n_ctrl = gate.num_controls();
        for (k, &qb) in qubits.iter().enumerate() {
            if matches!(roles.role_of(qb), Some(Role::Answer) | None) {
                continue;
            }
            if sched.statically_classical(qb, qubits) {
                let sound = width <= 1 || frontier[qb.index()].is_none_or(|last| last <= idx);
                let classicalizable =
                    k < n_ctrl && matches!(roles.role_of(qb), Some(Role::Data)) && sound;
                if !classicalizable {
                    return false;
                }
            }
        }
    }
    true
}

/// One planned realization: the chosen lanes, the emitted circuit and its
/// score under the planner's cost model.
#[derive(Debug, Clone)]
pub struct PlannedTransform {
    /// The lane assignment (lowered-circuit qubit ids).
    pub lanes: Vec<Vec<Qubit>>,
    /// The emitted dynamic circuit.
    pub dynamic: DynamicCircuit,
    /// Resource summary of the emitted circuit.
    pub summary: ResourceSummary,
    /// Cost-model score (lower is better).
    pub score: f64,
}

/// What the planner decided and how hard it had to look.
#[derive(Debug, Clone)]
pub struct ReuseReport {
    /// The requested mode.
    pub mode: ReuseMode,
    /// The selected physical width (lanes).
    pub k: usize,
    /// The number of work qubits (`m`; the width of `off`).
    pub max_width: usize,
    /// The selected lane assignment (lowered-circuit qubit ids).
    pub lanes: Vec<Vec<Qubit>>,
    /// Cost-model score of the selection (lower is better).
    pub score: f64,
    /// Candidate plans attempted across all widths considered.
    pub candidates: usize,
    /// Widths with at least one feasible plan, among those considered.
    pub feasible_widths: Vec<usize>,
}

impl fmt::Display for ReuseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mode={} k={}/{} lanes={} candidates={} score={:.2}",
            self.mode,
            self.k,
            self.max_width,
            self.lanes.len(),
            self.candidates,
            self.score
        )
    }
}

/// The planner's search budget: at most this many lane partitions are
/// enumerated per width. `S(m, k)` stays far below this for every seeded
/// suite; larger circuits degrade gracefully to a prefix of the
/// (deterministic) enumeration order.
pub const DEFAULT_CANDIDATE_CAP: usize = 4096;

/// Plans and emits the best dynamic circuit for `mode` under `scheme`.
///
/// Lowering happens once (per the scheme), then lane partitions of the
/// lowered work order are enumerated per width, statically filtered,
/// transformed, scored with `cost`, and the best feasible plan is returned.
/// Deterministic: ties go to the earlier candidate in enumeration order,
/// and `auto` ties go to the smaller width.
///
/// # Errors
///
/// Propagates lowering/transform errors when no width is feasible; returns
/// [`DqcError::InvalidPlan`] when a requested fixed width has no feasible
/// plan but other widths do.
pub fn plan_with_scheme(
    circuit: &Circuit,
    roles: &QubitRoles,
    scheme: DynamicScheme,
    mode: ReuseMode,
    cost: &CostModel,
    options: &TransformOptions,
) -> Result<(DynamicCircuit, ReuseReport), DqcError> {
    plan_with_scheme_observed(
        circuit,
        roles,
        scheme,
        mode,
        cost,
        options,
        &Observer::disabled(),
    )
}

/// [`plan_with_scheme`] with instrumentation: wraps the search in a
/// `transform.plan` span (fields `mode`, `widths`, `candidates`, `k`) and
/// records the `reuse.k_selected` gauge plus a `reuse.selected` event.
///
/// # Errors
///
/// Same as [`plan_with_scheme`].
pub fn plan_with_scheme_observed(
    circuit: &Circuit,
    roles: &QubitRoles,
    scheme: DynamicScheme,
    mode: ReuseMode,
    cost: &CostModel,
    options: &TransformOptions,
    obs: &Observer,
) -> Result<(DynamicCircuit, ReuseReport), DqcError> {
    let (lowered, lowered_roles) = lower_for_scheme(circuit, roles, scheme, obs);
    let work_order = reorder_work_qubits(&lowered, &lowered_roles)?;
    let m = work_order.len();

    let mut span = obs.span("transform.plan");
    span.field("mode", mode.to_string());

    let widths: Vec<usize> = match mode {
        ReuseMode::Auto => (1..=m.max(1)).collect(),
        ReuseMode::Off => vec![m.max(1)],
        ReuseMode::Width(k) => vec![k],
    };
    span.field("widths", widths.len());

    if let ReuseMode::Width(k) = mode {
        if k > m.max(1) {
            return Err(DqcError::InvalidPlan {
                reason: format!("requested width {k} exceeds the {m} work qubit(s)"),
            });
        }
    }

    let mut candidates = 0usize;
    let mut feasible_widths = Vec::new();
    let mut best: Option<(usize, PlannedTransform)> = None;
    let mut first_err: Option<DqcError> = None;

    for &k in &widths {
        match best_plan_for_width(
            &lowered,
            &lowered_roles,
            &work_order,
            k,
            cost,
            options,
            obs,
            &mut candidates,
        ) {
            Ok(planned) => {
                feasible_widths.push(k);
                let better = match &best {
                    None => true,
                    Some((_, cur)) => planned.score < cur.score,
                };
                if better {
                    best = Some((k, planned));
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }

    span.field("candidates", candidates);
    let Some((k, planned)) = best else {
        // No feasible width at all: surface the first underlying error.
        return Err(first_err.unwrap_or(DqcError::InvalidPlan {
            reason: "no feasible reuse plan".into(),
        }));
    };
    span.field("k", k);
    drop(span);

    obs.gauge_set("reuse.k_selected", k as f64);
    obs.event(
        "reuse.selected",
        &[
            ("mode", mode.to_string().into()),
            ("k", k.into()),
            ("max_width", m.into()),
            ("candidates", candidates.into()),
        ],
    );

    let report = ReuseReport {
        mode,
        k,
        max_width: m,
        lanes: planned.lanes,
        score: planned.score,
        candidates,
        feasible_widths,
    };
    Ok((planned.dynamic, report))
}

/// The best feasible plan of exactly `k` lanes, by cost-model score.
///
/// # Errors
///
/// The first transform error when no partition of width `k` is feasible
/// (or [`DqcError::InvalidPlan`] when `k` is out of range).
#[allow(clippy::too_many_arguments)]
fn best_plan_for_width(
    lowered: &Circuit,
    roles: &QubitRoles,
    work_order: &[Qubit],
    k: usize,
    cost: &CostModel,
    options: &TransformOptions,
    obs: &Observer,
    candidates: &mut usize,
) -> Result<PlannedTransform, DqcError> {
    let m = work_order.len();
    if m == 0 {
        // Degenerate: no work qubits; the single-lane plan emits the
        // answer-only circuit on one (idle) physical wire.
        let dynamic =
            transform_with_plan_observed(lowered, roles, &ReusePlan::single_lane(), options, obs)?;
        let summary = ResourceSummary::of_dynamic(&dynamic);
        let score = cost.score(&summary);
        *candidates += 1;
        return Ok(PlannedTransform {
            lanes: Vec::new(),
            dynamic,
            summary,
            score,
        });
    }
    if k == 0 || k > m {
        return Err(DqcError::InvalidPlan {
            reason: format!("width {k} out of range 1..={m}"),
        });
    }

    let frontier: Vec<Option<usize>> = (0..lowered.num_qubits())
        .map(|i| qcir::reuse::last_nondiagonal_action(lowered, Qubit::new(i)))
        .collect();
    let sched_feasible = |lanes: &[Vec<Qubit>]| {
        let sched = LaneSchedule::new(lanes, work_order, lowered.num_qubits());
        statically_feasible(lowered, roles, &sched, k, &frontier)
    };

    let mut best: Option<PlannedTransform> = None;
    let mut first_err: Option<DqcError> = None;
    for part in lane_partitions(m, k, DEFAULT_CANDIDATE_CAP) {
        let lanes: Vec<Vec<Qubit>> = part
            .iter()
            .map(|lane| lane.iter().map(|&p| work_order[p]).collect())
            .collect();
        if !sched_feasible(&lanes) {
            continue;
        }
        *candidates += 1;
        let plan = ReusePlan::from_lanes(lanes.clone());
        match transform_with_plan_observed(lowered, roles, &plan, options, obs) {
            Ok(dynamic) => {
                let summary = ResourceSummary::of_dynamic(&dynamic);
                let score = cost.score(&summary);
                let better = best.as_ref().is_none_or(|b| score < b.score);
                if better {
                    best = Some(PlannedTransform {
                        lanes,
                        dynamic,
                        summary,
                        score,
                    });
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    best.ok_or_else(|| {
        first_err.unwrap_or(DqcError::InvalidPlan {
            reason: format!("no feasible reuse plan of width {k}"),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn mode_parses_and_displays() {
        assert_eq!("auto".parse::<ReuseMode>().unwrap(), ReuseMode::Auto);
        assert_eq!("off".parse::<ReuseMode>().unwrap(), ReuseMode::Off);
        assert_eq!("3".parse::<ReuseMode>().unwrap(), ReuseMode::Width(3));
        assert!("0".parse::<ReuseMode>().is_err());
        assert!("wat".parse::<ReuseMode>().is_err());
        assert_eq!(ReuseMode::Auto.to_string(), "auto");
        assert_eq!(ReuseMode::Off.to_string(), "off");
        assert_eq!(ReuseMode::Width(2).to_string(), "2");
    }

    #[test]
    fn single_lane_resolves_to_the_whole_order() {
        let order = vec![q(0), q(1), q(2)];
        assert_eq!(
            ReusePlan::single_lane().resolve(&order).unwrap(),
            vec![order.clone()]
        );
        assert_eq!(
            ReusePlan::full_width().resolve(&order).unwrap(),
            vec![vec![q(0)], vec![q(1)], vec![q(2)]]
        );
    }

    #[test]
    fn explicit_lanes_are_validated() {
        let order = vec![q(0), q(1), q(2)];
        // Valid: two increasing lanes ordered by first qubit.
        assert!(ReusePlan::from_lanes(vec![vec![q(0), q(2)], vec![q(1)]])
            .resolve(&order)
            .is_ok());
        // Decreasing within a lane.
        assert!(matches!(
            ReusePlan::from_lanes(vec![vec![q(2), q(0)], vec![q(1)]]).resolve(&order),
            Err(DqcError::InvalidPlan { .. })
        ));
        // Missing a qubit.
        assert!(matches!(
            ReusePlan::from_lanes(vec![vec![q(0), q(1)]]).resolve(&order),
            Err(DqcError::InvalidPlan { .. })
        ));
        // Duplicated qubit.
        assert!(matches!(
            ReusePlan::from_lanes(vec![vec![q(0), q(1)], vec![q(1), q(2)]]).resolve(&order),
            Err(DqcError::InvalidPlan { .. })
        ));
        // Lanes out of order.
        assert!(matches!(
            ReusePlan::from_lanes(vec![vec![q(1), q(2)], vec![q(0)]]).resolve(&order),
            Err(DqcError::InvalidPlan { .. })
        ));
        // Not a work qubit.
        assert!(matches!(
            ReusePlan::from_lanes(vec![vec![q(0), q(7)], vec![q(1), q(2)]]).resolve(&order),
            Err(DqcError::InvalidPlan { .. })
        ));
        // Empty lane.
        assert!(matches!(
            ReusePlan::from_lanes(vec![vec![], vec![q(0), q(1), q(2)]]).resolve(&order),
            Err(DqcError::InvalidPlan { .. })
        ));
    }

    #[test]
    fn schedule_marks_static_classical_reads() {
        // Work order d0, d1; single lane: d0 retires when d1 activates.
        let order = vec![q(0), q(1)];
        let lanes = vec![order.clone()];
        let sched = LaneSchedule::new(&lanes, &order, 3);
        // CX(d0, d1): emitted at d1's activation (step 1), d0 retired then.
        assert!(sched.statically_classical(q(0), &[q(0), q(1)]));
        assert!(!sched.statically_classical(q(1), &[q(0), q(1)]));
        // CX(d0, answer): emitted while d0 is active.
        assert!(!sched.statically_classical(q(0), &[q(0), q(2)]));

        // Two lanes: both active from step 0, nothing classical.
        let lanes2 = vec![vec![q(0)], vec![q(1)]];
        let sched2 = LaneSchedule::new(&lanes2, &order, 3);
        assert!(!sched2.statically_classical(q(0), &[q(0), q(1)]));
    }
}
