//! # dqc — dynamic quantum circuit transformation for Toffoli networks
//!
//! A Rust implementation of Kole, Deb, Datta and Drechsler, *"Extending the
//! Design Space of Dynamic Quantum Circuits for Toffoli based Network"*
//! (DATE 2023): a general algorithm that transforms an `n`-qubit traditional
//! quantum circuit into a **dynamic quantum circuit** using one physical
//! data qubit plus the answer qubits, by replaying each data qubit in its
//! own iteration (reset → gates → mid-circuit measurement) and replacing
//! interactions between data qubits with classically controlled gates.
//!
//! Toffoli gates get two dynamic realizations, differing in accuracy and
//! cost:
//!
//! * [`DynamicScheme::Dynamic1`] — Barenco CV-chain decomposition (paper
//!   Eqn 2): fewer operations, but the classically controlled `CX` between
//!   the Toffoli's controls is conditioned on a measurement taken in the
//!   wrong basis, which costs accuracy;
//! * [`DynamicScheme::Dynamic2`] — ancilla-unrolled CV decomposition (paper
//!   Eqn 4, with Lemma 1's ancilla sharing): one extra iteration and two
//!   extra classically controlled `X` per Toffoli buy back the accuracy.
//!
//! # Examples
//!
//! Transform the Deutsch-Jozsa AND circuit and check the accuracy claim:
//!
//! ```
//! use dqc::{transform_with_scheme, verify, DynamicScheme, QubitRoles, TransformOptions};
//! use qcir::{Circuit, Qubit};
//!
//! let q = Qubit::new;
//! let mut dj_and = Circuit::new(3, 0);
//! dj_and.x(q(2)).h(q(2));
//! dj_and.h(q(0)).h(q(1));
//! dj_and.ccx(q(0), q(1), q(2));
//! dj_and.h(q(0)).h(q(1));
//!
//! let roles = QubitRoles::data_plus_answer(3);
//! let opts = TransformOptions::default();
//! let d1 = transform_with_scheme(&dj_and, &roles, DynamicScheme::Dynamic1, &opts)?;
//! let d2 = transform_with_scheme(&dj_and, &roles, DynamicScheme::Dynamic2, &opts)?;
//!
//! let r1 = verify::compare(&dj_and, &roles, &d1);
//! let r2 = verify::compare(&dj_and, &roles, &d2);
//! assert!(r2.tvd < r1.tvd); // dynamic-2 is more accurate
//! assert!(r2.equivalent(1e-10)); // in fact exact for a single Toffoli
//! # Ok::<(), dqc::DqcError>(())
//! ```

pub mod analysis;
mod cost;
mod error;
pub mod explore;
pub mod mitigate;
mod pipeline;
mod reorder;
mod reuse;
mod roles;
mod scheme;
mod transform;
pub mod verify;

pub use analysis::{analyze, Conflict, DqcAnalysis, Exactness};
pub use cost::{CostComparison, CostModel, ResourceSummary};
pub use error::DqcError;
pub use explore::{explore, explore_observed, ExploreOptions, ReusePoint};
pub use mitigate::{
    mitigate, mitigate_observed, MitigateError, MitigatedCircuit, MitigationOptions,
    ReadoutCalibration, ResolvedCounts,
};
pub use pipeline::{Pipeline, PipelineResult};
pub use reorder::reorder_work_qubits;
pub use reuse::{
    plan_with_scheme, plan_with_scheme_observed, PlannedTransform, ReuseMode, ReusePlan,
    ReuseReport, DEFAULT_CANDIDATE_CAP,
};
pub use roles::{QubitRoles, Role};
pub use scheme::{transform_with_scheme, transform_with_scheme_observed, DynamicScheme};
pub use transform::{
    transform, transform_observed, transform_with_plan, transform_with_plan_observed,
    DynamicCircuit, IterationInfo, TransformOptions,
};
