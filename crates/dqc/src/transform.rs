//! Algorithm 1, generalized to `k` physical lanes: the
//! traditional-to-dynamic circuit transformation.
//!
//! Given a unitary circuit and a data/ancilla/answer role partition, the
//! transformation emits a circuit on **`k` physical lane wires plus the
//! answer qubits** that replays each work qubit's gates in its own
//! *iteration* on its lane: active reset, the qubit's unitary gates (with
//! interactions to already-measured work qubits replaced by classically
//! controlled gates), then a mid-circuit measurement into the classical
//! result register (data qubits only). The paper's scheme is the `k = 1`
//! special case ([`ReusePlan::single_lane`], the default of [`transform`]);
//! `k = m` ([`ReusePlan::full_width`]) performs no reuse and reproduces the
//! input gates with trailing measurements.
//!
//! ## Scheduling semantics
//!
//! Lane heads all activate at the start; a later lane member activates at
//! its position in the Case-2 work order, retiring (measuring) its lane
//! predecessor first. After every activation a scheduling sweep emits each
//! currently-eligible gate in original circuit order. A gate that cannot
//! run yet is *deferred*; deferring establishes ordering constraints on the
//! wires where the gate will still act **quantumly** (answer wires and
//! not-yet-retired work qubits), and a subsequent gate may only be hoisted
//! past a deferred one when they share no such wire or provably commute
//! (exact matrix test).
//!
//! At `k = 1`, constraints on the *control* side of a work-to-work gate are
//! deliberately released — the control is read from its measurement result
//! instead, which is the approximation the paper accepts (and the reason
//! dynamic-1 loses accuracy, see the `verify` module). At `k > 1` a control
//! wire is only released when the schedule *guarantees* the control retires
//! before the gate can first be emitted; concurrently-live lanes keep their
//! quantum ordering.

use crate::error::DqcError;
use crate::reorder::reorder_work_qubits;
use crate::reuse::{LaneSchedule, ReusePlan};
use crate::roles::{QubitRoles, Role};
use qcir::commute::gates_commute;
use qcir::passes::{
    cancel_adjacent_inverses, merge_conditioned_x_runs, remove_dead_writes_assuming_discarded,
};
use qcir::{Circuit, Clbit, Condition, Gate, Instruction, OpKind, Qubit};
use qobs::Observer;

/// Options controlling the emitted dynamic circuit.
///
/// Defaults match the accounting of the paper's Tables I/II: the first
/// iteration starts from the device's ground state (no leading reset),
/// answer qubits are not reset, and the peephole cleanup that cancels
/// redundant classically controlled operations is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformOptions {
    /// Emit an active reset before the first iteration of every lane too.
    pub reset_first_iteration: bool,
    /// Emit active resets of the answer qubits before the first iteration.
    pub reset_answer_qubits: bool,
    /// Separate iterations with barriers (for readability; excluded from
    /// gate counts and depth by the metrics conventions).
    pub insert_barriers: bool,
    /// Run dead-write elimination and inverse-pair cancellation on the
    /// result (Lemma 1's "2 classically controlled X per Toffoli" relies on
    /// this).
    pub peephole: bool,
}

impl Default for TransformOptions {
    fn default() -> Self {
        Self {
            reset_first_iteration: false,
            reset_answer_qubits: false,
            insert_barriers: false,
            peephole: true,
        }
    }
}

/// Per-iteration bookkeeping of a [`DynamicCircuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationInfo {
    /// The original work qubit this iteration replays.
    pub work_qubit: Qubit,
    /// Its role (data or ancilla).
    pub role: Role,
    /// `true` when the iteration ends with a measurement (data qubits).
    pub measured: bool,
    /// The physical lane wire this iteration runs on (`0` at `k = 1`).
    pub lane: usize,
}

/// The result of the dynamic transformation.
///
/// Wire layout of [`DynamicCircuit::circuit`]: qubits `0..k` are the
/// physical lane wires (`k = 1` for the paper's scheme); qubits
/// `k..k + a` are the `a` answer qubits in the role partition's order.
/// Classical bit `i` holds the measurement of data qubit `roles.data()[i]`,
/// independent of the lane it ran on.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicCircuit {
    circuit: Circuit,
    answer_qubits: Vec<Qubit>,
    result_bits: Vec<Clbit>,
    iterations: Vec<IterationInfo>,
    lanes: usize,
}

impl DynamicCircuit {
    /// The emitted dynamic circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Consumes `self`, returning the circuit.
    #[must_use]
    pub fn into_circuit(self) -> Circuit {
        self.circuit
    }

    /// The first physical lane wire (wire 0) — the unique data qubit of the
    /// paper's `k = 1` scheme.
    #[must_use]
    pub fn data_qubit(&self) -> Qubit {
        Qubit::new(0)
    }

    /// Number of physical lane wires (`k`; 1 for the paper's scheme).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The physical lane wires, `0..k`.
    #[must_use]
    pub fn lane_wires(&self) -> Vec<Qubit> {
        (0..self.lanes).map(Qubit::new).collect()
    }

    /// The physical answer qubits, in the role partition's answer order.
    #[must_use]
    pub fn answer_qubits(&self) -> &[Qubit] {
        &self.answer_qubits
    }

    /// Classical result bits; bit `i` holds the outcome of the `i`-th
    /// original data qubit.
    #[must_use]
    pub fn result_bits(&self) -> &[Clbit] {
        &self.result_bits
    }

    /// Iteration structure, in activation order.
    #[must_use]
    pub fn iterations(&self) -> &[IterationInfo] {
        &self.iterations
    }

    /// Number of iterations (the paper's key dynamic-circuit cost metric).
    #[must_use]
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Splits the emitted instruction stream into per-iteration slices,
    /// using the wire-0 resets as separators (the reset *starts* the
    /// next iteration, matching the paper's definition of an iteration as
    /// "all operations between a reset and a measurement").
    ///
    /// This is a single-lane notion: at `k = 1` the number of slices equals
    /// [`DynamicCircuit::num_iterations`] and the slices partition the
    /// instruction list. For `k > 1` use [`DynamicCircuit::lane_slices`],
    /// which tracks one lane's replays individually.
    #[must_use]
    pub fn iteration_slices(&self) -> Vec<&[Instruction]> {
        let insts = self.circuit.instructions();
        let qd = self.data_qubit();
        let mut boundaries = vec![0usize];
        for (idx, inst) in insts.iter().enumerate() {
            if matches!(inst.kind(), OpKind::Reset) && inst.qubits() == [qd] && idx > 0 {
                boundaries.push(idx);
            }
        }
        boundaries.push(insts.len());
        boundaries.windows(2).map(|w| &insts[w[0]..w[1]]).collect()
    }

    /// Instruction indices touching lane `lane`'s wire, split into one
    /// group per replay: a reset on the wire (after it has already been
    /// used) starts the next group. Barriers are skipped. The number of
    /// groups equals the number of iterations scheduled on that lane.
    #[must_use]
    pub fn lane_slices(&self, lane: usize) -> Vec<Vec<usize>> {
        let wire = Qubit::new(lane);
        let mut slices: Vec<Vec<usize>> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        for (idx, inst) in self.circuit.iter().enumerate() {
            if inst.is_barrier() || !inst.qubits().contains(&wire) {
                continue;
            }
            if matches!(inst.kind(), OpKind::Reset) && !current.is_empty() {
                slices.push(std::mem::take(&mut current));
            }
            current.push(idx);
        }
        if !current.is_empty() {
            slices.push(current);
        }
        slices
    }
}

/// Applies Algorithm 1 to `circuit` under the given role partition, folding
/// all work qubits onto one physical data qubit (the paper's scheme,
/// [`ReusePlan::single_lane`]).
///
/// # Errors
///
/// * [`DqcError::InvalidRoles`] — the partition does not cover the circuit.
/// * [`DqcError::Unrealizable`] — the input contains non-unitary or
///   classically conditioned operations, couples work qubits without a
///   control/target structure, or references a consumed work qubit in a way
///   that cannot be classicalized.
/// * [`DqcError::CyclicDependency`] — no iteration order satisfies Case 2.
/// * [`DqcError::Incomplete`] — gates remained unschedulable (non-commuting
///   entanglement structure on the answer wires).
///
/// # Examples
///
/// Transforming a 3-qubit Bernstein-Vazirani-style circuit to 2 qubits:
///
/// ```
/// use dqc::{transform, QubitRoles, TransformOptions};
/// use qcir::{Circuit, Qubit};
///
/// let q = Qubit::new;
/// let mut bv = Circuit::new(3, 0);
/// bv.x(q(2)).h(q(2));
/// bv.h(q(0)).cx(q(0), q(2)).h(q(0));
/// bv.h(q(1)).cx(q(1), q(2)).h(q(1));
/// let roles = QubitRoles::data_plus_answer(3);
/// let dyn_circ = transform(&bv, &roles, &TransformOptions::default()).unwrap();
/// assert_eq!(dyn_circ.circuit().num_qubits(), 2);
/// assert_eq!(dyn_circ.num_iterations(), 2);
/// ```
pub fn transform(
    circuit: &Circuit,
    roles: &QubitRoles,
    options: &TransformOptions,
) -> Result<DynamicCircuit, DqcError> {
    transform_observed(circuit, roles, options, &Observer::disabled())
}

/// [`transform`] with instrumentation: records spans for the role
/// partition check (`transform.roles`), the work-qubit reorder
/// (`transform.reorder`), the whole emission loop (`transform.emit`) and
/// the peephole cleanup (`transform.peephole`), plus one
/// `transform.iteration` event per emitted iteration, a `reuse.lanes`
/// gauge and a `reuse.resets_inserted` counter.
///
/// With a disabled observer this is exactly [`transform`] — every
/// instrumentation call short-circuits on a boolean.
///
/// # Errors
///
/// Same as [`transform`].
pub fn transform_observed(
    circuit: &Circuit,
    roles: &QubitRoles,
    options: &TransformOptions,
    obs: &Observer,
) -> Result<DynamicCircuit, DqcError> {
    transform_with_plan_observed(circuit, roles, &ReusePlan::single_lane(), options, obs)
}

/// Applies the generalized transformation under an explicit reuse plan.
///
/// The plan's lanes are resolved against the Case-2 work order; lane `i`
/// replays its member qubits, in order, on physical wire `i`.
///
/// # Errors
///
/// Everything [`transform`] raises, plus [`DqcError::InvalidPlan`] when the
/// plan does not partition the work order into ordered increasing lanes.
pub fn transform_with_plan(
    circuit: &Circuit,
    roles: &QubitRoles,
    plan: &ReusePlan,
    options: &TransformOptions,
) -> Result<DynamicCircuit, DqcError> {
    transform_with_plan_observed(circuit, roles, plan, options, &Observer::disabled())
}

/// Lifecycle of a qubit in the lane emitter.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FoldState {
    /// Not folded (answer qubit).
    NonWork,
    /// Work qubit whose iteration has not started.
    Pending,
    /// Work qubit currently live on its lane wire.
    Active,
    /// Work qubit retired (measured if data); reads are classical.
    Retired,
}

/// A lane's currently-live iteration.
struct ActiveLane {
    qubit: Qubit,
    /// `out.len()` at activation (before the lane reset), for the
    /// `emitted` event field.
    start_len: usize,
    /// Index into the `iterations` list, recorded at activation.
    index: usize,
}

/// [`transform_with_plan`] with instrumentation (see
/// [`transform_observed`]).
///
/// # Errors
///
/// Same as [`transform_with_plan`].
pub fn transform_with_plan_observed(
    circuit: &Circuit,
    roles: &QubitRoles,
    plan: &ReusePlan,
    options: &TransformOptions,
    obs: &Observer,
) -> Result<DynamicCircuit, DqcError> {
    {
        let mut span = obs.span("transform.roles");
        span.field("data", roles.data().len());
        span.field("ancilla", roles.ancilla().len());
        span.field("answer", roles.answer().len());
        roles.validate(circuit)?;
    }
    for inst in circuit.iter() {
        if inst.kind().is_nonunitary() || inst.is_conditioned() {
            return Err(DqcError::Unrealizable {
                what: inst.to_string(),
                reason: "input circuit must be unitary (measurement-free)".into(),
            });
        }
    }
    let work_order = {
        let mut span = obs.span("transform.reorder");
        let order = reorder_work_qubits(circuit, roles)?;
        span.field("work_qubits", order.len());
        order
    };
    let lanes = plan.resolve(&work_order)?;
    let k = lanes.len().max(1);
    let sched = LaneSchedule::new(&lanes, &work_order, circuit.num_qubits());
    // Deferred-measurement frontier: a classical read of qubit `q` by the
    // gate at index `idx` is exact iff no gate after `idx` acts
    // non-diagonally on `q`. Only consulted for k > 1 (the single-lane
    // scheme keeps the paper's approximation instead).
    let frontier: Vec<Option<usize>> = (0..circuit.num_qubits())
        .map(|i| qcir::reuse::last_nondiagonal_action(circuit, Qubit::new(i)))
        .collect();
    let n_answer = roles.answer().len();
    let n_data = roles.data().len();

    let mut out = Circuit::with_name(format!("{}_dqc", circuit.name()), k + n_answer, n_data);
    let answer_wires: Vec<Qubit> = (k..k + n_answer).map(Qubit::new).collect();
    let result_bits: Vec<Clbit> = (0..n_data).map(Clbit::new).collect();

    if options.reset_answer_qubits {
        for &a in &answer_wires {
            out.reset(a);
        }
    }

    let mut state: Vec<FoldState> = (0..circuit.num_qubits())
        .map(|i| {
            if work_order.contains(&Qubit::new(i)) {
                FoldState::Pending
            } else {
                FoldState::NonWork
            }
        })
        .collect();
    let mut active: Vec<Option<ActiveLane>> = (0..k).map(|_| None).collect();

    let mut transformed: Vec<bool> = circuit
        .iter()
        .map(|inst| inst.is_barrier()) // barriers carry no semantics here
        .collect();
    let mut iterations: Vec<IterationInfo> = Vec::new();
    let mut emit_span = obs.span("transform.emit");
    emit_span.field("lanes", k);

    // Retires a lane's live qubit: measure (data only), mark classical and
    // fire the iteration event. `out.len() - start_len` counts everything
    // emitted while the iteration was live (at k = 1 this is exactly the
    // iteration's instructions; concurrent lanes interleave).
    let retire = |act: ActiveLane,
                  lane: usize,
                  state: &mut [FoldState],
                  iterations: &[IterationInfo],
                  out: &mut Circuit| {
        let info = &iterations[act.index];
        if info.measured {
            let bit = result_bits[roles.data_index(act.qubit).expect("data qubit has index")];
            out.measure(Qubit::new(lane), bit);
        }
        state[act.qubit.index()] = FoldState::Retired;
        obs.event(
            "transform.iteration",
            &[
                ("index", act.index.into()),
                ("work_qubit", act.qubit.index().into()),
                (
                    "role",
                    if matches!(info.role, Role::Data) {
                        "data".into()
                    } else {
                        "ancilla".into()
                    },
                ),
                ("measured", info.measured.into()),
                ("lane", lane.into()),
                ("emitted", (out.len() - act.start_len).into()),
            ],
        );
    };

    // Stage 0: every lane head activates together.
    for (l, lane) in lanes.iter().enumerate() {
        let w = lane[0];
        let start_len = out.len();
        if options.reset_first_iteration {
            out.reset(Qubit::new(l));
        }
        state[w.index()] = FoldState::Active;
        let role = roles.role_of(w).expect("work qubit has role");
        let is_data = matches!(role, Role::Data);
        active[l] = Some(ActiveLane {
            qubit: w,
            start_len,
            index: iterations.len(),
        });
        iterations.push(IterationInfo {
            work_qubit: w,
            role,
            measured: is_data,
            lane: l,
        });
    }
    sweep(
        circuit,
        roles,
        &sched,
        k,
        &frontier,
        &mut transformed,
        &state,
        &answer_wires,
        &result_bits,
        &mut out,
    )?;

    // Later lane members: retire the predecessor, reset the lane wire,
    // activate, sweep.
    for &w in &work_order {
        if state[w.index()] != FoldState::Pending {
            continue;
        }
        let l = sched.lane_of(w);
        let prev = active[l]
            .take()
            .expect("non-head lane member has an active predecessor");
        retire(prev, l, &mut state, &iterations, &mut out);
        if options.insert_barriers {
            out.barrier_all();
        }
        let start_len = out.len();
        out.reset(Qubit::new(l));
        state[w.index()] = FoldState::Active;
        let role = roles.role_of(w).expect("work qubit has role");
        let is_data = matches!(role, Role::Data);
        active[l] = Some(ActiveLane {
            qubit: w,
            start_len,
            index: iterations.len(),
        });
        iterations.push(IterationInfo {
            work_qubit: w,
            role,
            measured: is_data,
            lane: l,
        });
        sweep(
            circuit,
            roles,
            &sched,
            k,
            &frontier,
            &mut transformed,
            &state,
            &answer_wires,
            &result_bits,
            &mut out,
        )?;
    }

    // Final retirements (each lane's last member), in work-qubit order.
    for &w in &work_order {
        if state[w.index()] != FoldState::Active {
            continue;
        }
        let l = sched.lane_of(w);
        let act = active[l].take().expect("active qubit is on its lane");
        retire(act, l, &mut state, &iterations, &mut out);
    }

    // Final cleanup pass: gates whose every work operand is now classical.
    sweep(
        circuit,
        roles,
        &sched,
        k,
        &frontier,
        &mut transformed,
        &state,
        &answer_wires,
        &result_bits,
        &mut out,
    )?;

    emit_span.field("iterations", iterations.len());
    emit_span.field("instructions", out.len());
    drop(emit_span);

    let remaining = transformed.iter().filter(|&&t| !t).count();
    if remaining > 0 {
        return Err(DqcError::Incomplete { remaining });
    }

    let lane_wires: Vec<Qubit> = (0..k).map(Qubit::new).collect();
    let circuit_out = if options.peephole {
        let mut span = obs.span("transform.peephole");
        let before = out.len();
        // The lane wires' final states are discarded (each is either
        // measured or a spent ancilla); answer wires stay live for later
        // composition. Iterate the passes to a fixed point.
        let mut current = out;
        let cleaned = loop {
            let next = remove_dead_writes_assuming_discarded(
                &merge_conditioned_x_runs(&cancel_adjacent_inverses(&current)),
                &lane_wires,
            );
            if next.len() == current.len() {
                break next;
            }
            current = next;
        };
        span.field("before", before);
        span.field("after", cleaned.len());
        cleaned
    } else {
        out
    };

    obs.gauge_set("reuse.lanes", k as f64);
    let resets = circuit_out
        .iter()
        .filter(|i| matches!(i.kind(), OpKind::Reset))
        .count();
    obs.counter_add("reuse.resets_inserted", resets as u64);

    Ok(DynamicCircuit {
        circuit: circuit_out,
        answer_qubits: answer_wires,
        result_bits,
        iterations,
        lanes: k,
    })
}

/// One scheduling sweep: emits every currently-eligible untransformed gate,
/// in original circuit order, against the current qubit lifecycle `state`.
#[allow(clippy::too_many_arguments)]
fn sweep(
    circuit: &Circuit,
    roles: &QubitRoles,
    sched: &LaneSchedule,
    width: usize,
    frontier: &[Option<usize>],
    transformed: &mut [bool],
    state: &[FoldState],
    answer_wires: &[Qubit],
    result_bits: &[Clbit],
    out: &mut Circuit,
) -> Result<(), DqcError> {
    // Exact classical read: nothing after `idx` acts non-diagonally on
    // `q`, so the early measurement commutes with the rest of `q`'s gates.
    let sound_read = |idx: usize, q: Qubit| frontier[q.index()].is_none_or(|last| last <= idx);

    // Deferred gates and the wires on which they will still act quantumly.
    let mut deferred: Vec<(usize, Vec<Qubit>)> = Vec::new();

    'gates: for (idx, inst) in circuit.iter().enumerate() {
        if transformed[idx] {
            continue;
        }
        let OpKind::Gate(gate) = inst.kind() else {
            continue; // barriers, already marked
        };
        let qubits = inst.qubits();
        let n_ctrl = gate.num_controls();

        // Classify operands.
        let mut classical_controls: Vec<Qubit> = Vec::new();
        let mut eligible = true;
        for (k, &qb) in qubits.iter().enumerate() {
            match roles.role_of(qb) {
                Some(Role::Answer) => {}
                Some(role @ (Role::Data | Role::Ancilla)) => match state[qb.index()] {
                    FoldState::Active => {}
                    FoldState::Retired => {
                        if k < n_ctrl
                            && matches!(role, Role::Data)
                            && (width <= 1 || sound_read(idx, qb))
                        {
                            classical_controls.push(qb);
                        } else if k < n_ctrl && matches!(role, Role::Data) {
                            return Err(DqcError::Unrealizable {
                                what: inst.to_string(),
                                reason: "classical read of a control measured after \
                                         basis-changing gates is not exact (unsound \
                                         with concurrent lanes)"
                                    .into(),
                            });
                        } else {
                            return Err(DqcError::Unrealizable {
                                what: inst.to_string(),
                                reason: if matches!(role, Role::Ancilla) {
                                    "references an ancilla after its iteration \
                                     (ancillas are never measured)"
                                        .into()
                                } else {
                                    "targets a data qubit after its measurement".into()
                                },
                            });
                        }
                    }
                    FoldState::Pending => eligible = false,
                    FoldState::NonWork => unreachable!("work qubit state tracked"),
                },
                None => unreachable!("roles validated"),
            }
        }

        // Quantum wires of this gate if it were deferred: everything except
        // control reads that are certain to be classical by emission time.
        let quantum_wires_if_deferred: Vec<Qubit> = qubits
            .iter()
            .enumerate()
            .filter(|&(k, &qb)| {
                let work = !matches!(roles.role_of(qb), Some(Role::Answer));
                if !work {
                    return true; // answer wires always constrain order
                }
                let is_control = k < n_ctrl;
                let is_data = matches!(roles.role_of(qb), Some(Role::Data));
                if width <= 1 {
                    // Single lane: a data control will eventually be read
                    // classically; its wire constraint is released (the
                    // paper's approximation).
                    !(is_control && is_data)
                } else {
                    // Concurrent lanes: only release the constraint when
                    // the schedule guarantees the control retires before
                    // the gate's earliest emission step AND the early
                    // classical read is exact — otherwise the control stays
                    // a quantum ordering constraint.
                    !(is_control
                        && is_data
                        && sched.statically_classical(qb, qubits)
                        && sound_read(idx, qb))
                }
            })
            .map(|(_, &qb)| qb)
            .collect();

        if !eligible {
            deferred.push((idx, quantum_wires_if_deferred));
            continue;
        }

        // Commutation check against deferred gates' quantum wires.
        for (didx, blocked) in &deferred {
            let shares = qubits.iter().any(|q| blocked.contains(q));
            if !shares {
                continue;
            }
            let dinst = &circuit.instructions()[*didx];
            let dgate = dinst.as_gate().expect("deferred entries are gates");
            if !gates_commute(gate, qubits, dgate, dinst.qubits()) {
                deferred.push((idx, quantum_wires_if_deferred));
                continue 'gates;
            }
        }

        // Emit: drop classical controls, remap wires, attach condition.
        let reduced = reduce_controls(gate, classical_controls.len(), inst)?;
        let mut new_qubits = Vec::new();
        for (k, &qb) in qubits.iter().enumerate() {
            if k < n_ctrl && classical_controls.contains(&qb) {
                continue;
            }
            new_qubits.push(match roles.role_of(qb) {
                Some(Role::Answer) => answer_wires[roles.answer_index(qb).expect("answer indexed")],
                _ => Qubit::new(sched.lane_of(qb)),
            });
        }
        let mut emitted = if let Some(g) = reduced {
            Instruction::gate(g, new_qubits)
        } else {
            // Gate reduced away entirely (shouldn't happen: there is always
            // a target).
            unreachable!("gate reduction always leaves a target");
        };
        if !classical_controls.is_empty() {
            let bits: Vec<Clbit> = classical_controls
                .iter()
                .map(|&q| result_bits[roles.data_index(q).expect("data indexed")])
                .collect();
            let cond = if bits.len() == 1 {
                Condition::bit(bits[0])
            } else {
                let value = (1u64 << bits.len()) - 1;
                Condition::register(bits, value)
            };
            emitted = emitted.with_condition(cond);
        }
        out.push(emitted);
        transformed[idx] = true;
    }
    Ok(())
}

/// Removes `k` (classicalized) controls from a controlled gate.
fn reduce_controls(gate: &Gate, k: usize, inst: &Instruction) -> Result<Option<Gate>, DqcError> {
    if k == 0 {
        return Ok(Some(gate.clone()));
    }
    let reduced = match (gate, k) {
        (Gate::Cx, 1) => Gate::X,
        (Gate::Cy, 1) => Gate::Y,
        (Gate::Cz, 1) => Gate::Z,
        (Gate::Cp(t), 1) => Gate::P(*t),
        (Gate::Cv, 1) => Gate::V,
        (Gate::Cvdg, 1) => Gate::Vdg,
        (Gate::Ccx, 1) => Gate::Cx,
        (Gate::Ccx, 2) => Gate::X,
        (Gate::Ccz, 1) => Gate::Cz,
        (Gate::Ccz, 2) => Gate::Z,
        (Gate::Mcx(n), k) if *n >= k => match n - k {
            0 => Gate::X,
            1 => Gate::Cx,
            2 => Gate::Ccx,
            m => Gate::Mcx(m),
        },
        _ => {
            return Err(DqcError::Unrealizable {
                what: inst.to_string(),
                reason: format!("cannot classicalize {k} control(s) of gate {gate}"),
            })
        }
    };
    Ok(Some(reduced))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::CircuitStats;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn default_opts() -> TransformOptions {
        TransformOptions::default()
    }

    /// The paper's Fig. 3 BV circuit for hidden string 11 (2 data + answer).
    fn bv11() -> Circuit {
        let mut c = Circuit::new(3, 0);
        c.x(q(2)).h(q(2));
        c.h(q(0)).h(q(1));
        c.cx(q(0), q(2)).cx(q(1), q(2));
        c.h(q(0)).h(q(1));
        c
    }

    #[test]
    fn bv_transforms_to_two_qubits_two_iterations() {
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&bv11(), &roles, &default_opts()).unwrap();
        assert_eq!(d.circuit().num_qubits(), 2);
        assert_eq!(d.circuit().num_clbits(), 2);
        assert_eq!(d.num_iterations(), 2);
        assert_eq!(d.lanes(), 1);
        assert!(d.iterations().iter().all(|i| i.measured));
        assert!(d.iterations().iter().all(|i| i.lane == 0));
        let stats = CircuitStats::of(d.circuit());
        assert_eq!(stats.reset_count, 1); // between the two iterations
        assert_eq!(stats.measure_count, 2);
        assert!(d.circuit().is_dynamic());
    }

    #[test]
    fn reset_options_control_reset_count() {
        let roles = QubitRoles::data_plus_answer(3);
        let opts = TransformOptions {
            reset_first_iteration: true,
            reset_answer_qubits: true,
            ..default_opts()
        };
        let d = transform(&bv11(), &roles, &opts).unwrap();
        // 2 iteration resets + 1 answer reset.
        assert_eq!(CircuitStats::of(d.circuit()).reset_count, 3);
    }

    #[test]
    fn barriers_separate_iterations_when_requested() {
        let roles = QubitRoles::data_plus_answer(3);
        let opts = TransformOptions {
            insert_barriers: true,
            peephole: false,
            ..default_opts()
        };
        let d = transform(&bv11(), &roles, &opts).unwrap();
        assert!(d.circuit().iter().any(|i| i.is_barrier()));
    }

    #[test]
    fn data_data_cx_becomes_classically_controlled_x() {
        // CX(d0, d1) with an answer present.
        let mut c = Circuit::new(3, 0);
        c.h(q(0)).cx(q(0), q(1)).cx(q(1), q(2));
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&c, &roles, &default_opts()).unwrap();
        let conditioned: Vec<_> = d.circuit().iter().filter(|i| i.is_conditioned()).collect();
        assert_eq!(conditioned.len(), 1);
        assert_eq!(conditioned[0].as_gate(), Some(&Gate::X));
        assert_eq!(conditioned[0].qubits(), &[q(0)]); // physical data qubit
        assert_eq!(
            conditioned[0].condition(),
            Some(&Condition::bit(Clbit::new(0)))
        );
    }

    #[test]
    fn toffoli_with_two_data_controls_becomes_conditioned_cx() {
        // CCX(d0, d1, ans): in d1's iteration, d0 is classical.
        let mut c = Circuit::new(3, 0);
        c.ccx(q(0), q(1), q(2));
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&c, &roles, &default_opts()).unwrap();
        let conditioned: Vec<_> = d.circuit().iter().filter(|i| i.is_conditioned()).collect();
        assert_eq!(conditioned.len(), 1);
        assert_eq!(conditioned[0].as_gate(), Some(&Gate::Cx));
    }

    #[test]
    fn answer_gates_emit_in_first_iteration() {
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&bv11(), &roles, &default_opts()).unwrap();
        // First two instructions are the answer preparation X, H on wire 1.
        let insts = d.circuit().instructions();
        assert_eq!(insts[0].as_gate(), Some(&Gate::X));
        assert_eq!(insts[0].qubits(), &[q(1)]);
        assert_eq!(insts[1].as_gate(), Some(&Gate::H));
    }

    #[test]
    fn iteration_order_respects_case_two() {
        // CX(d1, d0): d1 must be iterated first.
        let mut c = Circuit::new(3, 0);
        c.cx(q(1), q(0)).cx(q(0), q(2));
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&c, &roles, &default_opts()).unwrap();
        assert_eq!(d.iterations()[0].work_qubit, q(1));
        assert_eq!(d.iterations()[1].work_qubit, q(0));
        // Result bit of d0 is still clbit 0.
        let measures: Vec<_> = d
            .circuit()
            .iter()
            .filter(|i| matches!(i.kind(), OpKind::Measure))
            .collect();
        assert_eq!(measures[0].clbits_written()[0], Clbit::new(1)); // d1 first
        assert_eq!(measures[1].clbits_written()[0], Clbit::new(0));
    }

    #[test]
    fn ancilla_iterations_are_not_measured() {
        // CX(d0, anc), CV(anc, ans): ancilla used as control in its own
        // iteration.
        let mut c = Circuit::new(3, 0);
        c.cx(q(0), q(1)).cv(q(1), q(2));
        let roles = QubitRoles::new(vec![q(0)], vec![q(1)], vec![q(2)]);
        let d = transform(&c, &roles, &default_opts()).unwrap();
        assert_eq!(d.num_iterations(), 2);
        assert!(!d.iterations()[1].measured);
        assert_eq!(CircuitStats::of(d.circuit()).measure_count, 1);
    }

    #[test]
    fn cyclic_data_dependency_errors() {
        let mut c = Circuit::new(3, 0);
        c.cx(q(0), q(1)).cx(q(1), q(0));
        let roles = QubitRoles::data_plus_answer(3);
        assert!(matches!(
            transform(&c, &roles, &default_opts()),
            Err(DqcError::CyclicDependency { .. })
        ));
    }

    #[test]
    fn measurement_in_input_errors() {
        let mut c = Circuit::new(2, 1);
        c.measure(q(0), Clbit::new(0));
        let roles = QubitRoles::data_plus_answer(2);
        assert!(matches!(
            transform(&c, &roles, &default_opts()),
            Err(DqcError::Unrealizable { .. })
        ));
    }

    #[test]
    fn gate_controlled_by_spent_ancilla_errors() {
        let roles = QubitRoles::new(vec![q(0)], vec![q(1)], vec![q(2)]);

        // Valid ancilla use: data feeds the ancilla, the ancilla controls
        // the answer within its own iteration.
        let mut ok = Circuit::new(3, 0);
        ok.cx(q(0), q(1)).cv(q(1), q(2)).cx(q(0), q(2));
        assert!(transform(&ok, &roles, &default_opts()).is_ok());

        // Invalid: an ancilla *controlling a data qubit* can never be
        // classicalized — ancillas are not measured.
        let mut bad = Circuit::new(3, 0);
        bad.cx(q(1), q(0));
        let err = transform(&bad, &roles, &default_opts()).unwrap_err();
        assert!(matches!(err, DqcError::Unrealizable { .. }), "{err}");
    }

    #[test]
    fn conditioned_input_errors() {
        let mut c = Circuit::new(2, 1);
        c.x_if(q(0), Clbit::new(0));
        let roles = QubitRoles::data_plus_answer(2);
        assert!(transform(&c, &roles, &default_opts()).is_err());
    }

    #[test]
    fn hoisting_requires_commutation() {
        // CV(d1, ans) sits (deferred) before CV(d0, ans): hoisting the
        // latter is fine (they commute) ...
        let mut ok = Circuit::new(3, 0);
        ok.cv(q(1), q(2)).cv(q(0), q(2));
        let roles = QubitRoles::data_plus_answer(3);
        assert!(transform(&ok, &roles, &default_opts()).is_ok());

        // ... but an H(ans) between non-commuting neighbours must keep its
        // place: CV(d1,ans); H(ans); CV(d0,ans) — in d0's iteration both
        // CV(d1,·) and H are deferred, and CV(d0,·) does not commute with H,
        // so it is deferred too and finally emitted as a *conditioned* V in
        // d1's iteration... wait, its control is d0 which measures first.
        let mut tricky = Circuit::new(3, 0);
        tricky.cv(q(1), q(2)).h(q(2)).cv(q(0), q(2));
        let d = transform(&tricky, &roles, &default_opts()).unwrap();
        // CV(d0, ans) deferred past d0's iteration must come back as a
        // classically conditioned V on the answer wire.
        let conditioned: Vec<_> = d.circuit().iter().filter(|i| i.is_conditioned()).collect();
        assert_eq!(conditioned.len(), 1);
        assert_eq!(conditioned[0].as_gate(), Some(&Gate::V));
        assert_eq!(conditioned[0].qubits()[0], q(1)); // answer wire
    }

    #[test]
    fn multi_classical_controls_use_register_condition() {
        // MCX with three data controls and an answer target: the last data
        // iteration sees two classical controls.
        let mut c = Circuit::new(4, 0);
        c.mcx(&[q(0), q(1), q(2)], q(3));
        let roles = QubitRoles::data_plus_answer(4);
        let d = transform(&c, &roles, &default_opts()).unwrap();
        let conditioned: Vec<_> = d.circuit().iter().filter(|i| i.is_conditioned()).collect();
        assert_eq!(conditioned.len(), 1);
        assert_eq!(conditioned[0].as_gate(), Some(&Gate::Cx));
        match conditioned[0].condition().unwrap() {
            Condition::Register { bits, value } => {
                assert_eq!(bits.len(), 2);
                assert_eq!(*value, 0b11);
            }
            other => panic!("expected register condition, got {other:?}"),
        }
    }

    #[test]
    fn peephole_removes_dead_uncompute_on_final_ancilla() {
        // Simulate a dynamic-2-style tail: build ancilla, use it, uncompute.
        let mut c = Circuit::new(4, 0);
        c.cx(q(0), q(3))
            .cx(q(1), q(3))
            .cv(q(3), q(2))
            .cx(q(1), q(3))
            .cx(q(0), q(3));
        let roles = QubitRoles::new(vec![q(0), q(1)], vec![q(3)], vec![q(2)]);
        let d = transform(&c, &roles, &default_opts()).unwrap();
        // Uncompute X^c pairs after the CV are dead (ancilla discarded).
        let conditioned = d.circuit().iter().filter(|i| i.is_conditioned()).count();
        assert_eq!(conditioned, 2, "{}", d.circuit());
    }

    #[test]
    fn iteration_slices_partition_the_instruction_stream() {
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&bv11(), &roles, &default_opts()).unwrap();
        let slices = d.iteration_slices();
        assert_eq!(slices.len(), d.num_iterations());
        let total: usize = slices.iter().map(|s| s.len()).sum();
        assert_eq!(total, d.circuit().len());
        // Each data iteration ends with its measurement.
        for (slice, info) in slices.iter().zip(d.iterations()) {
            if info.measured {
                assert!(matches!(slice.last().unwrap().kind(), OpKind::Measure));
            }
        }
        // Every slice after the first starts with the separating reset.
        for slice in &slices[1..] {
            assert!(matches!(slice[0].kind(), OpKind::Reset));
        }
    }

    #[test]
    fn iteration_slices_respect_leading_reset_option() {
        let roles = QubitRoles::data_plus_answer(3);
        let opts = TransformOptions {
            reset_first_iteration: true,
            ..default_opts()
        };
        let d = transform(&bv11(), &roles, &opts).unwrap();
        assert_eq!(d.iteration_slices().len(), d.num_iterations());
    }

    #[test]
    fn transform_of_empty_circuit_produces_empty_iterations() {
        let c = Circuit::new(3, 0);
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&c, &roles, &default_opts()).unwrap();
        assert_eq!(d.num_iterations(), 2);
        // Each data iteration still measures (the paper's empty iterations).
        assert_eq!(CircuitStats::of(d.circuit()).measure_count, 2);
    }

    // ---- k-lane plans -----------------------------------------------------

    #[test]
    fn full_width_plan_reproduces_the_input_gates() {
        let roles = QubitRoles::data_plus_answer(3);
        let opts = TransformOptions {
            peephole: false,
            ..default_opts()
        };
        let d = transform_with_plan(&bv11(), &roles, &ReusePlan::full_width(), &opts).unwrap();
        assert_eq!(d.lanes(), 2);
        assert_eq!(d.circuit().num_qubits(), 3);
        // No resets, no conditioning: the input gates plus final measures.
        let stats = CircuitStats::of(d.circuit());
        assert_eq!(stats.reset_count, 0);
        assert_eq!(stats.conditioned_count, 0);
        assert_eq!(stats.measure_count, 2);
        let gates: Vec<_> = d
            .circuit()
            .iter()
            .filter_map(|i| i.as_gate().cloned())
            .collect();
        let original: Vec<_> = bv11().iter().filter_map(|i| i.as_gate().cloned()).collect();
        assert_eq!(gates, original);
    }

    #[test]
    fn single_lane_and_plan_free_transform_agree() {
        let roles = QubitRoles::data_plus_answer(3);
        let a = transform(&bv11(), &roles, &default_opts()).unwrap();
        let b = transform_with_plan(&bv11(), &roles, &ReusePlan::single_lane(), &default_opts())
            .unwrap();
        assert_eq!(a.circuit().instructions(), b.circuit().instructions());
        assert_eq!(a.iterations(), b.iterations());
    }

    #[test]
    fn two_lane_plan_keeps_data_data_interaction_quantum() {
        // CX(d0, d1) on separate lanes stays a quantum CX between wires.
        let mut c = Circuit::new(3, 0);
        c.h(q(0)).cx(q(0), q(1)).cx(q(1), q(2));
        let roles = QubitRoles::data_plus_answer(3);
        let plan = ReusePlan::from_lanes(vec![vec![q(0)], vec![q(1)]]);
        let d = transform_with_plan(&c, &roles, &plan, &default_opts()).unwrap();
        assert_eq!(d.lanes(), 2);
        let stats = CircuitStats::of(d.circuit());
        assert_eq!(stats.conditioned_count, 0);
        assert_eq!(stats.reset_count, 0);
        assert_eq!(stats.measure_count, 2);
        assert!(d
            .circuit()
            .iter()
            .any(|i| i.as_gate() == Some(&Gate::Cx) && i.qubits() == [q(0), q(1)]));
    }

    #[test]
    fn invalid_plan_is_rejected() {
        let roles = QubitRoles::data_plus_answer(3);
        // Lane order violates the iteration (register) order.
        let plan = ReusePlan::from_lanes(vec![vec![q(1)], vec![q(0)]]);
        assert!(matches!(
            transform_with_plan(&bv11(), &roles, &plan, &default_opts()),
            Err(DqcError::InvalidPlan { .. })
        ));
    }

    #[test]
    fn lane_slices_track_each_lane_replay() {
        // 4 work qubits on 2 lanes: 2 replays per lane.
        let mut c = Circuit::new(5, 0);
        for d in 0..4 {
            c.h(q(d)).cx(q(d), q(4));
        }
        let roles = QubitRoles::data_plus_answer(5);
        let plan = ReusePlan::from_lanes(vec![vec![q(0), q(2)], vec![q(1), q(3)]]);
        let d = transform_with_plan(&c, &roles, &plan, &default_opts()).unwrap();
        assert_eq!(d.lanes(), 2);
        assert_eq!(d.num_iterations(), 4);
        assert_eq!(d.lane_slices(0).len(), 2);
        assert_eq!(d.lane_slices(1).len(), 2);
        // Lane assignment matches the plan.
        let lanes_of: Vec<usize> = d.iterations().iter().map(|i| i.lane).collect();
        let members: Vec<Qubit> = d.iterations().iter().map(|i| i.work_qubit).collect();
        assert_eq!(members, vec![q(0), q(1), q(2), q(3)]);
        assert_eq!(lanes_of, vec![0, 1, 0, 1]);
        // Width is 2 lanes + 1 answer; all four data qubits measured.
        assert_eq!(d.circuit().num_qubits(), 3);
        assert_eq!(CircuitStats::of(d.circuit()).measure_count, 4);
    }

    #[test]
    fn unsound_classical_read_is_rejected_for_concurrent_lanes() {
        // CX(d0, d1) followed by H(d0): reading d0 classically is the
        // paper's approximation — the measurement lands after the H. The
        // single-lane scheme accepts it; a multi-lane plan that would need
        // the same read must be rejected (it is not exact).
        let mut c = Circuit::new(4, 0);
        c.h(q(0)).cx(q(0), q(1)).h(q(0)).cx(q(1), q(3)).h(q(2));
        let roles = QubitRoles::data_plus_answer(4);
        assert!(
            transform(&c, &roles, &default_opts()).is_ok(),
            "single lane keeps the paper's approximation"
        );
        // Lanes [[d0, d1], [d2]]: d0 retires when d1 activates, so
        // CX(d0, d1) needs the classical read — unsound, H(d0) follows.
        let plan = ReusePlan::from_lanes(vec![vec![q(0), q(1)], vec![q(2)]]);
        let err = transform_with_plan(&c, &roles, &plan, &default_opts()).unwrap_err();
        assert!(matches!(err, DqcError::Unrealizable { .. }), "{err}");
    }
}
