//! The paper's named transformation schemes: dynamic-1 and dynamic-2.
//!
//! Both schemes first lower every Toffoli gate to two-qubit primitives and
//! then run Algorithm 1 ([`crate::transform`]):
//!
//! * **dynamic-1** uses the 5-gate CV/CV†/CX network (paper Eqn 1/2). The
//!   `CX`s between the two control qubits become classically controlled X
//!   gates, conditioned on measurement results taken *after* the controls'
//!   basis-changing gates — an approximation that costs accuracy.
//! * **dynamic-2** first unrolls each Toffoli over one shared clean ancilla
//!   (paper Eqn 3/4, with the sharing of Lemma 1), so control qubits never
//!   interact with each other directly; the cost is one extra iteration and
//!   two extra classically controlled X gates per Toffoli.

use crate::error::DqcError;
use crate::roles::QubitRoles;
use crate::transform::{transform_observed, DynamicCircuit, TransformOptions};
use qcir::decompose::{decompose_ccx, ToffoliStyle};
use qcir::{Circuit, Gate, Qubit};
use qobs::Observer;
use std::fmt;

/// Which dynamic realization of Toffoli gates to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DynamicScheme {
    /// No Toffoli lowering: `CCX` gates with data controls are turned into
    /// classically conditioned `CX`/`X` directly. Not described in the
    /// paper; provided as a baseline.
    Direct,
    /// The paper's **dynamic-1** (Eqn 2): Barenco CV-chain decomposition.
    Dynamic1,
    /// The paper's **dynamic-2** (Eqn 4): ancilla-unrolled CV decomposition
    /// with Lemma 1 ancilla sharing (one extra iteration total).
    Dynamic2,
}

impl fmt::Display for DynamicScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DynamicScheme::Direct => "direct",
            DynamicScheme::Dynamic1 => "dynamic-1",
            DynamicScheme::Dynamic2 => "dynamic-2",
        };
        f.write_str(name)
    }
}

/// Lowers Toffolis according to `scheme` and applies Algorithm 1.
///
/// For [`DynamicScheme::Dynamic2`] the shared ancilla wire introduced by the
/// decomposition is appended to the role partition as an ancilla, adding one
/// iteration (Lemma 1).
///
/// # Errors
///
/// Propagates every error of [`transform`].
///
/// # Examples
///
/// ```
/// use dqc::{transform_with_scheme, DynamicScheme, QubitRoles, TransformOptions};
/// use qcir::{Circuit, Qubit};
///
/// let q = Qubit::new;
/// let mut circ = Circuit::new(3, 0);
/// circ.h(q(0)).h(q(1)).ccx(q(0), q(1), q(2));
/// let roles = QubitRoles::data_plus_answer(3);
/// let opts = TransformOptions::default();
///
/// let d1 = transform_with_scheme(&circ, &roles, DynamicScheme::Dynamic1, &opts).unwrap();
/// let d2 = transform_with_scheme(&circ, &roles, DynamicScheme::Dynamic2, &opts).unwrap();
/// assert_eq!(d1.num_iterations(), 2);
/// assert_eq!(d2.num_iterations(), 3); // one extra iteration (Lemma 1)
/// ```
pub fn transform_with_scheme(
    circuit: &Circuit,
    roles: &QubitRoles,
    scheme: DynamicScheme,
    options: &TransformOptions,
) -> Result<DynamicCircuit, DqcError> {
    transform_with_scheme_observed(circuit, roles, scheme, options, &Observer::disabled())
}

/// [`transform_with_scheme`] with instrumentation: a `transform.lower`
/// span covers the Toffoli lowering (with `scheme` and before/after
/// instruction counts as fields), then delegates to
/// [`transform_observed`](crate::transform_observed).
///
/// # Errors
///
/// Same as [`transform_with_scheme`].
pub fn transform_with_scheme_observed(
    circuit: &Circuit,
    roles: &QubitRoles,
    scheme: DynamicScheme,
    options: &TransformOptions,
    obs: &Observer,
) -> Result<DynamicCircuit, DqcError> {
    let (lowered, roles) = lower_for_scheme(circuit, roles, scheme, obs);
    transform_observed(&lowered, &roles, options, obs)
}

/// Lowers Toffolis according to `scheme` without running Algorithm 1: the
/// shared front half of [`transform_with_scheme_observed`] and the reuse
/// planner ([`crate::plan_with_scheme`]), which transforms the lowered
/// circuit many times under different lane plans.
///
/// Returns the lowered circuit together with the (possibly extended) role
/// partition — dynamic-2 appends the decomposition's shared ancilla wires.
pub(crate) fn lower_for_scheme(
    circuit: &Circuit,
    roles: &QubitRoles,
    scheme: DynamicScheme,
    obs: &Observer,
) -> (Circuit, QubitRoles) {
    match scheme {
        DynamicScheme::Direct => (circuit.clone(), roles.clone()),
        DynamicScheme::Dynamic1 => {
            let mut span = obs.span("transform.lower");
            span.field("scheme", "dynamic-1");
            span.field("before", circuit.len());
            let oriented = orient_toffolis(circuit, roles);
            let lowered = decompose_ccx(&oriented, ToffoliStyle::CvChain);
            span.field("after", lowered.len());
            (lowered, roles.clone())
        }
        DynamicScheme::Dynamic2 => {
            let mut roles = roles.clone();
            let mut span = obs.span("transform.lower");
            span.field("scheme", "dynamic-2");
            span.field("before", circuit.len());
            let ancillas = qcir::decompose::cv_ancilla_wires(circuit);
            let lowered = decompose_ccx(circuit, ToffoliStyle::CvAncilla);
            for a in ancillas {
                roles = roles.with_extra_ancilla(a);
            }
            span.field("after", lowered.len());
            (lowered, roles)
        }
    }
}

/// Reorders each Toffoli's (symmetric) control pair so that the control
/// earlier in the work-qubit order comes first.
///
/// The Barenco CV-chain decomposition places its `CX`s from the first
/// control to the second, which in turn forces the first control's
/// iteration before the second's (Case 2). Without this normalization a
/// network like the CARRY oracle's Toffolis on control pairs (a,b), (b,c),
/// (c,a) yields a *cyclic* dependency and no dynamic-1 realization — a
/// subtlety the paper leaves implicit.
fn orient_toffolis(circuit: &Circuit, roles: &QubitRoles) -> Circuit {
    let work = roles.work_qubits();
    let pos = |q: Qubit| work.iter().position(|&w| w == q).unwrap_or(usize::MAX);
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        circuit.num_qubits(),
        circuit.num_clbits(),
    );
    for inst in circuit.iter() {
        match inst.as_gate() {
            Some(Gate::Ccx) if !inst.is_conditioned() => {
                let q = inst.qubits();
                let (c0, c1) = if pos(q[0]) <= pos(q[1]) {
                    (q[0], q[1])
                } else {
                    (q[1], q[0])
                };
                out.ccx(c0, c1, q[2]);
            }
            _ => {
                out.push(inst.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::CircuitStats;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    /// DJ oracle for AND: prepare answer, Hadamard data, Toffoli, Hadamard.
    fn dj_and() -> Circuit {
        let mut c = Circuit::new(3, 0);
        c.x(q(2)).h(q(2));
        c.h(q(0)).h(q(1));
        c.ccx(q(0), q(1), q(2));
        c.h(q(0)).h(q(1));
        c
    }

    #[test]
    fn all_schemes_produce_two_qubit_circuits() {
        let roles = QubitRoles::data_plus_answer(3);
        for scheme in [
            DynamicScheme::Direct,
            DynamicScheme::Dynamic1,
            DynamicScheme::Dynamic2,
        ] {
            let d = transform_with_scheme(&dj_and(), &roles, scheme, &TransformOptions::default())
                .unwrap();
            assert_eq!(d.circuit().num_qubits(), 2, "{scheme}");
            assert_eq!(d.circuit().num_clbits(), 2, "{scheme}");
        }
    }

    #[test]
    fn dynamic2_adds_exactly_one_iteration() {
        let roles = QubitRoles::data_plus_answer(3);
        let opts = TransformOptions::default();
        let d1 = transform_with_scheme(&dj_and(), &roles, DynamicScheme::Dynamic1, &opts).unwrap();
        let d2 = transform_with_scheme(&dj_and(), &roles, DynamicScheme::Dynamic2, &opts).unwrap();
        assert_eq!(d1.num_iterations(), 2);
        assert_eq!(d2.num_iterations(), 3);
        assert_eq!(CircuitStats::of(d2.circuit()).reset_count, 2);
    }

    #[test]
    fn lemma1_shares_one_iteration_across_toffolis() {
        // Two Toffolis on the same target: still just one extra iteration.
        let mut c = Circuit::new(4, 0);
        c.ccx(q(0), q(1), q(3)).ccx(q(1), q(2), q(3));
        let roles = QubitRoles::data_plus_answer(4);
        let d = transform_with_scheme(
            &c,
            &roles,
            DynamicScheme::Dynamic2,
            &TransformOptions::default(),
        )
        .unwrap();
        assert_eq!(d.num_iterations(), 4); // 3 data + 1 shared ancilla
    }

    #[test]
    fn dynamic2_costs_two_conditioned_x_per_toffoli() {
        // The paper's headline cost claim for dynamic-2: one extra reset
        // plus two extra classically controlled X per Toffoli.
        let roles = QubitRoles::data_plus_answer(3);
        let opts = TransformOptions::default();
        let d2 = transform_with_scheme(&dj_and(), &roles, DynamicScheme::Dynamic2, &opts).unwrap();
        let s2 = CircuitStats::of(d2.circuit());
        assert_eq!(s2.conditioned_count, 2, "{}", d2.circuit());

        // Three Toffolis on a common target (the CARRY/MAJ oracle): 6.
        let mut carry = Circuit::new(4, 0);
        carry.x(q(3)).h(q(3));
        for d in 0..3 {
            carry.h(q(d));
        }
        carry
            .ccx(q(0), q(1), q(3))
            .ccx(q(1), q(2), q(3))
            .ccx(q(2), q(0), q(3));
        for d in 0..3 {
            carry.h(q(d));
        }
        let roles4 = QubitRoles::data_plus_answer(4);
        let dc = transform_with_scheme(&carry, &roles4, DynamicScheme::Dynamic2, &opts).unwrap();
        let sc = CircuitStats::of(dc.circuit());
        assert_eq!(sc.conditioned_count, 6, "{}", dc.circuit());
    }

    #[test]
    fn dynamic1_uses_conditioned_x_between_controls() {
        let roles = QubitRoles::data_plus_answer(3);
        let d1 = transform_with_scheme(
            &dj_and(),
            &roles,
            DynamicScheme::Dynamic1,
            &TransformOptions::default(),
        )
        .unwrap();
        let s = CircuitStats::of(d1.circuit());
        // Barenco chain has two CX between the controls.
        assert_eq!(s.conditioned_count, 2);
        // And no ancilla iteration: only one reset.
        assert_eq!(s.reset_count, 1);
    }

    #[test]
    fn gate_count_ordering_matches_paper_tables() {
        // Table II shape: tradi < dynamic-1 < dynamic-2 in gate count.
        let roles = QubitRoles::data_plus_answer(3);
        let opts = TransformOptions::default();
        let d1 = transform_with_scheme(&dj_and(), &roles, DynamicScheme::Dynamic1, &opts).unwrap();
        let d2 = transform_with_scheme(&dj_and(), &roles, DynamicScheme::Dynamic2, &opts).unwrap();
        let g1 = CircuitStats::of(d1.circuit()).gate_count;
        let g2 = CircuitStats::of(d2.circuit()).gate_count;
        assert!(
            g1 < g2,
            "dynamic-1 ({g1}) should be smaller than dynamic-2 ({g2})"
        );
    }

    #[test]
    fn toffoli_free_circuits_are_scheme_independent() {
        let mut bv = Circuit::new(3, 0);
        bv.x(q(2)).h(q(2));
        bv.h(q(0)).cx(q(0), q(2)).h(q(0));
        bv.h(q(1)).cx(q(1), q(2)).h(q(1));
        let roles = QubitRoles::data_plus_answer(3);
        let opts = TransformOptions::default();
        let d1 = transform_with_scheme(&bv, &roles, DynamicScheme::Dynamic1, &opts).unwrap();
        let d2 = transform_with_scheme(&bv, &roles, DynamicScheme::Dynamic2, &opts).unwrap();
        assert_eq!(d1.circuit().instructions(), d2.circuit().instructions());
    }

    #[test]
    fn scheme_display_names() {
        assert_eq!(DynamicScheme::Dynamic1.to_string(), "dynamic-1");
        assert_eq!(DynamicScheme::Dynamic2.to_string(), "dynamic-2");
        assert_eq!(DynamicScheme::Direct.to_string(), "direct");
    }
}
