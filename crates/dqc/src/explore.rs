//! Design-space exploration: one dynamic realization per feasible width.
//!
//! Where the planner ([`crate::plan_with_scheme`]) answers "give me the best
//! plan", [`explore`] answers "show me the whole trade-off": for every
//! physical width `k ∈ 1..=m` with a feasible lane plan it emits the
//! best-scoring dynamic circuit, its resource summary and (optionally) an
//! exact equivalence check against the traditional circuit. The result is
//! the width/depth Pareto data behind `bench reuse_sweep` and the paper's
//! extended design space.

use crate::cost::{CostModel, ResourceSummary};
use crate::error::DqcError;
use crate::reuse::{plan_with_scheme_observed, ReuseMode};
use crate::roles::QubitRoles;
use crate::scheme::DynamicScheme;
use crate::transform::{DynamicCircuit, TransformOptions};
use crate::verify::{self, EquivalenceReport};
use qcir::Circuit;
use qobs::Observer;

/// One point of the reuse design space: the best plan at a fixed width.
#[derive(Debug, Clone)]
pub struct ReusePoint {
    /// The physical width (number of lanes).
    pub k: usize,
    /// The selected lane assignment (lowered-circuit qubit ids).
    pub lanes: Vec<Vec<qcir::Qubit>>,
    /// The emitted dynamic circuit.
    pub dynamic: DynamicCircuit,
    /// Resource summary of the emitted circuit.
    pub summary: ResourceSummary,
    /// Cost-model score (lower is better).
    pub score: f64,
    /// Exact traditional-vs-dynamic equivalence report, when requested.
    pub verify: Option<EquivalenceReport>,
}

/// Options for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Toffoli lowering scheme.
    pub scheme: DynamicScheme,
    /// Scoring model used to pick the best plan at each width.
    pub cost: CostModel,
    /// Options forwarded to the transformation.
    pub transform: TransformOptions,
    /// Run the exact statevector equivalence check per point. Exponential
    /// in the answer count + width; fine for the seeded suites.
    pub verify: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            scheme: DynamicScheme::Dynamic2,
            cost: CostModel::default(),
            transform: TransformOptions::default(),
            verify: true,
        }
    }
}

/// Sweeps every feasible width, returning one [`ReusePoint`] per width in
/// increasing-`k` order. Widths with no feasible plan are skipped (the
/// planner's static filter plus transform attempts decide feasibility).
///
/// # Errors
///
/// Propagates the underlying error when *no* width at all is feasible
/// (role/ordering defects); an empty result is never returned silently.
pub fn explore(
    circuit: &Circuit,
    roles: &QubitRoles,
    options: &ExploreOptions,
) -> Result<Vec<ReusePoint>, DqcError> {
    explore_observed(circuit, roles, options, &Observer::disabled())
}

/// [`explore`] with instrumentation forwarded to the planner and transform.
///
/// # Errors
///
/// Same as [`explore`].
pub fn explore_observed(
    circuit: &Circuit,
    roles: &QubitRoles,
    options: &ExploreOptions,
    obs: &Observer,
) -> Result<Vec<ReusePoint>, DqcError> {
    // One probe run discovers m (the work-qubit count after lowering).
    let (probe, report) = plan_with_scheme_observed(
        circuit,
        roles,
        options.scheme,
        ReuseMode::Off,
        &options.cost,
        &options.transform,
        obs,
    )?;
    let m = report.max_width;
    let mut points = Vec::new();
    for k in 1..=m.max(1) {
        let planned = if k == m.max(1) {
            // Reuse the probe: Off is exactly the k = m plan.
            Some((probe.clone(), report.clone()))
        } else {
            plan_with_scheme_observed(
                circuit,
                roles,
                options.scheme,
                ReuseMode::Width(k),
                &options.cost,
                &options.transform,
                obs,
            )
            .ok()
        };
        let Some((dynamic, rep)) = planned else {
            continue;
        };
        let summary = ResourceSummary::of_dynamic(&dynamic);
        let verify = options
            .verify
            .then(|| verify::compare_observed(circuit, roles, &dynamic, obs));
        points.push(ReusePoint {
            k,
            lanes: rep.lanes,
            dynamic,
            summary,
            score: rep.score,
            verify,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Qubit;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    /// BV(11): 2 data + 1 answer, Toffoli-free.
    fn bv11() -> Circuit {
        let mut c = Circuit::new(3, 0);
        c.x(q(2)).h(q(2));
        c.h(q(0)).h(q(1));
        c.cx(q(0), q(2)).cx(q(1), q(2));
        c.h(q(0)).h(q(1));
        c
    }

    #[test]
    fn explore_covers_every_width_for_bv() {
        let roles = QubitRoles::data_plus_answer(3);
        let points = explore(&bv11(), &roles, &ExploreOptions::default()).unwrap();
        let ks: Vec<usize> = points.iter().map(|p| p.k).collect();
        assert_eq!(ks, vec![1, 2]);
        // Width grows, depth shrinks along the sweep.
        assert_eq!(points[0].summary.qubits, 2);
        assert_eq!(points[1].summary.qubits, 3);
        assert!(points[0].summary.depth >= points[1].summary.depth);
        // Every point is exactly equivalent to the traditional circuit.
        for p in &points {
            let v = p.verify.as_ref().unwrap();
            assert!(v.equivalent(1e-10), "k={} tvd={}", p.k, v.tvd);
        }
    }

    #[test]
    fn explore_handles_toffolis_via_lowering() {
        let mut dj = Circuit::new(3, 0);
        dj.x(q(2)).h(q(2));
        dj.h(q(0)).h(q(1));
        dj.ccx(q(0), q(1), q(2));
        dj.h(q(0)).h(q(1));
        let roles = QubitRoles::data_plus_answer(3);
        let points = explore(&dj, &roles, &ExploreOptions::default()).unwrap();
        // Dynamic-2 lowering adds a shared ancilla (max width 3). k = 2 has
        // no *exact* plan: every 2-lane schedule would classicalize only one
        // of the ancilla's control reads, which is unsound (the control is
        // measured after its closing Hadamard) — the planner must skip it.
        let ks: Vec<usize> = points.iter().map(|p| p.k).collect();
        assert_eq!(ks, vec![1, 3]);
        for p in &points {
            assert!(p.verify.as_ref().unwrap().equivalent(1e-10), "k={}", p.k);
        }
    }
}
