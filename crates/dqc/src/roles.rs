//! Qubit role assignment: data, ancilla and answer qubits.
//!
//! The paper's Algorithm 1 takes the qubit partition as an input: *data*
//! qubits carry the algorithm's input register (each becomes one iteration
//! of the dynamic circuit and one classical result bit), *ancilla* qubits
//! are scratch work qubits (they also become iterations, but are never
//! measured), and *answer* qubits survive as physical qubits of the dynamic
//! circuit.

use crate::error::DqcError;
use qcir::{Circuit, Qubit};

/// The role a qubit plays in the dynamic transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Input-register qubit: replayed on the single physical data qubit and
    /// measured into the classical result register.
    Data,
    /// Clean scratch qubit: replayed on the physical data qubit, never
    /// measured.
    Ancilla,
    /// Output qubit: kept as a physical qubit of the dynamic circuit.
    Answer,
}

/// A complete role partition of a circuit's qubits.
///
/// # Examples
///
/// ```
/// use dqc::{QubitRoles, Role};
/// use qcir::Qubit;
///
/// let roles = QubitRoles::new(
///     vec![Qubit::new(0), Qubit::new(1)], // data
///     vec![],                              // ancilla
///     vec![Qubit::new(2)],                 // answer
/// );
/// assert_eq!(roles.role_of(Qubit::new(0)), Some(Role::Data));
/// assert_eq!(roles.num_qubits(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QubitRoles {
    data: Vec<Qubit>,
    ancilla: Vec<Qubit>,
    answer: Vec<Qubit>,
}

impl QubitRoles {
    /// Creates a role partition from explicit lists.
    #[must_use]
    pub fn new(data: Vec<Qubit>, ancilla: Vec<Qubit>, answer: Vec<Qubit>) -> Self {
        Self {
            data,
            ancilla,
            answer,
        }
    }

    /// The common benchmark layout: qubits `0..n-1` are data, qubit `n-1`
    /// is the answer (no ancillas).
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0`.
    #[must_use]
    pub fn data_plus_answer(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "need at least one qubit");
        Self::new(
            (0..num_qubits - 1).map(Qubit::new).collect(),
            Vec::new(),
            vec![Qubit::new(num_qubits - 1)],
        )
    }

    /// Data qubits, in register order (this order fixes the classical
    /// result-bit layout of the dynamic circuit).
    #[must_use]
    pub fn data(&self) -> &[Qubit] {
        &self.data
    }

    /// Ancilla qubits.
    #[must_use]
    pub fn ancilla(&self) -> &[Qubit] {
        &self.ancilla
    }

    /// Answer qubits, in register order.
    #[must_use]
    pub fn answer(&self) -> &[Qubit] {
        &self.answer
    }

    /// Total number of qubits across all roles.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.data.len() + self.ancilla.len() + self.answer.len()
    }

    /// The role of `qubit`, or `None` when unassigned.
    #[must_use]
    pub fn role_of(&self, qubit: Qubit) -> Option<Role> {
        if self.data.contains(&qubit) {
            Some(Role::Data)
        } else if self.ancilla.contains(&qubit) {
            Some(Role::Ancilla)
        } else if self.answer.contains(&qubit) {
            Some(Role::Answer)
        } else {
            None
        }
    }

    /// The work qubits (data then ancilla) before Case-2 reordering.
    #[must_use]
    pub fn work_qubits(&self) -> Vec<Qubit> {
        self.data.iter().chain(&self.ancilla).copied().collect()
    }

    /// Position of a data qubit in the data register (its classical bit).
    #[must_use]
    pub fn data_index(&self, qubit: Qubit) -> Option<usize> {
        self.data.iter().position(|&q| q == qubit)
    }

    /// Position of an answer qubit in the answer register.
    #[must_use]
    pub fn answer_index(&self, qubit: Qubit) -> Option<usize> {
        self.answer.iter().position(|&q| q == qubit)
    }

    /// Returns a copy with one more ancilla appended (used when a Toffoli
    /// decomposition introduces a shared ancilla wire).
    #[must_use]
    pub fn with_extra_ancilla(&self, qubit: Qubit) -> Self {
        let mut out = self.clone();
        out.ancilla.push(qubit);
        out
    }

    /// Validates the partition against a circuit: every circuit qubit has
    /// exactly one role and no role references a missing wire.
    ///
    /// # Errors
    ///
    /// Returns [`DqcError::InvalidRoles`] describing the first defect found.
    pub fn validate(&self, circuit: &Circuit) -> Result<(), DqcError> {
        let n = circuit.num_qubits();
        let mut seen = vec![0usize; n];
        for q in self.data.iter().chain(&self.ancilla).chain(&self.answer) {
            if q.index() >= n {
                return Err(DqcError::InvalidRoles {
                    reason: format!("{q} does not exist in a {n}-qubit circuit"),
                });
            }
            seen[q.index()] += 1;
            if seen[q.index()] > 1 {
                return Err(DqcError::InvalidRoles {
                    reason: format!("{q} assigned more than one role"),
                });
            }
        }
        if let Some(idx) = seen.iter().position(|&c| c == 0) {
            return Err(DqcError::InvalidRoles {
                reason: format!("q{idx} has no role"),
            });
        }
        if self.answer.is_empty() {
            return Err(DqcError::InvalidRoles {
                reason: "at least one answer qubit is required".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn data_plus_answer_layout() {
        let roles = QubitRoles::data_plus_answer(3);
        assert_eq!(roles.data(), &[q(0), q(1)]);
        assert_eq!(roles.answer(), &[q(2)]);
        assert!(roles.ancilla().is_empty());
        assert_eq!(roles.num_qubits(), 3);
    }

    #[test]
    fn role_lookup() {
        let roles = QubitRoles::new(vec![q(0)], vec![q(1)], vec![q(2)]);
        assert_eq!(roles.role_of(q(0)), Some(Role::Data));
        assert_eq!(roles.role_of(q(1)), Some(Role::Ancilla));
        assert_eq!(roles.role_of(q(2)), Some(Role::Answer));
        assert_eq!(roles.role_of(q(3)), None);
    }

    #[test]
    fn indices_follow_register_order() {
        let roles = QubitRoles::new(vec![q(2), q(0)], vec![], vec![q(1), q(3)]);
        assert_eq!(roles.data_index(q(2)), Some(0));
        assert_eq!(roles.data_index(q(0)), Some(1));
        assert_eq!(roles.answer_index(q(3)), Some(1));
        assert_eq!(roles.data_index(q(1)), None);
    }

    #[test]
    fn work_qubits_are_data_then_ancilla() {
        let roles = QubitRoles::new(vec![q(0), q(1)], vec![q(3)], vec![q(2)]);
        assert_eq!(roles.work_qubits(), vec![q(0), q(1), q(3)]);
    }

    #[test]
    fn with_extra_ancilla_appends() {
        let roles = QubitRoles::data_plus_answer(3).with_extra_ancilla(q(3));
        assert_eq!(roles.ancilla(), &[q(3)]);
    }

    #[test]
    fn validation_accepts_exact_partition() {
        let c = Circuit::new(3, 0);
        assert!(QubitRoles::data_plus_answer(3).validate(&c).is_ok());
    }

    #[test]
    fn validation_rejects_missing_qubit() {
        let c = Circuit::new(3, 0);
        let roles = QubitRoles::new(vec![q(0)], vec![], vec![q(2)]);
        let err = roles.validate(&c).unwrap_err();
        assert!(err.to_string().contains("q1 has no role"));
    }

    #[test]
    fn validation_rejects_duplicate_role() {
        let c = Circuit::new(2, 0);
        let roles = QubitRoles::new(vec![q(0), q(0)], vec![], vec![q(1)]);
        assert!(roles.validate(&c).is_err());
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let c = Circuit::new(2, 0);
        let roles = QubitRoles::new(vec![q(0)], vec![], vec![q(5)]);
        assert!(roles.validate(&c).is_err());
    }

    #[test]
    fn validation_requires_an_answer() {
        let c = Circuit::new(2, 0);
        let roles = QubitRoles::new(vec![q(0), q(1)], vec![], vec![]);
        assert!(roles.validate(&c).is_err());
    }
}
