//! One-stop pipeline: transform, verify and account in a single call.
//!
//! [`Pipeline`] bundles the scheme choice, transformation options and
//! verification into the call shape most users want: give it a traditional
//! circuit and a role partition, get back the dynamic circuit together with
//! its equivalence report and resource comparison.

use crate::cost::{CostModel, ResourceSummary};
use crate::error::DqcError;
use crate::reuse::{plan_with_scheme_observed, ReuseMode, ReuseReport};
use crate::roles::QubitRoles;
use crate::scheme::{transform_with_scheme_observed, DynamicScheme};
use crate::transform::{DynamicCircuit, TransformOptions};
use crate::verify::{self, EquivalenceReport};
use qcir::Circuit;
use qobs::{Observer, Tracer};
use std::fmt;

/// A configured transform-verify-account pipeline.
///
/// # Examples
///
/// ```
/// use dqc::{Pipeline, DynamicScheme, QubitRoles};
/// use qcir::{Circuit, Qubit};
///
/// let q = Qubit::new;
/// let mut circ = Circuit::new(3, 0);
/// circ.x(q(2)).h(q(2));
/// circ.h(q(0)).h(q(1));
/// circ.ccx(q(0), q(1), q(2));
/// circ.h(q(0)).h(q(1));
///
/// let result = Pipeline::new()
///     .scheme(DynamicScheme::Dynamic2)
///     .run(&circ, &QubitRoles::data_plus_answer(3))?;
/// assert!(result.report.equivalent(1e-10));
/// assert_eq!(result.dynamic.circuit().num_qubits(), 2);
/// # Ok::<(), dqc::DqcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    scheme: DynamicScheme,
    options: TransformOptions,
    compare_answers: bool,
    reuse: Option<ReuseMode>,
    cost: CostModel,
    observer: Observer,
    tracer: Tracer,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    /// A pipeline using [`DynamicScheme::Dynamic2`] (the paper's accurate
    /// scheme) and default options.
    #[must_use]
    pub fn new() -> Self {
        Self {
            scheme: DynamicScheme::Dynamic2,
            options: TransformOptions::default(),
            compare_answers: false,
            reuse: None,
            cost: CostModel::default(),
            observer: Observer::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    /// Enables reuse planning: instead of the fixed single-data-qubit
    /// scheme, the planner searches lane plans per [`ReuseMode`] (a fixed
    /// width, `off` for no reuse, or `auto` for the best cost-model score)
    /// and the run's [`PipelineResult::reuse`] reports the selection.
    /// Without this call the paper's `k = 1` path runs unchanged.
    #[must_use]
    pub fn reuse(mut self, mode: ReuseMode) -> Self {
        self.reuse = Some(mode);
        self
    }

    /// Overrides the cost model scoring reuse plans (only consulted when
    /// [`Pipeline::reuse`] is set).
    #[must_use]
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Selects the Toffoli realization scheme.
    #[must_use]
    pub fn scheme(mut self, scheme: DynamicScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Overrides the transformation options.
    #[must_use]
    pub fn options(mut self, options: TransformOptions) -> Self {
        self.options = options;
        self
    }

    /// Also measures the answer qubits when verifying (for algorithms whose
    /// output lives on answer qubits).
    #[must_use]
    pub fn compare_answers(mut self, yes: bool) -> Self {
        self.compare_answers = yes;
        self
    }

    /// Attaches an observability handle: every stage of
    /// [`Pipeline::run`] records a span (`pipeline.transform`,
    /// `pipeline.verify`, `pipeline.account`) into its metrics registry,
    /// and the transformation itself emits its finer-grained spans and
    /// events (see [`crate::transform_observed`]).
    ///
    /// The default is [`Observer::disabled`], under which every
    /// instrumentation call is a no-op branch.
    #[must_use]
    pub fn observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Attaches a tracing handle: every stage of [`Pipeline::run`] records
    /// a phase span (`pipeline.transform`, `pipeline.verify`,
    /// `pipeline.account`) on the trace's top-level lane, alongside the
    /// observer's metric spans. Simulation phases traced by downstream
    /// callers (e.g. `qsim::Executor::tracer`) share the same tracer, so
    /// one Chrome export shows the full transform→verify→simulate
    /// timeline. The default [`Tracer::disabled`] costs one branch per
    /// stage.
    #[must_use]
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Runs the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`DqcError::InvalidCircuit`] when the input fails
    /// [`Circuit::validate`] (the pipeline is an ingestion boundary for
    /// untrusted QASM), and otherwise propagates every error of
    /// [`transform_with_scheme`](crate::transform_with_scheme).
    pub fn run(&self, circuit: &Circuit, roles: &QubitRoles) -> Result<PipelineResult, DqcError> {
        circuit
            .validate()
            .map_err(|source| DqcError::InvalidCircuit { source })?;
        let obs = &self.observer;
        let mut phases = self.tracer.top_local();
        let (dynamic, reuse) = {
            let mut span = obs.span("pipeline.transform");
            span.field("scheme", self.scheme.to_string());
            span.field("qubits", circuit.num_qubits());
            span.field("instructions", circuit.len());
            if let Some(mode) = self.reuse {
                span.field("reuse", mode.to_string());
            }
            if let Some(t) = phases.as_mut() {
                t.begin("pipeline.transform");
            }
            let outcome = match self.reuse {
                Some(mode) => plan_with_scheme_observed(
                    circuit,
                    roles,
                    self.scheme,
                    mode,
                    &self.cost,
                    &self.options,
                    obs,
                )
                .map(|(d, r)| (d, Some(r))),
                None => {
                    transform_with_scheme_observed(circuit, roles, self.scheme, &self.options, obs)
                        .map(|d| (d, None))
                }
            };
            if let Some(t) = phases.as_mut() {
                t.end();
            }
            outcome?
        };
        let report = {
            let _span = obs.span("pipeline.verify");
            if let Some(t) = phases.as_mut() {
                t.begin("pipeline.verify");
            }
            let report = if self.compare_answers {
                verify::compare_with_answers_observed(circuit, roles, &dynamic, obs)
            } else {
                verify::compare_observed(circuit, roles, &dynamic, obs)
            };
            if let Some(t) = phases.as_mut() {
                t.end();
            }
            report
        };
        let (traditional, resources, fusion) = {
            let _span = obs.span("pipeline.account");
            if let Some(t) = phases.as_mut() {
                t.begin("pipeline.account");
            }
            // Fusion accounting: how much of the dynamic circuit the prefix
            // shot engine can collapse into single matrices before sampling.
            let fusion = qcir::fuse(dynamic.circuit()).stats();
            let summaries = (
                ResourceSummary::of_circuit(circuit),
                ResourceSummary::of_dynamic(&dynamic),
                fusion,
            );
            if let Some(t) = phases.as_mut() {
                t.end();
            }
            summaries
        };
        if let Some(t) = phases {
            self.tracer.submit(t.into_events());
        }
        obs.counter_add("pipeline.runs", 1);
        obs.gauge_set("pipeline.last_tvd", report.tvd);
        obs.gauge_set("pipeline.fusion_blocks", fusion.blocks as f64);
        obs.gauge_set("pipeline.fusion_gates_fused", fusion.gates_fused as f64);
        obs.event(
            "pipeline.result",
            &[
                ("scheme", self.scheme.to_string().into()),
                ("iterations", dynamic.num_iterations().into()),
                (
                    "qubit_saving",
                    traditional.qubits.saturating_sub(resources.qubits).into(),
                ),
                ("tvd", report.tvd.into()),
            ],
        );
        Ok(PipelineResult {
            scheme: self.scheme,
            dynamic,
            report,
            traditional,
            resources,
            reuse,
            fusion,
        })
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The scheme that was used.
    pub scheme: DynamicScheme,
    /// The dynamic realization.
    pub dynamic: DynamicCircuit,
    /// Exact equivalence report against the traditional circuit.
    pub report: EquivalenceReport,
    /// Resource summary of the traditional circuit.
    pub traditional: ResourceSummary,
    /// Resource summary of the dynamic circuit.
    pub resources: ResourceSummary,
    /// The reuse planner's report, when [`Pipeline::reuse`] was set.
    pub reuse: Option<ReuseReport>,
    /// Gate-fusion statistics of the dynamic circuit: how many adjacent
    /// unitary runs the prefix shot engine collapses into single matrices.
    pub fusion: qcir::FusionStats,
}

impl PipelineResult {
    /// Qubits saved by the dynamic realization.
    #[must_use]
    pub fn qubit_saving(&self) -> usize {
        self.traditional
            .qubits
            .saturating_sub(self.resources.qubits)
    }

    /// Depth overhead factor of the dynamic realization.
    #[must_use]
    pub fn depth_overhead(&self) -> f64 {
        self.resources.depth as f64 / self.traditional.depth.max(1) as f64
    }
}

impl fmt::Display for PipelineResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} qubits, depth x{:.2}, {} iterations, tvd {:.4}",
            self.scheme,
            self.traditional.qubits,
            self.resources.qubits,
            self.depth_overhead(),
            self.resources.iterations.unwrap_or(0),
            self.report.tvd
        )?;
        if let Some(reuse) = &self.reuse {
            write!(f, ", reuse[{reuse}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Qubit;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn dj_and() -> Circuit {
        let mut c = Circuit::new(3, 0);
        c.x(q(2)).h(q(2));
        c.h(q(0)).h(q(1));
        c.ccx(q(0), q(1), q(2));
        c.h(q(0)).h(q(1));
        c
    }

    #[test]
    fn default_pipeline_uses_dynamic2() {
        let result = Pipeline::new()
            .run(&dj_and(), &QubitRoles::data_plus_answer(3))
            .unwrap();
        assert_eq!(result.scheme, DynamicScheme::Dynamic2);
        assert!(result.report.equivalent(1e-10));
        assert_eq!(result.qubit_saving(), 1);
        assert!(result.depth_overhead() > 1.0);
    }

    #[test]
    fn scheme_override_changes_accuracy() {
        let roles = QubitRoles::data_plus_answer(3);
        let d1 = Pipeline::new()
            .scheme(DynamicScheme::Dynamic1)
            .run(&dj_and(), &roles)
            .unwrap();
        assert!(d1.report.tvd > 0.2);
    }

    #[test]
    fn options_are_forwarded() {
        let roles = QubitRoles::data_plus_answer(3);
        let result = Pipeline::new()
            .options(TransformOptions {
                reset_first_iteration: true,
                ..TransformOptions::default()
            })
            .run(&dj_and(), &roles)
            .unwrap();
        assert_eq!(result.resources.resets, 3); // 3 iterations, all reset
    }

    #[test]
    fn pipeline_accounts_gate_fusion_of_the_dynamic_circuit() {
        let obs = qobs::Observer::metrics_only();
        let result = Pipeline::new()
            .observer(obs.clone())
            .run(&dj_and(), &QubitRoles::data_plus_answer(3))
            .unwrap();
        // The dynamic realization interleaves unitary runs with measure /
        // reset, so fusion finds at least one multi-gate block.
        assert!(result.fusion.blocks > 0, "{:?}", result.fusion);
        assert!(result.fusion.gates_fused >= 2 * result.fusion.blocks);
        let m = obs.metrics();
        assert_eq!(
            m.gauge("pipeline.fusion_blocks"),
            Some(result.fusion.blocks as f64)
        );
        assert_eq!(
            m.gauge("pipeline.fusion_gates_fused"),
            Some(result.fusion.gates_fused as f64)
        );
    }

    #[test]
    fn reuse_auto_reports_the_selected_width() {
        let roles = QubitRoles::data_plus_answer(3);
        let result = Pipeline::new()
            .reuse(ReuseMode::Auto)
            .run(&dj_and(), &roles)
            .unwrap();
        let reuse = result.reuse.as_ref().expect("reuse mode was set");
        assert_eq!(reuse.mode, ReuseMode::Auto);
        assert_eq!(result.dynamic.lanes(), reuse.k);
        assert!(result.report.equivalent(1e-10));
        assert!(result.to_string().contains("reuse["));
    }

    #[test]
    fn reuse_off_reproduces_the_traditional_width() {
        let roles = QubitRoles::data_plus_answer(3);
        let result = Pipeline::new()
            .reuse(ReuseMode::Off)
            .run(&dj_and(), &roles)
            .unwrap();
        let reuse = result.reuse.as_ref().expect("reuse mode was set");
        // Dynamic-2 lowering adds one shared ancilla: 2 data + ancilla.
        assert_eq!(reuse.k, 3);
        assert_eq!(result.qubit_saving(), 0);
        assert!(result.report.equivalent(1e-10));
    }

    #[test]
    fn reuse_width_one_matches_the_legacy_path() {
        let roles = QubitRoles::data_plus_answer(3);
        let legacy = Pipeline::new().run(&dj_and(), &roles).unwrap();
        let planned = Pipeline::new()
            .reuse(ReuseMode::Width(1))
            .run(&dj_and(), &roles)
            .unwrap();
        assert!(legacy.reuse.is_none());
        assert_eq!(
            qcir::qasm::to_qasm(planned.dynamic.circuit()),
            qcir::qasm::to_qasm(legacy.dynamic.circuit())
        );
    }

    #[test]
    fn reuse_infeasible_width_errors() {
        let roles = QubitRoles::data_plus_answer(3);
        let err = Pipeline::new()
            .reuse(ReuseMode::Width(7))
            .run(&dj_and(), &roles)
            .unwrap_err();
        assert!(matches!(err, DqcError::InvalidPlan { .. }), "{err}");
    }

    #[test]
    fn answer_comparison_extends_keys() {
        let roles = QubitRoles::data_plus_answer(3);
        let result = Pipeline::new()
            .compare_answers(true)
            .run(&dj_and(), &roles)
            .unwrap();
        assert_eq!(result.report.expected_outcome.len(), 3);
    }

    #[test]
    fn malformed_circuit_is_rejected_with_a_typed_error() {
        // A condition with bypassed smart-constructor invariants used to
        // reach the transform/simulator and panic; the pipeline's validate
        // pass now rejects it up front.
        use qcir::{Condition, Gate, Instruction};
        let mut bad = dj_and();
        bad.push(
            Instruction::gate(Gate::X, vec![q(0)]).with_condition(Condition::Register {
                bits: vec![],
                value: 0,
            }),
        );
        let err = Pipeline::new()
            .run(&bad, &QubitRoles::data_plus_answer(3))
            .unwrap_err();
        assert!(matches!(err, DqcError::InvalidCircuit { .. }), "{err}");
        assert!(err.to_string().starts_with("invalid input circuit:"));
    }

    #[test]
    fn errors_propagate() {
        let mut cyclic = Circuit::new(3, 0);
        cyclic.cx(q(0), q(1)).cx(q(1), q(0));
        let err = Pipeline::new()
            .run(&cyclic, &QubitRoles::data_plus_answer(3))
            .unwrap_err();
        assert!(matches!(err, DqcError::CyclicDependency { .. }));
    }

    #[test]
    fn observer_records_stage_spans_and_events() {
        let sink = std::sync::Arc::new(qobs::CollectingSink::new());
        let obs = Observer::with_sink(sink.clone());
        Pipeline::new()
            .observer(obs.clone())
            .run(&dj_and(), &QubitRoles::data_plus_answer(3))
            .unwrap();
        let names = sink.span_names();
        for expected in [
            "transform.lower",
            "transform.roles",
            "transform.reorder",
            "transform.emit",
            "transform.peephole",
            "verify.equivalence",
            "pipeline.transform",
            "pipeline.verify",
            "pipeline.account",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        // Per-stage timing histograms exist.
        for h in ["pipeline.transform_ns", "verify.equivalence_ns"] {
            assert_eq!(obs.metrics().histogram(h).unwrap().count, 1, "{h}");
        }
        assert_eq!(obs.metrics().counter("pipeline.runs"), Some(1));
        // One transform.iteration event per iteration (dynamic-2 on one
        // Toffoli: 2 data + 1 shared ancilla = 3).
        let iteration_events = sink
            .events()
            .iter()
            .filter(|e| e.name == "transform.iteration")
            .count();
        assert_eq!(iteration_events, 3);
    }

    #[test]
    fn tracer_records_phase_spans_on_the_top_lane() {
        let tracer = Tracer::test();
        Pipeline::new()
            .tracer(tracer.clone())
            .run(&dj_and(), &QubitRoles::data_plus_answer(3))
            .unwrap();
        let begins: Vec<&str> = tracer
            .events()
            .iter()
            .filter_map(|e| match e {
                qobs::TraceEvent::Begin { name, tid, .. } => {
                    assert_eq!(*tid, qobs::trace::TOP_TID);
                    Some(*name)
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            begins,
            vec!["pipeline.transform", "pipeline.verify", "pipeline.account"]
        );
        let json = tracer.export_chrome();
        assert!(qobs::json::validate(&json).is_ok(), "{json}");
        // Deterministic: a second identical run on a fresh tracer exports
        // byte-identical JSON under the test clock.
        let tracer2 = Tracer::test();
        Pipeline::new()
            .tracer(tracer2.clone())
            .run(&dj_and(), &QubitRoles::data_plus_answer(3))
            .unwrap();
        assert_eq!(json, tracer2.export_chrome());
    }

    #[test]
    fn disabled_observer_leaves_registry_empty() {
        let obs = Observer::disabled();
        Pipeline::new()
            .observer(obs.clone())
            .run(&dj_and(), &QubitRoles::data_plus_answer(3))
            .unwrap();
        assert!(obs.metrics().is_empty());
    }

    #[test]
    fn display_summarizes() {
        let result = Pipeline::new()
            .run(&dj_and(), &QubitRoles::data_plus_answer(3))
            .unwrap();
        let text = result.to_string();
        assert!(text.contains("dynamic-2"));
        assert!(text.contains("tvd"));
    }
}
