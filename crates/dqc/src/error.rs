//! Errors raised by the dynamic-circuit transformation.

use qcir::{CircuitError, Qubit};
use std::error::Error;
use std::fmt;

/// Errors from role assignment, reordering or the transformation itself.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DqcError {
    /// The input circuit failed [`qcir::Circuit::validate`] — out-of-range
    /// wires or structurally invalid conditions, typically from corrupted
    /// or hand-written QASM.
    InvalidCircuit {
        /// The underlying well-formedness violation.
        source: CircuitError,
    },
    /// The role partition does not cover the circuit's qubits exactly once.
    InvalidRoles {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// The data/ancilla interaction graph is cyclic, so no iteration order
    /// satisfies the paper's Case 2 (controls before targets).
    CyclicDependency {
        /// Work qubits involved in the unresolved cycle.
        qubits: Vec<Qubit>,
    },
    /// The input circuit contains an operation the transformation cannot
    /// realize dynamically (e.g. a swap between two data qubits, a gate
    /// targeting an already-measured data qubit, or a non-unitary input op).
    Unrealizable {
        /// Rendering of the offending instruction.
        what: String,
        /// Why it cannot be realized.
        reason: String,
    },
    /// Internal scheduling failure: gates remained untransformed after all
    /// iterations (indicates an unsupported dependency pattern).
    Incomplete {
        /// Number of instructions left untransformed.
        remaining: usize,
    },
    /// A reuse plan does not partition the work qubits into ordered lanes,
    /// or no feasible plan exists for the requested physical width.
    InvalidPlan {
        /// Human-readable description of the defect.
        reason: String,
    },
}

impl fmt::Display for DqcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DqcError::InvalidCircuit { source } => write!(f, "invalid input circuit: {source}"),
            DqcError::InvalidRoles { reason } => write!(f, "invalid qubit roles: {reason}"),
            DqcError::CyclicDependency { qubits } => {
                write!(f, "cyclic data-qubit dependency among ")?;
                for (i, q) in qubits.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{q}")?;
                }
                Ok(())
            }
            DqcError::Unrealizable { what, reason } => {
                write!(f, "cannot realize dynamically: {what} ({reason})")
            }
            DqcError::Incomplete { remaining } => {
                write!(
                    f,
                    "transformation left {remaining} instruction(s) unscheduled"
                )
            }
            DqcError::InvalidPlan { reason } => write!(f, "invalid reuse plan: {reason}"),
        }
    }
}

impl Error for DqcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = DqcError::InvalidRoles {
            reason: "qubit q1 unassigned".into(),
        };
        assert!(e.to_string().contains("q1"));

        let e = DqcError::CyclicDependency {
            qubits: vec![Qubit::new(0), Qubit::new(2)],
        };
        assert_eq!(e.to_string(), "cyclic data-qubit dependency among q0, q2");

        let e = DqcError::Unrealizable {
            what: "swap q0 q1".into(),
            reason: "swap between data qubits".into(),
        };
        assert!(e.to_string().contains("swap"));

        let e = DqcError::Incomplete { remaining: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DqcError>();
    }
}
