//! Functional-equivalence verification of dynamic circuits.
//!
//! The paper validates its transformation by simulating traditional and
//! dynamic circuits 1024 times and comparing outcome probabilities. This
//! module does the same *exactly*: both sides are evaluated by
//! measurement-branch enumeration, so equality can be asserted to numerical
//! precision with no shot noise, and the accuracy gap of a scheme (the
//! paper's Fig. 7) is a well-defined number.

use crate::roles::QubitRoles;
use crate::transform::DynamicCircuit;
use qcir::{Circuit, Clbit};
use qobs::Observer;
use qsim::branch::exact_distribution;
use qsim::Distribution;
use std::fmt;

/// The outcome of comparing a traditional circuit with a dynamic
/// realization.
///
/// `expected_outcome` is the most probable outcome of the *traditional*
/// circuit (ties broken lexicographically) — the paper's "expected outcome"
/// whose probability Fig. 7 tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceReport {
    /// Exact outcome distribution of the traditional circuit (data register).
    pub traditional: Distribution,
    /// Exact outcome distribution of the dynamic circuit (result register).
    pub dynamic: Distribution,
    /// Total variation distance between the two.
    pub tvd: f64,
    /// Most probable traditional outcome.
    pub expected_outcome: String,
    /// Its probability under the traditional circuit.
    pub p_traditional: f64,
    /// Its probability under the dynamic circuit.
    pub p_dynamic: f64,
}

impl EquivalenceReport {
    /// `true` when the distributions agree within `tol` total variation.
    #[must_use]
    pub fn equivalent(&self, tol: f64) -> bool {
        self.tvd <= tol
    }
}

impl fmt::Display for EquivalenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tvd={:.6} expected='{}' p_tradi={:.4} p_dyn={:.4}",
            self.tvd, self.expected_outcome, self.p_traditional, self.p_dynamic
        )
    }
}

/// Exact outcome distribution of a traditional circuit's **data register**:
/// the circuit is run ideally and each data qubit is measured into the
/// classical bit given by its position in `roles.data()` — the same bit
/// layout the dynamic transformation uses, so keys are directly comparable.
///
/// # Panics
///
/// Panics if the circuit already uses classical bits (benchmark circuits
/// are measurement-free by construction).
#[must_use]
pub fn traditional_distribution(circuit: &Circuit, roles: &QubitRoles) -> Distribution {
    assert_eq!(
        circuit.num_clbits(),
        0,
        "traditional benchmark circuits must be measurement-free"
    );
    let mut measured = Circuit::new(circuit.num_qubits(), roles.data().len());
    measured.extend(circuit);
    for (i, &d) in roles.data().iter().enumerate() {
        measured.measure(d, Clbit::new(i));
    }
    exact_distribution(&measured)
}

/// Exact outcome distribution of a dynamic circuit's result register.
#[must_use]
pub fn dynamic_distribution(dynamic: &DynamicCircuit) -> Distribution {
    exact_distribution(dynamic.circuit())
}

/// Compares a traditional circuit against a dynamic realization of it.
#[must_use]
pub fn compare(
    circuit: &Circuit,
    roles: &QubitRoles,
    dynamic: &DynamicCircuit,
) -> EquivalenceReport {
    compare_observed(circuit, roles, dynamic, &Observer::disabled())
}

/// [`compare`] with instrumentation: the exact equivalence check runs
/// inside a `verify.equivalence` span carrying the resulting `tvd` and the
/// two distributions' outcome counts as fields.
#[must_use]
pub fn compare_observed(
    circuit: &Circuit,
    roles: &QubitRoles,
    dynamic: &DynamicCircuit,
    obs: &Observer,
) -> EquivalenceReport {
    let mut span = obs.span("verify.equivalence");
    let traditional = traditional_distribution(circuit, roles);
    let dyn_dist = dynamic_distribution(dynamic);
    let tvd = traditional.tvd(&dyn_dist);
    span.field("tvd", tvd);
    span.field("traditional_outcomes", traditional.len());
    span.field("dynamic_outcomes", dyn_dist.len());
    let expected = traditional.argmax().unwrap_or_default().to_string();
    let p_traditional = traditional.get(&expected);
    let p_dynamic = dyn_dist.get(&expected);
    EquivalenceReport {
        traditional,
        dynamic: dyn_dist,
        tvd,
        expected_outcome: expected,
        p_traditional,
        p_dynamic,
    }
}

/// Compares while additionally measuring the given *answer* qubits on both
/// sides (traditional answer qubits vs. the dynamic circuit's corresponding
/// physical answer wires), for algorithms whose output lives on answer
/// qubits.
#[must_use]
pub fn compare_with_answers(
    circuit: &Circuit,
    roles: &QubitRoles,
    dynamic: &DynamicCircuit,
) -> EquivalenceReport {
    compare_with_answers_observed(circuit, roles, dynamic, &Observer::disabled())
}

/// [`compare_with_answers`] with instrumentation; see [`compare_observed`].
#[must_use]
pub fn compare_with_answers_observed(
    circuit: &Circuit,
    roles: &QubitRoles,
    dynamic: &DynamicCircuit,
    obs: &Observer,
) -> EquivalenceReport {
    let mut span = obs.span("verify.equivalence");
    span.field("with_answers", true);
    // Traditional side: measure data (register order) then answers above.
    let n_data = roles.data().len();
    let n_ans = roles.answer().len();
    let mut measured = Circuit::new(circuit.num_qubits(), n_data + n_ans);
    measured.extend(circuit);
    for (i, &d) in roles.data().iter().enumerate() {
        measured.measure(d, Clbit::new(i));
    }
    for (i, &a) in roles.answer().iter().enumerate() {
        measured.measure(a, Clbit::new(n_data + i));
    }
    let traditional = exact_distribution(&measured);

    // Dynamic side: extend with answer measurements.
    let mut dyn_measured = Circuit::new(dynamic.circuit().num_qubits(), n_data + n_ans);
    dyn_measured.extend(dynamic.circuit());
    for (i, &a) in dynamic.answer_qubits().iter().enumerate() {
        dyn_measured.measure(a, Clbit::new(n_data + i));
    }
    let dyn_dist = exact_distribution(&dyn_measured);

    let tvd = traditional.tvd(&dyn_dist);
    span.field("tvd", tvd);
    span.field("traditional_outcomes", traditional.len());
    span.field("dynamic_outcomes", dyn_dist.len());
    let expected = traditional.argmax().unwrap_or_default().to_string();
    let p_traditional = traditional.get(&expected);
    let p_dynamic = dyn_dist.get(&expected);
    EquivalenceReport {
        traditional,
        dynamic: dyn_dist,
        tvd,
        expected_outcome: expected,
        p_traditional,
        p_dynamic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{transform_with_scheme, DynamicScheme};
    use crate::transform::{transform, TransformOptions};
    use qcir::Qubit;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    /// BV circuit for a given hidden string over `n` data qubits.
    fn bv(bits: &[bool]) -> Circuit {
        let n = bits.len();
        let ans = q(n);
        let mut c = Circuit::new(n + 1, 0);
        c.x(ans).h(ans);
        for i in 0..n {
            c.h(q(i));
        }
        for (i, &b) in bits.iter().enumerate() {
            if b {
                c.cx(q(i), ans);
            }
        }
        for i in 0..n {
            c.h(q(i));
        }
        c
    }

    #[test]
    fn bv_dynamic_is_exactly_equivalent() {
        for bits in [
            vec![true, true],
            vec![true, false, true],
            vec![false, false, true, true],
        ] {
            let circ = bv(&bits);
            let roles = QubitRoles::data_plus_answer(bits.len() + 1);
            let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
            let report = compare(&circ, &roles, &d);
            assert!(report.equivalent(1e-10), "bv {bits:?}: {report}");
            // BV output is deterministic: the hidden string itself.
            assert!((report.p_traditional - 1.0).abs() < 1e-10);
            assert!((report.p_dynamic - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn expected_outcome_is_the_hidden_string() {
        let circ = bv(&[true, false, true]);
        let roles = QubitRoles::data_plus_answer(4);
        let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
        let report = compare(&circ, &roles, &d);
        // data bits (s0,s1,s2) = (1,0,1), key is MSB-first: "101".
        assert_eq!(report.expected_outcome, "101");
    }

    /// DJ circuit for the XOR oracle (balanced): deterministic output 11.
    fn dj_xor() -> Circuit {
        let mut c = Circuit::new(3, 0);
        c.x(q(2)).h(q(2));
        c.h(q(0)).h(q(1));
        c.cx(q(0), q(2)).cx(q(1), q(2));
        c.h(q(0)).h(q(1));
        c
    }

    #[test]
    fn dj_xor_dynamic_is_exactly_equivalent() {
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&dj_xor(), &roles, &TransformOptions::default()).unwrap();
        let report = compare(&dj_xor(), &roles, &d);
        assert!(report.equivalent(1e-10), "{report}");
        assert_eq!(report.expected_outcome, "11");
    }

    /// DJ circuit for the AND oracle (one Toffoli).
    fn dj_and() -> Circuit {
        let mut c = Circuit::new(3, 0);
        c.x(q(2)).h(q(2));
        c.h(q(0)).h(q(1));
        c.ccx(q(0), q(1), q(2));
        c.h(q(0)).h(q(1));
        c
    }

    #[test]
    fn dynamic2_exactly_reproduces_single_toffoli_dj() {
        let roles = QubitRoles::data_plus_answer(3);
        let d2 = transform_with_scheme(
            &dj_and(),
            &roles,
            DynamicScheme::Dynamic2,
            &TransformOptions::default(),
        )
        .unwrap();
        let report = compare(&dj_and(), &roles, &d2);
        assert!(report.equivalent(1e-10), "{report}");
    }

    #[test]
    fn dynamic1_loses_accuracy_on_toffoli_dj() {
        // The paper's central observation: dynamic-1's classically
        // controlled CX between the Toffoli controls destroys coherence.
        let roles = QubitRoles::data_plus_answer(3);
        let d1 = transform_with_scheme(
            &dj_and(),
            &roles,
            DynamicScheme::Dynamic1,
            &TransformOptions::default(),
        )
        .unwrap();
        let report = compare(&dj_and(), &roles, &d1);
        assert!(
            report.tvd > 0.2,
            "dynamic-1 should deviate substantially, got {report}"
        );
    }

    #[test]
    fn dynamic2_beats_dynamic1_in_tvd() {
        let roles = QubitRoles::data_plus_answer(3);
        let opts = TransformOptions::default();
        let d1 = transform_with_scheme(&dj_and(), &roles, DynamicScheme::Dynamic1, &opts).unwrap();
        let d2 = transform_with_scheme(&dj_and(), &roles, DynamicScheme::Dynamic2, &opts).unwrap();
        let r1 = compare(&dj_and(), &roles, &d1);
        let r2 = compare(&dj_and(), &roles, &d2);
        assert!(
            r2.tvd < r1.tvd,
            "dynamic-2 (tvd {:.4}) should beat dynamic-1 (tvd {:.4})",
            r2.tvd,
            r1.tvd
        );
    }

    #[test]
    fn answer_qubit_comparison_includes_phase_register() {
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&dj_xor(), &roles, &TransformOptions::default()).unwrap();
        let report = compare_with_answers(&dj_xor(), &roles, &d);
        assert!(report.equivalent(1e-10), "{report}");
        // Keys now have 3 bits: answer + 2 data.
        assert!(report.expected_outcome.len() == 3);
    }

    #[test]
    #[should_panic(expected = "measurement-free")]
    fn traditional_distribution_rejects_classical_bits() {
        let mut c = Circuit::new(2, 1);
        c.measure(q(0), Clbit::new(0));
        let roles = QubitRoles::data_plus_answer(2);
        let _ = traditional_distribution(&c, &roles);
    }
}
