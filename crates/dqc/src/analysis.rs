//! Static exactness analysis of the dynamic transformation.
//!
//! Algorithm 1's only approximation is *measure-then-classically-control*:
//! a gate between two work qubits is replayed with its control read from
//! that qubit's measurement record. The substitution is exact precisely
//! when the measurement commutes forward to the gate's original position —
//! i.e. when every later operation on the control wire is diagonal there
//! (a Z-basis operation: a phase-type gate, or serving as a control).
//!
//! This module checks that condition statically, classifying a circuit as
//! [`Exactness::Exact`] (the dynamic realization provably reproduces the
//! traditional distribution — BV, Simon, QPE) or
//! [`Exactness::Approximate`] with the list of offending gate pairs (DJ
//! with Toffolis, Grover). The integration tests validate the verdicts
//! against exact total-variation distances.

use crate::reorder::reorder_work_qubits;
use crate::roles::{QubitRoles, Role};
use qcir::{Circuit, Gate, OpKind, Qubit};
use std::fmt;

/// The verdict of [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exactness {
    /// No classicalized control is followed by a non-diagonal operation on
    /// its wire: the dynamic realization is exactly equivalent.
    Exact,
    /// Some classicalized controls are read in the wrong basis; the
    /// realization is (in general) approximate.
    Approximate {
        /// For each offending pair: the index of the classicalized gate and
        /// the index of the later non-diagonal gate on its control wire.
        conflicts: Vec<Conflict>,
    },
}

/// A basis conflict found by the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// Index of the gate whose control will be classicalized.
    pub classicalized: usize,
    /// The control qubit involved.
    pub control: Qubit,
    /// Index of the later gate acting non-diagonally on that wire.
    pub disturbance: usize,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate #{} reads {} classically, but gate #{} later rotates it",
            self.classicalized, self.control, self.disturbance
        )
    }
}

/// The full analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DqcAnalysis {
    /// The exactness verdict.
    pub exactness: Exactness,
    /// Number of gates that will be classicalized (work-to-work
    /// interactions).
    pub classicalized_gates: usize,
}

impl DqcAnalysis {
    /// `true` when the verdict is [`Exactness::Exact`].
    #[must_use]
    pub fn is_exact(&self) -> bool {
        matches!(self.exactness, Exactness::Exact)
    }
}

/// `true` when `gate`'s action on operand position `pos` is diagonal in the
/// computational basis (and hence commutes with a Z measurement of that
/// wire): control positions always are; target positions only for
/// diagonal gates.
fn diagonal_on(gate: &Gate, pos: usize) -> bool {
    pos < gate.num_controls() || gate.is_diagonal()
}

/// Statically classifies the dynamic realization of `circuit` under
/// `roles`.
///
/// The verdict is *sound for exactness*: [`Exactness::Exact`] implies the
/// transformed circuit's outcome distribution equals the traditional one
/// (assuming the transformation succeeds). [`Exactness::Approximate`] is
/// conservative — specific circuits may still happen to match (e.g. when
/// the traditional distribution is already a product distribution, as for
/// the paper's single-Toffoli DJ benchmarks under dynamic-2).
///
/// # Errors
///
/// Propagates ordering errors from
/// [`reorder_work_qubits`](crate::reorder_work_qubits) (cyclic or
/// unrealizable interactions), since those circuits have no dynamic
/// realization to analyze.
pub fn analyze(circuit: &Circuit, roles: &QubitRoles) -> Result<DqcAnalysis, crate::DqcError> {
    roles.validate(circuit)?;
    let work_order = reorder_work_qubits(circuit, roles)?;
    let order_of = |q: Qubit| work_order.iter().position(|&w| w == q);
    let insts = circuit.instructions();
    let mut conflicts = Vec::new();
    let mut classicalized = 0usize;

    for (idx, inst) in insts.iter().enumerate() {
        let OpKind::Gate(g) = inst.kind() else {
            continue;
        };
        let qubits = inst.qubits();
        let n_ctrl = g.num_controls();
        if n_ctrl == 0 {
            continue;
        }
        let target = qubits[qubits.len() - 1];
        let target_is_work = !matches!(roles.role_of(target), Some(Role::Answer));
        let work_controls: Vec<Qubit> = qubits[..n_ctrl]
            .iter()
            .copied()
            .filter(|&c| !matches!(roles.role_of(c), Some(Role::Answer)))
            .collect();
        // Which controls get read classically? For a work-target gate, all
        // of them (the gate runs in the target's iteration). For an
        // answer-target gate, the gate runs in the *last* work control's
        // iteration, so every other work control is classicalized.
        let surviving_quantum_control: Option<Qubit> = if target_is_work {
            None
        } else {
            work_controls
                .iter()
                .copied()
                .max_by_key(|&c| order_of(c).unwrap_or(usize::MAX))
        };
        for &ctrl in &work_controls {
            if Some(ctrl) == surviving_quantum_control {
                continue;
            }
            classicalized += 1;
            // Find later gates acting non-diagonally on the control wire.
            for (later_idx, later) in insts.iter().enumerate().skip(idx + 1) {
                let OpKind::Gate(lg) = later.kind() else {
                    continue;
                };
                if let Some(wire_pos) = later.qubits().iter().position(|&q| q == ctrl) {
                    if !diagonal_on(lg, wire_pos) {
                        conflicts.push(Conflict {
                            classicalized: idx,
                            control: ctrl,
                            disturbance: later_idx,
                        });
                        break; // first disturbance is enough per pair
                    }
                }
            }
        }
    }

    Ok(DqcAnalysis {
        exactness: if conflicts.is_empty() {
            Exactness::Exact
        } else {
            Exactness::Approximate { conflicts }
        },
        classicalized_gates: classicalized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn bv_style_circuits_are_exact() {
        let mut c = Circuit::new(3, 0);
        c.x(q(2)).h(q(2));
        c.h(q(0)).cx(q(0), q(2)).h(q(0));
        c.h(q(1)).cx(q(1), q(2)).h(q(1));
        let a = analyze(&c, &QubitRoles::data_plus_answer(3)).unwrap();
        assert!(a.is_exact());
        assert_eq!(a.classicalized_gates, 0);
    }

    #[test]
    fn qft_style_phase_cascades_are_exact() {
        // CP between data qubits, with the control's H *before* the CP:
        // the semiclassical-QFT pattern.
        let mut c = Circuit::new(4, 0);
        c.h(q(0));
        c.cp(0.5, q(0), q(1)); // classicalized, but only diagonals follow on q0
        c.cp(0.25, q(0), q(2)); // another diagonal control use
        c.h(q(1));
        let roles = QubitRoles::data_plus_answer(4);
        let a = analyze(&c, &roles).unwrap();
        assert!(a.is_exact(), "{:?}", a.exactness);
        assert_eq!(a.classicalized_gates, 2);
    }

    #[test]
    fn hadamard_after_classicalized_control_is_flagged() {
        // The dynamic-1 pattern: CX(d0, d1) then H(d0).
        let mut c = Circuit::new(3, 0);
        c.h(q(0)).cx(q(0), q(1)).h(q(0)).cx(q(1), q(2));
        let roles = QubitRoles::data_plus_answer(3);
        let a = analyze(&c, &roles).unwrap();
        match a.exactness {
            Exactness::Approximate { ref conflicts } => {
                assert_eq!(conflicts.len(), 1);
                assert_eq!(conflicts[0].classicalized, 1);
                assert_eq!(conflicts[0].control, q(0));
                assert_eq!(conflicts[0].disturbance, 2);
                assert!(conflicts[0].to_string().contains("q0"));
            }
            Exactness::Exact => panic!("should be approximate"),
        }
    }

    #[test]
    fn x_after_control_also_counts_as_disturbance() {
        // X permutes the basis: the recorded bit no longer matches the
        // value at the gate's time.
        let mut c = Circuit::new(3, 0);
        c.cx(q(0), q(1)).x(q(0));
        let a = analyze(&c, &QubitRoles::data_plus_answer(3)).unwrap();
        assert!(!a.is_exact());
    }

    #[test]
    fn diagonal_followups_do_not_disturb() {
        let mut c = Circuit::new(3, 0);
        c.cx(q(0), q(1)).t(q(0)).z(q(0)).cz(q(0), q(2));
        let a = analyze(&c, &QubitRoles::data_plus_answer(3)).unwrap();
        assert!(a.is_exact());
        assert_eq!(a.classicalized_gates, 1);
    }

    #[test]
    fn answer_target_gates_are_not_classicalized() {
        let mut c = Circuit::new(3, 0);
        c.h(q(0)).cv(q(0), q(2)).h(q(0)); // H after a *quantum* control: fine
        let a = analyze(&c, &QubitRoles::data_plus_answer(3)).unwrap();
        assert!(a.is_exact());
        assert_eq!(a.classicalized_gates, 0);
    }

    #[test]
    fn multi_control_answer_targets_classicalize_all_but_last_control() {
        // CCX(d0, d1, ans): d0 is read classically in d1's iteration, and
        // the closing Hadamards disturb it. (Found by the property suite:
        // the first version of this analysis missed answer-target gates.)
        let mut c = Circuit::new(3, 0);
        c.h(q(0)).h(q(1)).ccx(q(0), q(1), q(2)).h(q(0)).h(q(1));
        let a = analyze(&c, &QubitRoles::data_plus_answer(3)).unwrap();
        assert_eq!(a.classicalized_gates, 1);
        assert!(!a.is_exact());

        // Without the closing Hadamard on d0, the classical read is safe.
        let mut ok = Circuit::new(3, 0);
        ok.h(q(0)).h(q(1)).ccx(q(0), q(1), q(2)).h(q(1));
        let a = analyze(&ok, &QubitRoles::data_plus_answer(3)).unwrap();
        assert!(a.is_exact());
        assert_eq!(a.classicalized_gates, 1);
    }

    #[test]
    fn analysis_propagates_ordering_errors() {
        let mut c = Circuit::new(3, 0);
        c.cx(q(0), q(1)).cx(q(1), q(0));
        assert!(analyze(&c, &QubitRoles::data_plus_answer(3)).is_err());
    }
}
