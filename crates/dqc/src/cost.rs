//! Resource accounting for traditional-vs-dynamic comparisons.
//!
//! The quantities of the paper's Tables I and II: qubit count, gate count
//! and depth, plus the dynamic-circuit-specific costs (iterations, resets,
//! measurements, classically controlled operations).

use crate::transform::DynamicCircuit;
use qcir::{Circuit, CircuitStats};
use std::fmt;

/// A one-line resource summary of a circuit.
///
/// # Examples
///
/// ```
/// use dqc::ResourceSummary;
/// use qcir::{Circuit, Qubit};
///
/// let mut c = Circuit::new(2, 0);
/// c.h(Qubit::new(0)).cx(Qubit::new(0), Qubit::new(1));
/// let r = ResourceSummary::of_circuit(&c);
/// assert_eq!(r.qubits, 2);
/// assert_eq!(r.gates, 2);
/// assert_eq!(r.depth, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceSummary {
    /// Qubit wires.
    pub qubits: usize,
    /// Classical bits.
    pub clbits: usize,
    /// Non-barrier instructions (measure/reset included).
    pub gates: usize,
    /// Unconditioned unitary gates.
    pub unitary_gates: usize,
    /// Measurements.
    pub measures: usize,
    /// Active resets.
    pub resets: usize,
    /// Classically controlled gates.
    pub conditioned: usize,
    /// Depth with measure/reset/conditioned ops occupying layers.
    pub depth: usize,
    /// Iterations, for dynamic circuits.
    pub iterations: Option<usize>,
}

impl ResourceSummary {
    /// Summarizes an arbitrary circuit.
    #[must_use]
    pub fn of_circuit(circuit: &Circuit) -> Self {
        let s = CircuitStats::of(circuit);
        Self {
            qubits: s.num_qubits,
            clbits: s.num_clbits,
            gates: s.gate_count,
            unitary_gates: s.unitary_count,
            measures: s.measure_count,
            resets: s.reset_count,
            conditioned: s.conditioned_count,
            depth: s.depth,
            iterations: None,
        }
    }

    /// Summarizes a dynamic circuit, recording its iteration count.
    #[must_use]
    pub fn of_dynamic(dynamic: &DynamicCircuit) -> Self {
        let mut s = Self::of_circuit(dynamic.circuit());
        s.iterations = Some(dynamic.num_iterations());
        s
    }

    /// Gate count excluding measurements — the counting convention that
    /// best matches the paper's published tables (their dynamic gate counts
    /// include resets but not measurements).
    #[must_use]
    pub fn gates_excluding_measures(&self) -> usize {
        self.gates - self.measures
    }
}

impl fmt::Display for ResourceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qubits={} gates={} depth={}",
            self.qubits, self.gates, self.depth
        )?;
        if let Some(it) = self.iterations {
            write!(f, " iterations={it}")?;
        }
        Ok(())
    }
}

/// A noise-weighted scalar objective over [`ResourceSummary`], used by the
/// reuse planner to pick among feasible lane plans.
///
/// The score is a width-depth product penalized by the error-prone dynamic
/// operations:
///
/// ```text
/// score = qubits^width_weight
///       * depth^depth_weight
///       * (1 + noise_scale * (reset_error * resets
///                             + measure_error * measures
///                             + conditioned_error * conditioned))
/// ```
///
/// Lower is better. With the default weights (both exponents 1) the base
/// term is the familiar quantum-volume-style width×depth rectangle, so
/// `auto` tracks the Pareto frontier's knee; the noise term breaks ties in
/// favor of plans with fewer mid-circuit resets/measurements. Setting
/// `width_weight` high reproduces the paper's preference (`k = 1`); setting
/// `depth_weight` high prefers no reuse.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Exponent on the qubit count.
    pub width_weight: f64,
    /// Exponent on the circuit depth.
    pub depth_weight: f64,
    /// Per-reset error contribution.
    pub reset_error: f64,
    /// Per-measurement error contribution.
    pub measure_error: f64,
    /// Per-conditioned-gate (feed-forward) error contribution.
    pub conditioned_error: f64,
    /// Global scale on the noise penalty; `0` disables it.
    pub noise_scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Reset/measure error rates loosely follow published mid-circuit
        // measurement fidelities (~1-2% per op); feed-forward classical
        // latency is cheaper but not free.
        Self {
            width_weight: 1.0,
            depth_weight: 1.0,
            reset_error: 0.02,
            measure_error: 0.015,
            conditioned_error: 0.005,
            noise_scale: 1.0,
        }
    }
}

impl CostModel {
    /// A model that only minimizes width (then depth as tie-break via the
    /// product): the paper's implicit objective, selecting `k = 1`.
    #[must_use]
    pub fn width_first() -> Self {
        Self {
            width_weight: 4.0,
            depth_weight: 0.25,
            noise_scale: 0.0,
            ..Self::default()
        }
    }

    /// A model that only minimizes depth: selects no reuse (`k = m`).
    #[must_use]
    pub fn depth_first() -> Self {
        Self {
            width_weight: 0.0,
            depth_weight: 1.0,
            noise_scale: 0.0,
            ..Self::default()
        }
    }

    /// Scores a summary; lower is better.
    #[must_use]
    pub fn score(&self, summary: &ResourceSummary) -> f64 {
        let width = (summary.qubits.max(1) as f64).powf(self.width_weight);
        let depth = (summary.depth.max(1) as f64).powf(self.depth_weight);
        let noise = self.noise_scale
            * (self.reset_error * summary.resets as f64
                + self.measure_error * summary.measures as f64
                + self.conditioned_error * summary.conditioned as f64);
        width * depth * (1.0 + noise)
    }
}

/// A traditional-vs-dynamic cost comparison for one benchmark (one row of
/// the paper's tables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostComparison {
    /// Benchmark name.
    pub name: String,
    /// Traditional realization.
    pub traditional: ResourceSummary,
    /// Dynamic realizations, labelled (e.g. "dynamic-1").
    pub dynamic: Vec<(String, ResourceSummary)>,
}

impl CostComparison {
    /// Creates a comparison with no dynamic entries yet.
    #[must_use]
    pub fn new(name: impl Into<String>, traditional: ResourceSummary) -> Self {
        Self {
            name: name.into(),
            traditional,
            dynamic: Vec::new(),
        }
    }

    /// Adds a labelled dynamic realization.
    pub fn push_dynamic(&mut self, label: impl Into<String>, summary: ResourceSummary) {
        self.dynamic.push((label.into(), summary));
    }

    /// Qubit saving of the first dynamic realization (`tradi - dyn`).
    #[must_use]
    pub fn qubit_saving(&self) -> Option<usize> {
        self.dynamic
            .first()
            .map(|(_, d)| self.traditional.qubits.saturating_sub(d.qubits))
    }

    /// Depth overhead ratio of a labelled dynamic realization.
    #[must_use]
    pub fn depth_overhead(&self, label: &str) -> Option<f64> {
        self.dynamic
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, d)| d.depth as f64 / self.traditional.depth.max(1) as f64)
    }
}

impl fmt::Display for CostComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: tradi[{}]", self.name, self.traditional)?;
        for (label, d) in &self.dynamic {
            write!(f, " {label}[{d}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roles::QubitRoles;
    use crate::transform::{transform, TransformOptions};
    use qcir::Qubit;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3, 0);
        c.x(q(2)).h(q(2));
        c.h(q(0)).cx(q(0), q(2)).h(q(0));
        c.h(q(1)).cx(q(1), q(2)).h(q(1));
        c
    }

    #[test]
    fn summaries_capture_dynamic_costs() {
        let circ = sample_circuit();
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
        let tradi = ResourceSummary::of_circuit(&circ);
        let dyna = ResourceSummary::of_dynamic(&d);
        assert_eq!(tradi.qubits, 3);
        assert_eq!(dyna.qubits, 2);
        assert_eq!(dyna.iterations, Some(2));
        assert_eq!(dyna.measures, 2);
        assert_eq!(dyna.resets, 1);
        assert!(dyna.gates > tradi.gates);
        assert!(dyna.depth > tradi.depth);
    }

    #[test]
    fn gates_excluding_measures_subtracts() {
        let circ = sample_circuit();
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
        let dyna = ResourceSummary::of_dynamic(&d);
        assert_eq!(dyna.gates_excluding_measures(), dyna.gates - 2);
    }

    #[test]
    fn comparison_computes_savings_and_overheads() {
        let circ = sample_circuit();
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
        let mut cmp = CostComparison::new("bv_11", ResourceSummary::of_circuit(&circ));
        cmp.push_dynamic("dynamic", ResourceSummary::of_dynamic(&d));
        assert_eq!(cmp.qubit_saving(), Some(1));
        let overhead = cmp.depth_overhead("dynamic").unwrap();
        assert!(overhead > 1.0);
        assert!(cmp.depth_overhead("nope").is_none());
        let text = cmp.to_string();
        assert!(text.contains("bv_11"));
        assert!(text.contains("dynamic["));
    }

    #[test]
    fn display_mentions_iterations_for_dynamic() {
        let circ = sample_circuit();
        let roles = QubitRoles::data_plus_answer(3);
        let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
        let text = ResourceSummary::of_dynamic(&d).to_string();
        assert!(text.contains("iterations=2"));
    }
}
