//! Error-mitigation passes for dynamic circuits.
//!
//! Dynamic circuits lean on exactly the operations that are noisiest on
//! hardware: active reset and mid-circuit measurement. This module rewrites a
//! transformed circuit to harden those operations, and post-processes the
//! resulting [`Counts`] back into the original classical register:
//!
//! * **Verified resets** — every `reset` is followed by `k` verification
//!   rounds of `measure q -> s; x q if s`, so a reset that leaves the qubit in
//!   `|1>` is caught and corrected (up to readout error) before reuse.
//! * **Measurement repetition with majority vote** — every mid-circuit and
//!   final measurement is repeated `r` times into scratch clbits; classically
//!   controlled gates downstream fire on the majority-voted bit
//!   ([`qcir::Condition::voted`]), and [`MitigatedCircuit::resolve`] votes the
//!   groups down to the original register width.
//! * **Readout calibration** — [`ReadoutCalibration`] estimates a per-bit
//!   confusion matrix from calibration circuits run under a noise model and
//!   applies its (tensored) inverse to a measured distribution.
//!
//! The rewrite only grows the classical register; qubit wires, gate structure
//! and the original clbit indices are untouched, so resolved counts are
//! directly comparable with unmitigated runs.

use crate::error::DqcError;
use qcir::{Circuit, Clbit, Condition, Instruction, OpKind};
use qobs::Observer;
use qsim::{Counts, Distribution, Executor, NoiseModel};
use std::collections::HashMap;
use std::fmt;

/// Which mitigation passes to apply, parsed from the CLI `--mitigate` spec.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MitigationOptions {
    /// Verified resets: number of verification rounds appended to each reset.
    pub reset_verify: Option<usize>,
    /// Measurement repetition: total readings per measurement (odd, >= 3).
    pub meas_repeat: Option<usize>,
    /// Invert a readout confusion matrix over the resolved counts.
    pub readout_cal: bool,
}

impl MitigationOptions {
    /// No mitigation at all.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when no pass is enabled.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.reset_verify.is_none() && self.meas_repeat.is_none() && !self.readout_cal
    }

    /// Parses a comma-separated mitigation spec, e.g.
    /// `reset-verify,meas-repeat=3,readout-cal` or `reset-verify=2`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token when the spec contains an
    /// unknown pass, a malformed count, an even/zero repetition factor, or an
    /// out-of-range verification depth.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut opts = Self::none();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, value) = match token.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (token, None),
            };
            match key {
                "reset-verify" => {
                    let k = match value {
                        None => 1,
                        Some(v) => v
                            .parse::<usize>()
                            .map_err(|_| format!("invalid reset-verify count '{v}'"))?,
                    };
                    if !(1..=8).contains(&k) {
                        return Err(format!(
                            "reset-verify depth must be between 1 and 8, got {k}"
                        ));
                    }
                    opts.reset_verify = Some(k);
                }
                "meas-repeat" => {
                    let v = value.ok_or_else(|| {
                        "meas-repeat needs a repetition count, e.g. meas-repeat=3".to_string()
                    })?;
                    let r = v
                        .parse::<usize>()
                        .map_err(|_| format!("invalid meas-repeat count '{v}'"))?;
                    if r % 2 == 0 || !(3..=15).contains(&r) {
                        return Err(format!(
                            "meas-repeat must be an odd count between 3 and 15, got {r}"
                        ));
                    }
                    opts.meas_repeat = Some(r);
                }
                "readout-cal" => {
                    if value.is_some() {
                        return Err("readout-cal takes no value".to_string());
                    }
                    opts.readout_cal = true;
                }
                other => {
                    return Err(format!(
                        "unknown mitigation pass '{other}' \
                         (expected reset-verify[=K], meas-repeat=R or readout-cal)"
                    ))
                }
            }
        }
        Ok(opts)
    }
}

impl fmt::Display for MitigationOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(k) = self.reset_verify {
            parts.push(format!("reset-verify={k}"));
        }
        if let Some(r) = self.meas_repeat {
            parts.push(format!("meas-repeat={r}"));
        }
        if self.readout_cal {
            parts.push("readout-cal".to_string());
        }
        if parts.is_empty() {
            write!(f, "none")
        } else {
            write!(f, "{}", parts.join(","))
        }
    }
}

/// Counts resolved back to the original register, plus mitigation statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedCounts {
    /// Counts over the original (pre-mitigation) classical register.
    pub counts: Counts,
    /// Shots where a majority vote overturned the primary reading of a bit
    /// (summed over vote groups).
    pub votes_flipped: u64,
    /// Shots where a reset-verification round found the qubit in `|1>` and
    /// fired the corrective X (summed over verification rounds).
    pub reset_verify_fired: u64,
}

/// A circuit rewritten with mitigation scaffolding, plus the bookkeeping
/// needed to collapse its widened classical register back down.
#[derive(Debug, Clone)]
pub struct MitigatedCircuit {
    circuit: Circuit,
    original_clbits: usize,
    /// Per original clbit: the scratch clbits holding its repeat readings.
    vote_groups: HashMap<usize, Vec<Clbit>>,
    /// Scratch clbits written by reset-verification rounds.
    verify_bits: Vec<Clbit>,
    options: MitigationOptions,
}

impl MitigatedCircuit {
    /// The rewritten circuit (wider classical register, same qubits).
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Width of the classical register before mitigation.
    #[must_use]
    pub fn original_clbits(&self) -> usize {
        self.original_clbits
    }

    /// Number of scratch clbits the rewrite added.
    #[must_use]
    pub fn scratch_clbits(&self) -> usize {
        self.circuit.num_clbits() - self.original_clbits
    }

    /// The options the circuit was rewritten with.
    #[must_use]
    pub fn options(&self) -> &MitigationOptions {
        &self.options
    }

    /// Collapses counts over the widened register back to the original one:
    /// each vote group resolves to its majority bit, verification scratch is
    /// stripped, and keys are reassembled at the original width.
    ///
    /// # Panics
    ///
    /// Panics if a key's width does not match the mitigated circuit's
    /// classical register.
    #[must_use]
    pub fn resolve(&self, counts: &Counts) -> ResolvedCounts {
        let total = self.circuit.num_clbits();
        let mut resolved = Counts::new();
        let mut votes_flipped = 0u64;
        let mut reset_verify_fired = 0u64;
        for (key, n) in counts.iter() {
            assert_eq!(
                key.len(),
                total,
                "count key '{key}' does not match the mitigated register width {total}"
            );
            // Keys are MSB-first: bit i lives at char index total - 1 - i.
            let bit = |i: usize| key.as_bytes()[total - 1 - i] == b'1';
            let mut out = vec![b'0'; self.original_clbits];
            for i in 0..self.original_clbits {
                let primary = bit(i);
                let value = match self.vote_groups.get(&i) {
                    Some(ballots) => {
                        let mut ones = usize::from(primary);
                        for b in ballots {
                            ones += usize::from(bit(b.index()));
                        }
                        let majority = 2 * ones > ballots.len() + 1;
                        if majority != primary {
                            votes_flipped += n;
                        }
                        majority
                    }
                    None => primary,
                };
                if value {
                    out[self.original_clbits - 1 - i] = b'1';
                }
            }
            for b in &self.verify_bits {
                if bit(b.index()) {
                    reset_verify_fired += n;
                }
            }
            let out = String::from_utf8(out).unwrap_or_else(|_| unreachable!("ascii key"));
            resolved.record_n(out, n);
        }
        ResolvedCounts {
            counts: resolved,
            votes_flipped,
            reset_verify_fired,
        }
    }

    /// [`resolve`](Self::resolve), also emitting `mitigate.votes_flipped` and
    /// `mitigate.reset_verify_fired` counters to the observer.
    #[must_use]
    pub fn resolve_observed(&self, counts: &Counts, observer: &Observer) -> ResolvedCounts {
        let resolved = self.resolve(counts);
        if observer.is_enabled() {
            observer.counter_add("mitigate.votes_flipped", resolved.votes_flipped);
            observer.counter_add("mitigate.reset_verify_fired", resolved.reset_verify_fired);
        }
        resolved
    }
}

/// Rewrites `circuit` with the mitigation scaffolding selected in `options`.
///
/// The original clbit indices keep their meaning: repeat readings and
/// verification outcomes land in freshly allocated scratch clbits above the
/// original register, and every classical condition downstream of a repeated
/// measurement is rewritten to fire on the majority-voted bit.
#[must_use]
pub fn mitigate(circuit: &Circuit, options: &MitigationOptions) -> MitigatedCircuit {
    mitigate_observed(circuit, options, &Observer::disabled())
}

/// [`mitigate`], traced under a `dqc.mitigate` span with scratch-bit counters.
#[must_use]
pub fn mitigate_observed(
    circuit: &Circuit,
    options: &MitigationOptions,
    observer: &Observer,
) -> MitigatedCircuit {
    let _span = observer.span("dqc.mitigate");
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        circuit.num_qubits(),
        circuit.num_clbits(),
    );
    let mut vote_groups: HashMap<usize, Vec<Clbit>> = HashMap::new();
    let mut verify_bits = Vec::new();
    let repeat = options.meas_repeat.unwrap_or(1).max(1);
    let verify_rounds = options.reset_verify.unwrap_or(0);

    for inst in circuit.iter() {
        let condition = inst.condition().map(|c| rewrite_condition(c, &vote_groups));
        match inst.kind() {
            OpKind::Measure if repeat > 1 => {
                let qubit = inst.qubits()[0];
                let primary = inst.clbits()[0];
                emit(&mut out, Instruction::measure(qubit, primary), &condition);
                let ballots = out.alloc_clbits(repeat - 1);
                for &ballot in &ballots {
                    emit(&mut out, Instruction::measure(qubit, ballot), &condition);
                }
                vote_groups.insert(primary.index(), ballots);
            }
            OpKind::Reset if verify_rounds > 0 => {
                let qubit = inst.qubits()[0];
                emit(&mut out, Instruction::reset(qubit), &condition);
                for _ in 0..verify_rounds {
                    let scratch = out.alloc_clbit();
                    emit(&mut out, Instruction::measure(qubit, scratch), &condition);
                    // The corrective X must fire whenever the verification
                    // reading was 1, regardless of the instruction's own
                    // condition: if the conditioned reset was skipped, the
                    // measure above was skipped too and scratch stays 0.
                    out.push(
                        Instruction::gate(qcir::Gate::X, vec![qubit])
                            .with_condition(Condition::bit(scratch)),
                    );
                    verify_bits.push(scratch);
                }
            }
            _ => {
                emit(&mut out, strip_condition(inst), &condition);
            }
        }
    }

    if observer.is_enabled() {
        let scratch = out.num_clbits() - circuit.num_clbits();
        observer.counter_add("mitigate.scratch_clbits", scratch as u64);
        observer.counter_add("mitigate.vote_groups", vote_groups.len() as u64);
    }

    MitigatedCircuit {
        circuit: out,
        original_clbits: circuit.num_clbits(),
        vote_groups,
        verify_bits,
        options: options.clone(),
    }
}

fn emit(out: &mut Circuit, inst: Instruction, condition: &Option<Condition>) {
    match condition {
        Some(c) => out.push(inst.with_condition(c.clone())),
        None => out.push(inst),
    };
}

/// Clones `inst` without its condition (the rewritten one is re-attached by
/// [`emit`]).
fn strip_condition(inst: &Instruction) -> Instruction {
    match inst.kind() {
        OpKind::Gate(g) => Instruction::gate(g.clone(), inst.qubits().to_vec()),
        OpKind::Measure => Instruction::measure(inst.qubits()[0], inst.clbits()[0]),
        OpKind::Reset => Instruction::reset(inst.qubits()[0]),
        OpKind::Barrier => Instruction::barrier(inst.qubits().to_vec()),
    }
}

/// Rewrites a condition so every bit with repeat readings is majority-voted.
fn rewrite_condition(condition: &Condition, vote_groups: &HashMap<usize, Vec<Clbit>>) -> Condition {
    let group_of = |bit: Clbit| -> Vec<Clbit> {
        let mut g = vec![bit];
        if let Some(ballots) = vote_groups.get(&bit.index()) {
            g.extend(ballots.iter().copied());
        }
        g
    };
    match condition {
        Condition::Bit { bit, value } => Condition::voted(vec![group_of(*bit)], u64::from(*value)),
        Condition::Register { bits, value } => {
            Condition::voted(bits.iter().map(|&b| group_of(b)).collect(), *value)
        }
        // Already voted: leave untouched (double mitigation is not supported).
        Condition::Voted { .. } => condition.clone(),
    }
}

/// Errors from readout calibration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MitigateError {
    /// A bit's confusion matrix is (numerically) singular and cannot be
    /// inverted: `e0 + e1` is too close to 1.
    SingularConfusion {
        /// The classical bit whose matrix is singular.
        bit: usize,
    },
    /// The register is too wide for dense confusion inversion.
    TooManyBits {
        /// Requested register width.
        bits: usize,
        /// Supported maximum.
        max: usize,
    },
    /// A counts key does not match the calibrated register width.
    KeyWidthMismatch {
        /// The offending key.
        key: String,
        /// The calibrated width.
        expected: usize,
    },
    /// An error rate outside `[0, 1]` was supplied.
    RateOutOfRange {
        /// The classical bit with the bad rate.
        bit: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for MitigateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MitigateError::SingularConfusion { bit } => write!(
                f,
                "readout confusion matrix for bit {bit} is singular (e0 + e1 ~ 1)"
            ),
            MitigateError::TooManyBits { bits, max } => write!(
                f,
                "readout calibration supports at most {max} bits, got {bits}"
            ),
            MitigateError::KeyWidthMismatch { key, expected } => write!(
                f,
                "count key '{key}' does not match calibrated width {expected}"
            ),
            MitigateError::RateOutOfRange { bit, value } => write!(
                f,
                "readout error rate for bit {bit} is out of [0, 1]: {value}"
            ),
        }
    }
}

impl std::error::Error for MitigateError {}

impl From<MitigateError> for DqcError {
    fn from(err: MitigateError) -> Self {
        DqcError::Unrealizable {
            what: "readout calibration".to_string(),
            reason: err.to_string(),
        }
    }
}

/// Per-bit readout confusion matrix, invertible over measured counts.
///
/// Bit `i`'s confusion matrix is `[[1-e0, e1], [e0, 1-e1]]` (column = true
/// state, row = observed state): `e0[i] = P(read 1 | true 0)` and
/// `e1[i] = P(read 0 | true 1)`. Correction applies the tensored inverse,
/// clips negative quasi-probabilities to zero and renormalizes.
#[derive(Debug, Clone)]
pub struct ReadoutCalibration {
    e0: Vec<f64>,
    e1: Vec<f64>,
}

/// Widest register the dense tensored inversion will process.
const MAX_CALIBRATED_BITS: usize = 16;

impl ReadoutCalibration {
    /// Builds a calibration from known per-bit error rates.
    ///
    /// # Errors
    ///
    /// Returns [`MitigateError::RateOutOfRange`] for rates outside `[0, 1]`
    /// and [`MitigateError::TooManyBits`] past the dense-inversion limit.
    pub fn from_error_rates(e0: Vec<f64>, e1: Vec<f64>) -> Result<Self, MitigateError> {
        assert_eq!(e0.len(), e1.len(), "e0/e1 length mismatch");
        if e0.len() > MAX_CALIBRATED_BITS {
            return Err(MitigateError::TooManyBits {
                bits: e0.len(),
                max: MAX_CALIBRATED_BITS,
            });
        }
        for (bit, &rate) in e0.iter().chain(e1.iter()).enumerate() {
            // NaN fails this comparison too.
            if !(0.0..=1.0).contains(&rate) {
                return Err(MitigateError::RateOutOfRange {
                    bit: bit % e0.len().max(1),
                    value: rate,
                });
            }
        }
        Ok(Self { e0, e1 })
    }

    /// Estimates per-bit error rates by running the two standard calibration
    /// circuits (all-`|0>` and all-`|1>` preparation, then measure-all) under
    /// `noise`.
    ///
    /// # Errors
    ///
    /// Returns [`MitigateError::TooManyBits`] when `num_bits` exceeds the
    /// dense-inversion limit.
    pub fn calibrate(
        noise: &NoiseModel,
        num_bits: usize,
        shots: u64,
        seed: u64,
    ) -> Result<Self, MitigateError> {
        if num_bits > MAX_CALIBRATED_BITS {
            return Err(MitigateError::TooManyBits {
                bits: num_bits,
                max: MAX_CALIBRATED_BITS,
            });
        }
        let executor = Executor::new().shots(shots).seed(seed).noise(noise.clone());
        let marginals = |prepare_ones: bool| -> Vec<f64> {
            let mut c = Circuit::with_name(
                if prepare_ones {
                    "cal_ones"
                } else {
                    "cal_zeros"
                },
                num_bits,
                num_bits,
            );
            if prepare_ones {
                for q in 0..num_bits {
                    c.x(qcir::Qubit::new(q));
                }
            }
            c.measure_all();
            let counts = executor.run(&c);
            let total = counts.total().max(1) as f64;
            let mut ones = vec![0u64; num_bits];
            for (key, n) in counts.iter() {
                for (i, one) in ones.iter_mut().enumerate() {
                    if key.as_bytes()[num_bits - 1 - i] == b'1' {
                        *one += n;
                    }
                }
            }
            ones.iter().map(|&o| o as f64 / total).collect()
        };
        let e0 = marginals(false);
        let e1 = marginals(true).iter().map(|p1| 1.0 - p1).collect();
        Ok(Self { e0, e1 })
    }

    /// Number of calibrated bits.
    #[must_use]
    pub fn num_bits(&self) -> usize {
        self.e0.len()
    }

    /// `P(read 1 | true 0)` per bit.
    #[must_use]
    pub fn error_rates_zero(&self) -> &[f64] {
        &self.e0
    }

    /// `P(read 0 | true 1)` per bit.
    #[must_use]
    pub fn error_rates_one(&self) -> &[f64] {
        &self.e1
    }

    /// Applies the tensored inverse confusion matrix to `counts`, returning
    /// the corrected (clipped, renormalized) distribution.
    ///
    /// # Errors
    ///
    /// Returns [`MitigateError::KeyWidthMismatch`] when a key's width differs
    /// from the calibrated register and [`MitigateError::SingularConfusion`]
    /// when any bit's matrix cannot be inverted.
    pub fn correct(&self, counts: &Counts) -> Result<Distribution, MitigateError> {
        let n = self.num_bits();
        for (bit, (&e0, &e1)) in self.e0.iter().zip(&self.e1).enumerate() {
            let det = 1.0 - e0 - e1;
            // NaN determinants are singular too.
            if det.abs() <= 1e-9 || det.is_nan() {
                return Err(MitigateError::SingularConfusion { bit });
            }
        }
        let dim = 1usize << n;
        let mut p = vec![0.0f64; dim];
        let total = counts.total().max(1) as f64;
        for (key, count) in counts.iter() {
            if key.len() != n {
                return Err(MitigateError::KeyWidthMismatch {
                    key: key.to_string(),
                    expected: n,
                });
            }
            let mut index = 0usize;
            for i in 0..n {
                if key.as_bytes()[n - 1 - i] == b'1' {
                    index |= 1 << i;
                }
            }
            p[index] += count as f64 / total;
        }
        // Invert bit by bit: for each axis apply the 2x2 inverse to every
        // (index0, index1) pair differing only in that bit.
        for i in 0..n {
            let (e0, e1) = (self.e0[i], self.e1[i]);
            let det = 1.0 - e0 - e1;
            let stride = 1usize << i;
            for base in 0..dim {
                if base & stride != 0 {
                    continue;
                }
                let lo = p[base];
                let hi = p[base | stride];
                p[base] = ((1.0 - e1) * lo - e1 * hi) / det;
                p[base | stride] = (-e0 * lo + (1.0 - e0) * hi) / det;
            }
        }
        for q in &mut p {
            if *q < 0.0 {
                *q = 0.0;
            }
        }
        let norm: f64 = p.iter().sum();
        let mut dist = Distribution::new();
        for (index, &q) in p.iter().enumerate() {
            if q <= 0.0 {
                continue;
            }
            let mut key = vec![b'0'; n];
            for (i, slot) in key.iter_mut().rev().enumerate() {
                if index & (1 << i) != 0 {
                    *slot = b'1';
                }
            }
            let key = String::from_utf8(key).unwrap_or_else(|_| unreachable!("ascii key"));
            dist.set(key, if norm > 0.0 { q / norm } else { q });
        }
        Ok(dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::{Gate, Qubit};
    use qsim::branch::exact_distribution;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }
    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn parse_accepts_full_spec() {
        let opts = MitigationOptions::parse("reset-verify=2, meas-repeat=5 ,readout-cal").unwrap();
        assert_eq!(opts.reset_verify, Some(2));
        assert_eq!(opts.meas_repeat, Some(5));
        assert!(opts.readout_cal);
        assert_eq!(opts.to_string(), "reset-verify=2,meas-repeat=5,readout-cal");
    }

    #[test]
    fn parse_defaults_reset_verify_to_one_round() {
        let opts = MitigationOptions::parse("reset-verify").unwrap();
        assert_eq!(opts.reset_verify, Some(1));
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(MitigationOptions::parse("meas-repeat=2").is_err());
        assert!(MitigationOptions::parse("meas-repeat").is_err());
        assert!(MitigationOptions::parse("reset-verify=0").is_err());
        assert!(MitigationOptions::parse("readout-cal=yes").is_err());
        assert!(MitigationOptions::parse("zero-noise-extrapolation").is_err());
        assert!(MitigationOptions::parse("meas-repeat=x").is_err());
    }

    #[test]
    fn empty_spec_is_no_mitigation() {
        let opts = MitigationOptions::parse("").unwrap();
        assert!(opts.is_none());
        assert_eq!(opts.to_string(), "none");
    }

    #[test]
    fn meas_repeat_triplicates_measurements_and_votes_conditions() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0));
        circ.measure(q(0), c(0));
        circ.x_if(q(1), c(0));
        circ.measure(q(1), c(1));

        let opts = MitigationOptions {
            meas_repeat: Some(3),
            ..MitigationOptions::none()
        };
        let mitigated = mitigate(&circ, &opts);
        let mc = mitigated.circuit();
        // Each of the 2 measurements gains 2 ballots.
        assert_eq!(mc.num_clbits(), 6);
        assert_eq!(mitigated.scratch_clbits(), 4);
        let measures = mc
            .iter()
            .filter(|i| matches!(i.kind(), OpKind::Measure))
            .count();
        assert_eq!(measures, 6);
        // The conditioned X now fires on the majority of c0's group.
        let cond = mc
            .iter()
            .find(|i| i.is_conditioned())
            .and_then(|i| i.condition().cloned())
            .unwrap_or_else(|| unreachable!("conditioned X survives the rewrite"));
        match cond {
            Condition::Voted { groups, value } => {
                assert_eq!(groups.len(), 1);
                assert_eq!(groups[0].len(), 3);
                assert_eq!(groups[0][0], c(0));
                assert_eq!(value, 1);
            }
            other => panic!("expected voted condition, got {other}"),
        }
    }

    #[test]
    fn mitigated_circuit_is_noise_free_equivalent() {
        // Without noise, mitigation must not change the outcome distribution
        // over the original register.
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0));
        circ.measure(q(0), c(0));
        circ.reset(q(0));
        circ.x_if(q(1), c(0));
        circ.measure(q(1), c(1));

        let opts = MitigationOptions::parse("reset-verify,meas-repeat=3").unwrap();
        let mitigated = mitigate(&circ, &opts);
        let counts = Executor::new().shots(512).seed(7).run(mitigated.circuit());
        let resolved = mitigated.resolve(&counts);
        assert_eq!(resolved.counts.total(), 512);
        assert_eq!(resolved.votes_flipped, 0);
        assert_eq!(resolved.reset_verify_fired, 0);

        let ideal = exact_distribution(&circ);
        let observed = resolved.counts.to_distribution();
        assert!(observed.tvd(&ideal) < 0.1);
    }

    #[test]
    fn resolve_majority_votes_and_counts_flips() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0));
        circ.measure(q(0), c(0));
        let opts = MitigationOptions {
            meas_repeat: Some(3),
            ..MitigationOptions::none()
        };
        let mitigated = mitigate(&circ, &opts);
        assert_eq!(mitigated.circuit().num_clbits(), 3);

        // Hand-built counts over [c0, ballot1, ballot2] (MSB-first keys).
        let mut counts = Counts::new();
        counts.record_n("110", 5); // primary 0, ballots 1,1 -> votes to 1
        counts.record_n("001", 3); // primary 1, ballots 0,0 -> votes to 0
        counts.record_n("111", 2); // unanimous 1
        let resolved = mitigated.resolve(&counts);
        assert_eq!(resolved.counts.get("1"), 7);
        assert_eq!(resolved.counts.get("0"), 3);
        assert_eq!(resolved.votes_flipped, 8);
    }

    #[test]
    fn reset_verify_corrects_faulty_resets() {
        // reset_error-only noise: bare dynamic reset reuse leaks |1> into the
        // second measurement; one verification round catches most of it.
        let mut circ = Circuit::new(1, 2);
        circ.x(q(0));
        circ.measure(q(0), c(0));
        circ.reset(q(0));
        circ.measure(q(0), c(1));

        let noise = NoiseModel {
            reset_error: 0.25,
            ..NoiseModel::ideal()
        };
        let bare = Executor::new()
            .shots(2048)
            .seed(11)
            .noise(noise.clone())
            .run(&circ);
        let bare_bad = bare.probability("11");

        let opts = MitigationOptions::parse("reset-verify").unwrap();
        let mitigated = mitigate(&circ, &opts);
        let counts = Executor::new()
            .shots(2048)
            .seed(11)
            .noise(noise)
            .run(mitigated.circuit());
        let resolved = mitigated.resolve(&counts);
        let mitigated_bad = resolved.counts.probability("11");

        assert!(
            bare_bad > 0.2,
            "reset error should corrupt the bare run, got {bare_bad}"
        );
        assert!(
            mitigated_bad < bare_bad / 2.0,
            "verified reset should at least halve the leak: {mitigated_bad} vs {bare_bad}"
        );
        assert!(resolved.reset_verify_fired > 0);
    }

    #[test]
    fn meas_repeat_outvotes_readout_flips_in_feedforward() {
        // Readout-noise-only: the conditioned X fires on a voted bit, so the
        // copy c0 -> c1 survives flips that corrupt the bare dynamic circuit.
        let mut circ = Circuit::new(2, 2);
        circ.x(q(0));
        circ.measure(q(0), c(0));
        circ.x_if(q(1), c(0));
        circ.measure(q(1), c(1));

        let noise = NoiseModel {
            readout_flip: 0.15,
            ..NoiseModel::ideal()
        };
        let shots = 4096;
        let bare = Executor::new()
            .shots(shots)
            .seed(3)
            .noise(noise.clone())
            .run(&circ);
        // Success: the X fired (q1 == 1). Bit 1 is the left char.
        let bare_fired: u64 = bare
            .iter()
            .filter(|(k, _)| k.as_bytes()[0] == b'1')
            .map(|(_, n)| n)
            .sum();

        let opts = MitigationOptions::parse("meas-repeat=5").unwrap();
        let mitigated = mitigate(&circ, &opts);
        let counts = Executor::new()
            .shots(shots)
            .seed(3)
            .noise(noise)
            .run(mitigated.circuit());
        let resolved = mitigated.resolve(&counts);
        let mitigated_fired: u64 = resolved
            .counts
            .iter()
            .filter(|(k, _)| k.as_bytes()[0] == b'1')
            .map(|(_, n)| n)
            .sum();

        let bare_p = bare_fired as f64 / shots as f64;
        let mitigated_p = mitigated_fired as f64 / shots as f64;
        assert!(
            mitigated_p > bare_p + 0.05,
            "vote should beat single reading: {mitigated_p} vs {bare_p}"
        );
        assert!(resolved.votes_flipped > 0);
    }

    #[test]
    fn readout_calibration_inverts_known_confusion() {
        // Distribution should recover the noiseless one from analytically
        // flipped counts: true state always "01" (bit0 = 1, bit1 = 0).
        let cal = ReadoutCalibration::from_error_rates(vec![0.1, 0.2], vec![0.1, 0.2]).unwrap();
        let mut counts = Counts::new();
        // P(observe xy) from true "01": bit0 reads 1 w.p. 0.9; bit1 reads 1
        // w.p. 0.2. Encode with 10_000 shots, exact expectation.
        counts.record_n("01", 7200); // 0.8 * 0.9
        counts.record_n("00", 800); // 0.8 * 0.1
        counts.record_n("11", 1800); // 0.2 * 0.9
        counts.record_n("10", 200); // 0.2 * 0.1
        let corrected = cal.correct(&counts).unwrap();
        assert!(
            (corrected.get("01") - 1.0).abs() < 1e-9,
            "expected delta at 01, got {corrected:?}"
        );
    }

    #[test]
    fn calibrate_estimates_readout_flip_rate() {
        let noise = NoiseModel {
            readout_flip: 0.1,
            ..NoiseModel::ideal()
        };
        let cal = ReadoutCalibration::calibrate(&noise, 2, 8192, 5).unwrap();
        for &e in cal.error_rates_zero().iter().chain(cal.error_rates_one()) {
            assert!((e - 0.1).abs() < 0.03, "estimated rate {e} far from 0.1");
        }
    }

    #[test]
    fn calibration_rejects_bad_inputs() {
        assert!(matches!(
            ReadoutCalibration::from_error_rates(vec![1.5], vec![0.0]),
            Err(MitigateError::RateOutOfRange { .. })
        ));
        let singular = ReadoutCalibration::from_error_rates(vec![0.5], vec![0.5]).unwrap();
        let mut counts = Counts::new();
        counts.record_n("0", 1);
        assert!(matches!(
            singular.correct(&counts),
            Err(MitigateError::SingularConfusion { bit: 0 })
        ));
        let cal = ReadoutCalibration::from_error_rates(vec![0.1], vec![0.1]).unwrap();
        let mut wide = Counts::new();
        wide.record_n("00", 1);
        assert!(matches!(
            cal.correct(&wide),
            Err(MitigateError::KeyWidthMismatch { .. })
        ));
    }

    #[test]
    fn mitigation_composes_with_toffoli_feedforward() {
        // A conditioned gate reading a register condition gets per-bit vote
        // groups.
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0));
        circ.measure(q(0), c(0));
        circ.measure(q(0), c(1));
        circ.push(
            Instruction::gate(Gate::X, vec![q(1)])
                .with_condition(Condition::register(vec![c(0), c(1)], 3)),
        );
        let opts = MitigationOptions::parse("meas-repeat=3").unwrap();
        let mitigated = mitigate(&circ, &opts);
        let cond = mitigated
            .circuit()
            .iter()
            .rfind(|i| i.is_conditioned())
            .and_then(|i| i.condition().cloned())
            .unwrap_or_else(|| unreachable!("conditioned gate survives"));
        match cond {
            Condition::Voted { groups, value } => {
                assert_eq!(groups.len(), 2);
                assert!(groups.iter().all(|g| g.len() == 3));
                assert_eq!(value, 3);
            }
            other => panic!("expected voted register condition, got {other}"),
        }
    }
}
