//! Case-2 work-qubit ordering.
//!
//! When a gate couples two work qubits (its control on one, its target on
//! another), the control qubit's iteration must come first so that its
//! measured value is available to classically control the target-side
//! replay (the paper's Case 2). This module builds that dependency relation
//! and produces a stable topological order of the work qubits.

use crate::error::DqcError;
use crate::roles::QubitRoles;
use qcir::reuse::{QubitDependencyGraph, ReuseError};
use qcir::{Circuit, Qubit};

/// Computes the iteration order of the work qubits (data and ancilla).
///
/// Ordering constraints: for every gate with a control on work qubit `u` and
/// its target on work qubit `v != u`, `u` must appear before `v`. Among
/// unconstrained qubits the original `data ++ ancilla` order is kept
/// (stable Kahn's algorithm, smallest original position first).
///
/// # Errors
///
/// * [`DqcError::CyclicDependency`] when no valid order exists (e.g.
///   `CX(a,b)` followed by `CX(b,a)` on data qubits).
/// * [`DqcError::Unrealizable`] for work-qubit couplings without a
///   control/target structure (a swap between work qubits).
///
/// # Examples
///
/// ```
/// use dqc::{reorder_work_qubits, QubitRoles};
/// use qcir::{Circuit, Qubit};
///
/// // CX with control q1 and target q0 forces q1's iteration first.
/// let mut c = Circuit::new(3, 0);
/// c.cx(Qubit::new(1), Qubit::new(0));
/// let roles = QubitRoles::data_plus_answer(3);
/// let order = reorder_work_qubits(&c, &roles).unwrap();
/// assert_eq!(order, vec![Qubit::new(1), Qubit::new(0)]);
/// ```
pub fn reorder_work_qubits(circuit: &Circuit, roles: &QubitRoles) -> Result<Vec<Qubit>, DqcError> {
    // The foldable set is exactly the work qubits: answer qubits stay
    // physical and impose no ordering (qcir::reuse ignores non-foldable
    // operands, matching the paper's Case-2 relation).
    let work = roles.work_qubits();
    let graph = QubitDependencyGraph::build(circuit, &work).map_err(from_reuse_error)?;
    graph.topological_order().map_err(from_reuse_error)
}

/// Maps the analysis-layer error onto the transformation's vocabulary.
fn from_reuse_error(err: ReuseError) -> DqcError {
    match err {
        ReuseError::Uncoupled { what } => DqcError::Unrealizable {
            what,
            reason: "couples work qubits without a control/target structure".into(),
        },
        ReuseError::Cyclic { qubits } => DqcError::CyclicDependency { qubits },
        other => DqcError::Unrealizable {
            what: other.to_string(),
            reason: "reuse dependency analysis failed".into(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn independent_qubits_keep_register_order() {
        let mut c = Circuit::new(3, 0);
        c.cx(q(0), q(2)).cx(q(1), q(2));
        let roles = QubitRoles::data_plus_answer(3);
        assert_eq!(reorder_work_qubits(&c, &roles).unwrap(), vec![q(0), q(1)]);
    }

    #[test]
    fn control_precedes_target() {
        let mut c = Circuit::new(3, 0);
        c.cx(q(1), q(0));
        let roles = QubitRoles::data_plus_answer(3);
        assert_eq!(reorder_work_qubits(&c, &roles).unwrap(), vec![q(1), q(0)]);
    }

    #[test]
    fn chain_of_dependencies_orders_transitively() {
        let mut c = Circuit::new(4, 0);
        c.cx(q(2), q(1)).cx(q(1), q(0));
        let roles = QubitRoles::data_plus_answer(4);
        assert_eq!(
            reorder_work_qubits(&c, &roles).unwrap(),
            vec![q(2), q(1), q(0)]
        );
    }

    #[test]
    fn ancillas_come_after_their_writers() {
        // CX(d0, a), CX(d1, a): ancilla last (the dynamic-2 pattern).
        let mut c = Circuit::new(4, 0);
        c.cx(q(0), q(3)).cx(q(1), q(3));
        let roles = QubitRoles::new(vec![q(0), q(1)], vec![q(3)], vec![q(2)]);
        assert_eq!(
            reorder_work_qubits(&c, &roles).unwrap(),
            vec![q(0), q(1), q(3)]
        );
    }

    #[test]
    fn cycle_is_detected() {
        let mut c = Circuit::new(3, 0);
        c.cx(q(0), q(1)).cx(q(1), q(0));
        let roles = QubitRoles::data_plus_answer(3);
        let err = reorder_work_qubits(&c, &roles).unwrap_err();
        assert!(matches!(err, DqcError::CyclicDependency { .. }));
    }

    #[test]
    fn swap_between_work_qubits_is_unrealizable() {
        let mut c = Circuit::new(3, 0);
        c.swap(q(0), q(1));
        let roles = QubitRoles::data_plus_answer(3);
        assert!(matches!(
            reorder_work_qubits(&c, &roles).unwrap_err(),
            DqcError::Unrealizable { .. }
        ));
    }

    #[test]
    fn swap_touching_answer_is_allowed() {
        let mut c = Circuit::new(3, 0);
        c.swap(q(0), q(2));
        let roles = QubitRoles::data_plus_answer(3);
        // q0-answer swap has only one work operand; no ordering constraint.
        assert!(reorder_work_qubits(&c, &roles).is_ok());
    }

    #[test]
    fn toffoli_controls_precede_work_target() {
        let mut c = Circuit::new(4, 0);
        c.ccx(q(1), q(2), q(0));
        let roles = QubitRoles::data_plus_answer(4);
        let order = reorder_work_qubits(&c, &roles).unwrap();
        let pos = |x: Qubit| order.iter().position(|&w| w == x).unwrap();
        assert!(pos(q(1)) < pos(q(0)));
        assert!(pos(q(2)) < pos(q(0)));
    }

    #[test]
    fn toffoli_on_answer_target_imposes_no_order() {
        let mut c = Circuit::new(3, 0);
        c.ccx(q(0), q(1), q(2));
        let roles = QubitRoles::data_plus_answer(3);
        assert_eq!(reorder_work_qubits(&c, &roles).unwrap(), vec![q(0), q(1)]);
    }

    #[test]
    fn gates_on_answer_qubits_are_ignored() {
        let mut c = Circuit::new(4, 0);
        c.swap(q(2), q(3)); // both answers
        let roles = QubitRoles::new(vec![q(0), q(1)], vec![], vec![q(2), q(3)]);
        assert!(reorder_work_qubits(&c, &roles).is_ok());
    }

    #[test]
    fn measurement_free_requirement_not_enforced_here() {
        // Non-gate instructions are skipped by the reorder pass; the
        // transform itself rejects them.
        let mut c = Circuit::new(2, 1);
        c.measure(q(0), qcir::Clbit::new(0));
        let roles = QubitRoles::data_plus_answer(2);
        assert!(reorder_work_qubits(&c, &roles).is_ok());
    }
}
