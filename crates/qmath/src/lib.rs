//! Complex arithmetic and small dense complex matrices.
//!
//! This crate is the numerical substrate of the `dqct` workspace. Quantum
//! state spaces in the reproduced paper are tiny (at most six qubits), so a
//! simple, well-tested, dependency-free implementation beats pulling in a
//! general linear-algebra stack.
//!
//! # Examples
//!
//! ```
//! use qmath::{C64, CMatrix};
//!
//! let h = CMatrix::hadamard();
//! let id = h.mul(&h);
//! assert!(id.approx_eq(&CMatrix::identity(2), 1e-12));
//! assert!(h.is_unitary(1e-12));
//! let _ = C64::new(0.0, 1.0) * C64::i();
//! ```

mod approx;
mod complex;
mod matrix;

pub use approx::{approx_eq_f64, EPS};
pub use complex::C64;
pub use matrix::CMatrix;
