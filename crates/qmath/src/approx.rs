//! Floating-point comparison helpers shared across the workspace.

/// Default absolute tolerance for comparing amplitudes and probabilities.
///
/// All circuits in this workspace are composed of Clifford+T-level gates whose
/// matrix entries are exact up to a handful of floating-point operations, so a
/// tolerance of `1e-10` comfortably separates "equal" from "different" while
/// absorbing rounding error.
pub const EPS: f64 = 1e-10;

/// Returns `true` when `a` and `b` differ by at most `tol` in absolute value.
///
/// # Examples
///
/// ```
/// assert!(qmath::approx_eq_f64(0.1 + 0.2, 0.3, 1e-12));
/// assert!(!qmath::approx_eq_f64(0.1, 0.2, 1e-12));
/// ```
#[must_use]
pub fn approx_eq_f64(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_are_approx_equal() {
        assert!(approx_eq_f64(1.0, 1.0, 0.0));
    }

    #[test]
    fn values_within_tolerance_compare_equal() {
        assert!(approx_eq_f64(1.0, 1.0 + 1e-12, 1e-10));
    }

    #[test]
    fn values_outside_tolerance_compare_unequal() {
        assert!(!approx_eq_f64(1.0, 1.1, 1e-10));
    }

    #[test]
    fn tolerance_is_inclusive() {
        assert!(approx_eq_f64(1.0, 1.5, 0.5));
    }
}
