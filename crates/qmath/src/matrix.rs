//! Small dense complex matrices.

use crate::complex::C64;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major complex matrix.
///
/// Sized for quantum gates and few-qubit operators (dimension at most a few
/// hundred), so every operation favours clarity over asymptotic cleverness.
///
/// # Examples
///
/// ```
/// use qmath::CMatrix;
///
/// let x = CMatrix::pauli_x();
/// assert!(x.mul(&x).approx_eq(&CMatrix::identity(2), 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![C64::zero(); rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::one();
        }
        m
    }

    /// Builds a matrix from rows of complex entries.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all the same length or `rows` is empty.
    #[must_use]
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        Self {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Builds a square matrix from a flat row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a perfect square.
    #[must_use]
    pub fn from_flat(data: Vec<C64>) -> Self {
        let n = (data.len() as f64).sqrt().round() as usize;
        assert_eq!(n * n, data.len(), "flat data must form a square matrix");
        Self {
            rows: n,
            cols: n,
            data,
        }
    }

    /// Builds a square matrix of real entries (convenience for gate tables).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a perfect square.
    #[must_use]
    pub fn from_real(data: &[f64]) -> Self {
        Self::from_flat(data.iter().map(|&r| C64::real(r)).collect())
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    #[must_use]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.rows,
            "dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero(0.0) {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Kronecker (tensor) product `self (x) rhs`.
    #[must_use]
    pub fn kron(&self, rhs: &Self) -> Self {
        let mut out = Self::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Conjugate transpose.
    #[must_use]
    pub fn dagger(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Transpose without conjugation.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Entry-wise complex conjugate.
    #[must_use]
    pub fn conj(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scales every entry by `z`.
    #[must_use]
    pub fn scale(&self, z: C64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| a * z).collect(),
        }
    }

    /// Entry-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!(self.rows, rhs.rows, "row mismatch in add");
        assert_eq!(self.cols, rhs.cols, "column mismatch in add");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }

    /// Entry-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn sub(&self, rhs: &Self) -> Self {
        self.add(&rhs.scale(C64::real(-1.0)))
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// `true` when every entry is within `tol` of `rhs`'s.
    #[must_use]
    pub fn approx_eq(&self, rhs: &Self, tol: f64) -> bool {
        self.rows == rhs.rows
            && self.cols == rhs.cols
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(&a, &b)| a.approx_eq(b, tol))
    }

    /// `true` when `self * self.dagger()` is the identity to tolerance `tol`.
    #[must_use]
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.is_square()
            && self
                .mul(&self.dagger())
                .approx_eq(&Self::identity(self.rows), tol)
    }

    /// `true` when the matrix equals its own conjugate transpose.
    #[must_use]
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.dagger(), tol)
    }

    /// `true` when `self` equals `rhs` up to a global phase factor.
    ///
    /// Used when comparing circuit unitaries: quantum mechanics cannot
    /// distinguish `U` from `e^{i phi} U`.
    #[must_use]
    pub fn approx_eq_up_to_phase(&self, rhs: &Self, tol: f64) -> bool {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return false;
        }
        // Find the entry of largest modulus in rhs to estimate the phase.
        let mut best = 0;
        let mut best_norm = 0.0;
        for (idx, z) in rhs.data.iter().enumerate() {
            if z.norm_sqr() > best_norm {
                best_norm = z.norm_sqr();
                best = idx;
            }
        }
        if best_norm <= tol * tol {
            // rhs is (numerically) zero; require self to be zero too.
            return self.data.iter().all(|z| z.is_zero(tol));
        }
        let phase = self.data[best] / rhs.data[best];
        if (phase.abs() - 1.0).abs() > tol.max(1e-9) {
            return false;
        }
        self.approx_eq(&rhs.scale(phase), tol)
    }

    /// Frobenius norm of the difference to `rhs`, handy in diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn distance(&self, rhs: &Self) -> f64 {
        assert_eq!(self.rows, rhs.rows, "row mismatch in distance");
        assert_eq!(self.cols, rhs.cols, "column mismatch in distance");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a - b).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Embeds a `2^k`-dimensional operator acting on `positions` into the
    /// full `2^num_qubits`-dimensional space, acting as identity elsewhere.
    ///
    /// Bit conventions: basis-state index bit `q` corresponds to qubit `q`
    /// (qubit 0 is the least-significant bit), and operand `j` of the small
    /// operator corresponds to bit `j` of its own index. `positions[j]` names
    /// the qubit that operand `j` acts on.
    ///
    /// # Panics
    ///
    /// Panics if the operator is not square with dimension `2^positions.len()`,
    /// if any position repeats, or if a position is `>= num_qubits`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qmath::CMatrix;
    /// // X on qubit 1 of a 2-qubit register maps |00> -> |10>.
    /// let full = CMatrix::pauli_x().embed(&[1], 2);
    /// assert_eq!(full[(2, 0)], qmath::C64::one());
    /// ```
    #[must_use]
    pub fn embed(&self, positions: &[usize], num_qubits: usize) -> Self {
        let k = positions.len();
        assert!(self.is_square(), "embed requires a square operator");
        assert_eq!(self.rows, 1 << k, "operator dimension must be 2^positions");
        for (idx, &p) in positions.iter().enumerate() {
            assert!(
                p < num_qubits,
                "position {p} out of range for {num_qubits} qubits"
            );
            assert!(
                !positions[..idx].contains(&p),
                "duplicate position {p} in embed"
            );
        }
        let dim = 1usize << num_qubits;
        let mut out = Self::zeros(dim, dim);
        for i in 0..dim {
            let mut s = 0usize;
            let mut base = i;
            for (j, &p) in positions.iter().enumerate() {
                s |= ((i >> p) & 1) << j;
                base &= !(1usize << p);
            }
            for sp in 0..(1usize << k) {
                let entry = self[(sp, s)];
                if entry.is_zero(0.0) {
                    continue;
                }
                let mut out_idx = base;
                for (j, &p) in positions.iter().enumerate() {
                    out_idx |= ((sp >> j) & 1) << p;
                }
                out[(out_idx, i)] = entry;
            }
        }
        out
    }

    /// Builds the controlled version of a unitary: operands are
    /// `n_controls` control bits (low index bits) followed by the base
    /// operator's operands (high index bits). The base operator is applied
    /// only when every control bit is 1.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not square.
    #[must_use]
    pub fn controlled(base: &Self, n_controls: usize) -> Self {
        assert!(base.is_square(), "controlled requires a square operator");
        let bd = base.rows;
        let dim = bd << n_controls;
        let mask = (1usize << n_controls) - 1;
        let mut out = Self::zeros(dim, dim);
        for i in 0..dim {
            if i & mask == mask {
                let s = i >> n_controls;
                for sp in 0..bd {
                    out[((sp << n_controls) | mask, i)] = base[(sp, s)];
                }
            } else {
                out[(i, i)] = C64::one();
            }
        }
        out
    }

    // --- Common gate matrices, used by tests and by the `qcir` gate set ---

    /// The 2x2 Hadamard matrix.
    #[must_use]
    pub fn hadamard() -> Self {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Self::from_real(&[s, s, s, -s])
    }

    /// The 2x2 Pauli-X matrix.
    #[must_use]
    pub fn pauli_x() -> Self {
        Self::from_real(&[0.0, 1.0, 1.0, 0.0])
    }

    /// The 2x2 Pauli-Y matrix.
    #[must_use]
    pub fn pauli_y() -> Self {
        Self::from_flat(vec![C64::zero(), -C64::i(), C64::i(), C64::zero()])
    }

    /// The 2x2 Pauli-Z matrix.
    #[must_use]
    pub fn pauli_z() -> Self {
        Self::from_real(&[1.0, 0.0, 0.0, -1.0])
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s2() -> f64 {
        std::f64::consts::FRAC_1_SQRT_2
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let h = CMatrix::hadamard();
        let id = CMatrix::identity(2);
        assert!(h.mul(&id).approx_eq(&h, 0.0));
        assert!(id.mul(&h).approx_eq(&h, 0.0));
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = CMatrix::hadamard();
        assert!(h.mul(&h).approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for m in [CMatrix::pauli_x(), CMatrix::pauli_y(), CMatrix::pauli_z()] {
            assert!(m.is_unitary(1e-12));
            assert!(m.is_hermitian(1e-12));
        }
    }

    #[test]
    fn pauli_algebra_xy_equals_iz() {
        let xy = CMatrix::pauli_x().mul(&CMatrix::pauli_y());
        let iz = CMatrix::pauli_z().scale(C64::i());
        assert!(xy.approx_eq(&iz, 1e-12));
    }

    #[test]
    fn mul_vec_applies_hadamard() {
        let h = CMatrix::hadamard();
        let v = h.mul_vec(&[C64::one(), C64::zero()]);
        assert!(v[0].approx_eq(C64::real(s2()), 1e-12));
        assert!(v[1].approx_eq(C64::real(s2()), 1e-12));
    }

    #[test]
    #[should_panic(expected = "vector length")]
    fn mul_vec_rejects_wrong_length() {
        let _ = CMatrix::hadamard().mul_vec(&[C64::one()]);
    }

    #[test]
    fn kron_shapes_and_values() {
        let x = CMatrix::pauli_x();
        let id = CMatrix::identity(2);
        let k = x.kron(&id);
        assert_eq!(k.rows(), 4);
        // X (x) I maps |00> -> |10> (big-endian row convention).
        assert_eq!(k[(2, 0)], C64::one());
        assert_eq!(k[(0, 0)], C64::zero());
    }

    #[test]
    fn kron_of_unitaries_is_unitary() {
        let k = CMatrix::hadamard().kron(&CMatrix::pauli_y());
        assert!(k.is_unitary(1e-12));
    }

    #[test]
    fn dagger_reverses_products() {
        let a = CMatrix::hadamard();
        let b = CMatrix::pauli_y();
        let lhs = a.mul(&b).dagger();
        let rhs = b.dagger().mul(&a.dagger());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn transpose_and_conj_compose_to_dagger() {
        let y = CMatrix::pauli_y();
        assert!(y.transpose().conj().approx_eq(&y.dagger(), 0.0));
    }

    #[test]
    fn trace_of_identity_is_dimension() {
        assert_eq!(CMatrix::identity(4).trace(), C64::real(4.0));
        assert_eq!(CMatrix::pauli_x().trace(), C64::zero());
    }

    #[test]
    fn add_sub_round_trip() {
        let a = CMatrix::hadamard();
        let b = CMatrix::pauli_z();
        assert!(a.add(&b).sub(&b).approx_eq(&a, 1e-12));
    }

    #[test]
    fn global_phase_equality() {
        let h = CMatrix::hadamard();
        let phased = h.scale(C64::cis(0.7));
        assert!(phased.approx_eq_up_to_phase(&h, 1e-12));
        assert!(!phased.approx_eq(&h, 1e-12));
        assert!(!CMatrix::pauli_x().approx_eq_up_to_phase(&CMatrix::pauli_z(), 1e-9));
    }

    #[test]
    fn distance_is_zero_for_equal_matrices() {
        let h = CMatrix::hadamard();
        assert_eq!(h.distance(&h), 0.0);
        assert!(h.distance(&CMatrix::identity(2)) > 0.5);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_rejects_mismatched_shapes() {
        let _ = CMatrix::identity(2).mul(&CMatrix::identity(3));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_rejects_ragged_input() {
        let r0 = [C64::one()];
        let r1 = [C64::one(), C64::zero()];
        let _ = CMatrix::from_rows(&[&r0, &r1]);
    }

    #[test]
    fn from_real_builds_square() {
        let m = CMatrix::from_real(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(1, 0)], C64::real(3.0));
    }

    #[test]
    fn controlled_x_is_cnot() {
        let cx = CMatrix::controlled(&CMatrix::pauli_x(), 1);
        // Operand order [control, target]; control is bit 0.
        // |c=1,t=0> (index 1) -> |c=1,t=1> (index 3).
        assert_eq!(cx[(3, 1)], C64::one());
        assert_eq!(cx[(1, 3)], C64::one());
        assert_eq!(cx[(0, 0)], C64::one());
        assert_eq!(cx[(2, 2)], C64::one());
        assert!(cx.is_unitary(1e-12));
    }

    #[test]
    fn doubly_controlled_x_is_toffoli() {
        let ccx = CMatrix::controlled(&CMatrix::pauli_x(), 2);
        assert_eq!(ccx.rows(), 8);
        // |c0=1,c1=1,t=0> (index 3) -> index 7.
        assert_eq!(ccx[(7, 3)], C64::one());
        // |c0=1,c1=0,t=0> stays put.
        assert_eq!(ccx[(1, 1)], C64::one());
        assert!(ccx.is_unitary(1e-12));
    }

    #[test]
    fn embed_on_all_positions_is_identity_permutation() {
        let cx = CMatrix::controlled(&CMatrix::pauli_x(), 1);
        assert!(cx.embed(&[0, 1], 2).approx_eq(&cx, 0.0));
    }

    #[test]
    fn embed_reverses_operand_order() {
        let cx = CMatrix::controlled(&CMatrix::pauli_x(), 1);
        // CX with control=qubit1, target=qubit0: |10> (index 2) -> |11>.
        let rev = cx.embed(&[1, 0], 2);
        assert_eq!(rev[(3, 2)], C64::one());
        assert_eq!(rev[(1, 1)], C64::one());
    }

    #[test]
    fn embed_into_larger_register_acts_as_identity_elsewhere() {
        let x = CMatrix::pauli_x();
        let full = x.embed(&[1], 3);
        assert!(full.is_unitary(1e-12));
        // |000> -> |010>, |101> -> |111>.
        assert_eq!(full[(0b010, 0b000)], C64::one());
        assert_eq!(full[(0b111, 0b101)], C64::one());
    }

    #[test]
    fn embed_matches_kron_for_low_qubit() {
        // X on qubit 0 of 2 qubits == I (x) X in big-endian kron order,
        // i.e. index = q1*2 + q0, matrix rows indexed the same way.
        let viaembed = CMatrix::pauli_x().embed(&[0], 2);
        let viakron = CMatrix::identity(2).kron(&CMatrix::pauli_x());
        assert!(viaembed.approx_eq(&viakron, 0.0));
    }

    #[test]
    #[should_panic(expected = "duplicate position")]
    fn embed_rejects_duplicate_positions() {
        let cx = CMatrix::controlled(&CMatrix::pauli_x(), 1);
        let _ = cx.embed(&[1, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn embed_rejects_out_of_range_position() {
        let _ = CMatrix::pauli_x().embed(&[2], 2);
    }
}
