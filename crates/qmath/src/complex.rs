//! A minimal double-precision complex number.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// The type is deliberately small and `Copy`; it implements the arithmetic
/// operators, conjugation and the polar helpers needed for gate matrices and
/// statevector simulation.
///
/// # Examples
///
/// ```
/// use qmath::C64;
///
/// let z = C64::new(1.0, 1.0);
/// assert!((z.abs() - 2f64.sqrt()).abs() < 1e-12);
/// assert_eq!(z * z.conj(), C64::new(2.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Creates a complex number from real and imaginary parts.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity `0 + 0i`.
    #[must_use]
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0)
    }

    /// The multiplicative identity `1 + 0i`.
    #[must_use]
    pub const fn one() -> Self {
        Self::new(1.0, 0.0)
    }

    /// The imaginary unit `i`.
    #[must_use]
    pub const fn i() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Creates a purely real complex number.
    #[must_use]
    pub const fn real(re: f64) -> Self {
        Self::new(re, 0.0)
    }

    /// Creates `r * e^{i theta}` from polar coordinates.
    ///
    /// # Examples
    ///
    /// ```
    /// use qmath::C64;
    /// let z = C64::from_polar(1.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - C64::i()).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{i theta}`, a unit-modulus phase factor.
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Modulus `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|^2`; cheaper than [`C64::abs`] and the quantity
    /// that becomes a measurement probability.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `self` is exactly zero.
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d != 0.0, "attempted to invert zero");
        Self::new(self.re / d, -self.im / d)
    }

    /// Multiplies by the imaginary unit (a quarter-turn in the plane).
    #[must_use]
    pub fn mul_i(self) -> Self {
        Self::new(-self.im, self.re)
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Returns `true` when both parts are within `tol` of `other`'s.
    #[must_use]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Returns `true` when the modulus is within `tol` of zero.
    #[must_use]
    pub fn is_zero(self, tol: f64) -> bool {
        self.norm_sqr() <= tol * tol
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for C64 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for C64 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul for C64 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div for C64 {
    type Output = Self;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Div<f64> for C64 {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), Add::add)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn constructors_and_constants() {
        assert_eq!(C64::zero(), C64::new(0.0, 0.0));
        assert_eq!(C64::one(), C64::new(1.0, 0.0));
        assert_eq!(C64::i(), C64::new(0.0, 1.0));
        assert_eq!(C64::real(2.5), C64::new(2.5, 0.0));
        assert_eq!(C64::from(3.0), C64::real(3.0));
    }

    #[test]
    fn addition_and_subtraction() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-3.0, 0.5);
        assert_eq!(a + b, C64::new(-2.0, 2.5));
        assert_eq!(a - b, C64::new(4.0, 1.5));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn multiplication_follows_i_squared_is_minus_one() {
        assert_eq!(C64::i() * C64::i(), C64::real(-1.0));
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a * b, C64::new(5.0, 5.0));
        let mut c = a;
        c *= b;
        assert_eq!(c, a * b);
    }

    #[test]
    fn scalar_multiplication_commutes() {
        let z = C64::new(1.0, -2.0);
        assert_eq!(z * 2.0, 2.0 * z);
        assert_eq!(z * 2.0, C64::new(2.0, -4.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert!(((a * b) / b).approx_eq(a, 1e-12));
        assert_eq!(C64::new(2.0, 4.0) / 2.0, C64::new(1.0, 2.0));
    }

    #[test]
    fn recip_of_i_is_minus_i() {
        assert!(C64::i().recip().approx_eq(-C64::i(), 1e-15));
    }

    #[test]
    fn conjugation_negates_imaginary_part() {
        assert_eq!(C64::new(1.0, 2.0).conj(), C64::new(1.0, -2.0));
    }

    #[test]
    fn modulus_and_norm_sqr_agree() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::from_polar(2.0, FRAC_PI_4);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn cis_of_pi_is_minus_one() {
        assert!(C64::cis(PI).approx_eq(C64::real(-1.0), 1e-12));
        assert!(C64::cis(FRAC_PI_2).approx_eq(C64::i(), 1e-12));
    }

    #[test]
    fn mul_i_is_quarter_turn() {
        let z = C64::new(1.0, 2.0);
        assert_eq!(z.mul_i(), z * C64::i());
    }

    #[test]
    fn sum_accumulates() {
        let s: C64 = [C64::one(), C64::i(), C64::new(1.0, 1.0)].into_iter().sum();
        assert_eq!(s, C64::new(2.0, 2.0));
    }

    #[test]
    fn is_zero_respects_tolerance() {
        assert!(C64::new(1e-12, -1e-12).is_zero(1e-10));
        assert!(!C64::new(1e-3, 0.0).is_zero(1e-10));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
