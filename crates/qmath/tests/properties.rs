//! Property-based tests for the matrix substrate, driven by random
//! unitaries composed from elementary gate matrices.

use proptest::prelude::*;
use qmath::{CMatrix, C64};

/// Elementary 2x2 unitaries to compose from.
fn elem(idx: u8) -> CMatrix {
    match idx % 5 {
        0 => CMatrix::hadamard(),
        1 => CMatrix::pauli_x(),
        2 => CMatrix::pauli_y(),
        3 => CMatrix::pauli_z(),
        _ => CMatrix::from_flat(vec![
            C64::one(),
            C64::zero(),
            C64::zero(),
            C64::cis(std::f64::consts::FRAC_PI_4),
        ]),
    }
}

/// A random n-qubit unitary built by multiplying embedded elementary gates.
fn arb_unitary(n: usize) -> impl Strategy<Value = CMatrix> {
    proptest::collection::vec((any::<u8>(), 0..n), 0..10).prop_map(move |ops| {
        let mut u = CMatrix::identity(1 << n);
        for (g, q) in ops {
            u = elem(g).embed(&[q], n).mul(&u);
        }
        u
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn composed_unitaries_stay_unitary(u in arb_unitary(2)) {
        prop_assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn dagger_is_an_involution(u in arb_unitary(2)) {
        prop_assert!(u.dagger().dagger().approx_eq(&u, 0.0));
    }

    #[test]
    fn dagger_inverts_unitaries(u in arb_unitary(2)) {
        prop_assert!(u.mul(&u.dagger()).approx_eq(&CMatrix::identity(4), 1e-9));
    }

    #[test]
    fn trace_is_invariant_under_conjugation(u in arb_unitary(2), v in arb_unitary(2)) {
        // Tr(U V U†) = Tr(V).
        let conj = u.mul(&v).mul(&u.dagger());
        let a = conj.trace();
        let b = v.trace();
        prop_assert!(a.approx_eq(b, 1e-8));
    }

    #[test]
    fn kron_distributes_over_multiplication(
        a in arb_unitary(1),
        b in arb_unitary(1),
        c in arb_unitary(1),
        d in arb_unitary(1),
    ) {
        // (A x B)(C x D) = AC x BD.
        let lhs = a.kron(&b).mul(&c.kron(&d));
        let rhs = a.mul(&c).kron(&b.mul(&d));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn embed_commutes_for_disjoint_wires(g in any::<u8>(), h in any::<u8>()) {
        let a = elem(g).embed(&[0], 3);
        let b = elem(h).embed(&[2], 3);
        prop_assert!(a.mul(&b).approx_eq(&b.mul(&a), 1e-9));
    }

    #[test]
    fn embed_preserves_unitarity(u in arb_unitary(2)) {
        prop_assert!(u.embed(&[2, 0], 3).is_unitary(1e-9));
    }

    #[test]
    fn global_phase_equivalence_is_reflexive_and_phase_blind(
        u in arb_unitary(2),
        theta in 0.0f64..std::f64::consts::TAU,
    ) {
        prop_assert!(u.approx_eq_up_to_phase(&u, 1e-9));
        let phased = u.scale(C64::cis(theta));
        prop_assert!(phased.approx_eq_up_to_phase(&u, 1e-8));
    }

    #[test]
    fn mul_vec_matches_matrix_product(u in arb_unitary(2), v in arb_unitary(2)) {
        // (UV) e0 == U (V e0).
        let mut e0 = vec![C64::zero(); 4];
        e0[0] = C64::one();
        let lhs = u.mul(&v).mul_vec(&e0);
        let rhs = u.mul_vec(&v.mul_vec(&e0));
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!(x.approx_eq(*y, 1e-9));
        }
    }

    #[test]
    fn controlled_matrix_acts_trivially_without_controls(u in arb_unitary(1)) {
        let c = CMatrix::controlled(&u, 1);
        // Column of |control=0, target=0> stays |00>.
        let mut e0 = vec![C64::zero(); 4];
        e0[0] = C64::one();
        let out = c.mul_vec(&e0);
        prop_assert!(out[0].approx_eq(C64::one(), 1e-9));
    }
}
