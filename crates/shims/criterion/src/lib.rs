//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmarking harness exposing the API subset the
//! workspace's benches use: [`Criterion`], [`criterion_group!`],
//! [`criterion_main!`], benchmark groups with `sample_size`, and benchers
//! with `iter` / `iter_batched`. It reports the median and minimum
//! time-per-iteration on stdout; there is no statistical analysis, HTML
//! report or regression tracking.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export of
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// iteration regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 20,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_benchmark(name, self.sample_size, f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: samples.max(2),
        per_iter: Vec::new(),
    };
    f(&mut bencher);
    let mut times = bencher.per_iter;
    if times.is_empty() {
        println!("  {name}: no measurements");
        return;
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let min = times[0];
    println!(
        "  {name}: median {} / min {} per iter ({} samples)",
        fmt_duration(median),
        fmt_duration(min),
        times.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Times closures; handed to each benchmark function.
pub struct Bencher {
    samples: usize,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording one sample per invocation (after one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.per_iter.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.per_iter.push(t0.elapsed());
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
