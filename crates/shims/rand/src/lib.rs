//! Offline stand-in for the `rand` crate.
//!
//! The build sandbox has no network access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen::<f64>()`, `gen::<bool>()`,
//!   `gen_bool(p)` and `gen_range(a..b)`;
//! * [`SeedableRng`] with `seed_from_u64` and `from_entropy`;
//! * [`rngs::StdRng`], implemented as xoshiro256** seeded through
//!   SplitMix64 (high-quality, tiny, and deterministic for a given seed).
//!
//! The statistical behaviour differs from upstream `StdRng` (different
//! generator), but every consumer in this workspace relies only on
//! determinism-per-seed and uniformity, never on the exact stream.

use std::ops::Range;

/// The SplitMix64 output function: a bijective 64-bit mixer with full
/// avalanche (every input bit affects every output bit).
#[inline]
#[must_use]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The SplitMix64 additive constant (the "golden gamma").
const SPLITMIX64_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Derives the seed of counter-based stream `stream` from `base`: the
/// `stream + 1`-th output of the SplitMix64 sequence seeded at `base`.
///
/// The derivation is O(1) in `stream` and collision-free for a fixed
/// `base` (SplitMix64 is a bijection over a full-period counter), so
/// `stream_seed(base, 0..n)` yields `n` decorrelated, order-independent
/// seeds: stream `i`'s value never depends on how many draws any other
/// stream made. This is the substrate for reproducible parallel shot
/// execution.
#[inline]
#[must_use]
pub fn stream_seed(base: u64, stream: u64) -> u64 {
    splitmix64_mix(base.wrapping_add(stream.wrapping_add(1).wrapping_mul(SPLITMIX64_GAMMA)))
}

/// The low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (uniform over the
/// type's natural domain; `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo` is the caller's contract.
    fn uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < 2^-64 for every span used here.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator interface (blanket-implemented like upstream).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample(self) < p
    }

    /// Uniform draw from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range: empty range");
        T::uniform(range.start, range.end, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Non-deterministic construction (system time + address entropy).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xdead_beef);
        let addr = &t as *const u64 as u64;
        Self::seed_from_u64(t ^ addr.rotate_left(32))
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        super::splitmix64_mix(*state)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 10_000.0;
        assert!((p - 0.25).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn stream_seeds_are_order_independent_and_distinct() {
        // stream_seed(base, i) depends only on (base, i): computing the
        // seeds in any order, or skipping streams, changes nothing.
        let base = 0xABCD_EF01;
        let forward: Vec<u64> = (0..64).map(|i| super::stream_seed(base, i)).collect();
        let backward: Vec<u64> = (0..64).rev().map(|i| super::stream_seed(base, i)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "stream seeds must not depend on evaluation order"
        );
        let distinct: std::collections::BTreeSet<u64> = forward.iter().copied().collect();
        assert_eq!(distinct.len(), 64, "stream seeds must be collision-free");
    }

    #[test]
    fn stream_seeds_decorrelate_across_bases() {
        let a: Vec<u64> = (0..32).map(|i| super::stream_seed(1, i)).collect();
        let b: Vec<u64> = (0..32).map(|i| super::stream_seed(2, i)).collect();
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn stream_seeded_rngs_produce_uniform_aggregate() {
        // Aggregated across streams, the derived generators must still look
        // uniform (each stream contributes a few draws, as shots do).
        let mut sum = 0.0;
        let n = 2000;
        for i in 0..n {
            let mut rng = StdRng::seed_from_u64(super::stream_seed(77, i));
            for _ in 0..5 {
                sum += rng.gen::<f64>();
            }
        }
        let mean = sum / (5.0 * n as f64);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }
}
