//! Offline stand-in for the `proptest` crate.
//!
//! The build sandbox has no crates.io access, so this crate reimplements the
//! subset of the proptest 1.x API that the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map` and `boxed`;
//! * [`strategy::Just`], integer/float range strategies, tuple strategies,
//!   `any::<T>()`, and weighted unions via [`prop_oneof!`];
//! * [`collection::vec`] with exact or ranged sizes;
//! * the [`proptest!`] test macro with `#![proptest_config(...)]`, plus
//!   [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! **No shrinking**: a failing case panics immediately, reporting the case
//! index and the deterministic per-case seed so it can be replayed. Every
//! run is fully deterministic (seeds derive from the case index only),
//! which suits a reproduction repo better than time-seeded exploration.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, (a, b) in arb_pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let __seed = $crate::test_runner::case_seed(stringify!($name), __case);
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __guard = $crate::test_runner::CaseGuard::new(stringify!($name), __case, __seed);
                { $body }
                __guard.disarm();
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness (no shrinking here,
/// so it simply panics with the failing condition).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Weighted or unweighted union of strategies with a common value type.
///
/// ```ignore
/// prop_oneof![Just(1), Just(2)];          // equal weights
/// prop_oneof![3 => heavy(), 1 => rare()]; // weighted
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}
