//! Deterministic case runner support: config, RNG and failure reporting.

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256; the shim favours fast,
    /// deterministic suites.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic seed for one `(test, case)` pair (FNV-1a over the name,
/// mixed with the case index).
#[must_use]
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// The generation RNG: xoshiro256** seeded through SplitMix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Deterministic construction from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Prints replay information when a property body panics.
///
/// Armed on construction; [`CaseGuard::disarm`] marks the case as passed.
/// If the guard drops while panicking it reports the test name, case index
/// and seed (the shim's substitute for proptest's persisted regressions).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    seed: u64,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard for one case.
    #[must_use]
    pub fn new(name: &'static str, case: u32, seed: u64) -> Self {
        CaseGuard {
            name,
            case,
            seed,
            armed: true,
        }
    }

    /// Marks the case as passed.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest-shim: property '{}' failed at case {} (seed {:#018x})",
                self.name, self.case, self.seed
            );
        }
    }
}
