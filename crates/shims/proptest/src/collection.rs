//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A size specification for collection strategies: either exact or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            return self.lo;
        }
        self.lo + (rng.next_u64() as usize) % (self.hi - self.lo)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec`: vectors with `size` elements drawn from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
