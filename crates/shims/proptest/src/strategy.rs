//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// directly produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only generated values satisfying `pred`, retrying a bounded
    /// number of times.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`] arms of
    /// differing concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

// --- type-erased strategies -------------------------------------------------

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

// --- primitive strategies ---------------------------------------------------

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`"; see [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T` (mirrors `proptest::arbitrary::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {:?}..{:?}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
);

// --- combinators ------------------------------------------------------------

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}': rejected 1000 candidates", self.whence);
    }
}

/// Weighted union of type-erased strategies; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof: no arms with positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}
