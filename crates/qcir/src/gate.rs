//! The gate set: unitary operations and their matrices.

use qmath::{CMatrix, C64};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};
use std::fmt;

/// A unitary quantum gate.
///
/// The set covers everything the reproduced paper needs: the Clifford+T basis
/// (`H`, `X`, `S`, `T`, `CX`, ...), the controlled-sqrt-NOT gates `CV`/`CV†`
/// of Barenco's Toffoli decomposition, the Toffoli gate itself, its
/// multi-controlled generalisation (the paper's future-work target), and the
/// rotation/phase gates needed for (iterative) QPE.
///
/// # Matrix convention
///
/// [`Gate::matrix`] returns the unitary with **operand `k` of the gate mapped
/// to bit `k` of the basis-state index** (least-significant bit first). For
/// [`Gate::Cx`] the first operand is the control, so the matrix sends index
/// `0b01` (control 1, target 0) to `0b11`.
///
/// # Examples
///
/// ```
/// use qcir::Gate;
/// // V * V = X: the controlled-sqrt-NOT identity the paper's Eqn (1) uses.
/// let v2 = Gate::V.matrix().mul(&Gate::V.matrix());
/// assert!(v2.approx_eq(&Gate::X.matrix(), 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Identity.
    I,
    /// Hadamard.
    H,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = sqrt(Z).
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T = fourth root of Z.
    T,
    /// Inverse T†.
    Tdg,
    /// V = sqrt(X) (also written sqrt-NOT or SX).
    V,
    /// Inverse V† = sqrt(X)†.
    Vdg,
    /// Phase rotation `P(theta) = diag(1, e^{i theta})`.
    P(f64),
    /// Rotation about the X axis by `theta`.
    Rx(f64),
    /// Rotation about the Y axis by `theta`.
    Ry(f64),
    /// Rotation about the Z axis by `theta`.
    Rz(f64),
    /// Controlled-NOT; operands `[control, target]`.
    Cx,
    /// Controlled-Y; operands `[control, target]`.
    Cy,
    /// Controlled-Z; operands `[control, target]`.
    Cz,
    /// Controlled phase rotation; operands `[control, target]`.
    Cp(f64),
    /// Controlled-V (controlled sqrt-NOT); operands `[control, target]`.
    Cv,
    /// Controlled-V†; operands `[control, target]`.
    Cvdg,
    /// Swap of two qubits.
    Swap,
    /// Toffoli (doubly controlled NOT); operands `[control0, control1, target]`.
    Ccx,
    /// Doubly controlled Z; operands `[control0, control1, target]`.
    Ccz,
    /// Multiple-control Toffoli with `n` controls (`n >= 1`); operands
    /// `[control0, ..., control_{n-1}, target]`. `Mcx(1)` equals [`Gate::Cx`]
    /// and `Mcx(2)` equals [`Gate::Ccx`].
    Mcx(usize),
}

impl Gate {
    /// Number of qubits the gate acts on.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::I
            | Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::V
            | Gate::Vdg
            | Gate::P(_)
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_) => 1,
            Gate::Cx | Gate::Cy | Gate::Cz | Gate::Cp(_) | Gate::Cv | Gate::Cvdg | Gate::Swap => 2,
            Gate::Ccx | Gate::Ccz => 3,
            Gate::Mcx(n) => n + 1,
        }
    }

    /// Lower-case mnemonic used in QASM export and diagnostics.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::V => "sx",
            Gate::Vdg => "sxdg",
            Gate::P(_) => "p",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Cx => "cx",
            Gate::Cy => "cy",
            Gate::Cz => "cz",
            Gate::Cp(_) => "cp",
            Gate::Cv => "csx",
            Gate::Cvdg => "csxdg",
            Gate::Swap => "swap",
            Gate::Ccx => "ccx",
            Gate::Ccz => "ccz",
            Gate::Mcx(_) => "mcx",
        }
    }

    /// Angle parameters, empty for non-parameterised gates.
    #[must_use]
    pub fn params(&self) -> Vec<f64> {
        match self {
            Gate::P(t) | Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Cp(t) => vec![*t],
            _ => Vec::new(),
        }
    }

    /// The inverse gate (`U†`).
    ///
    /// # Examples
    ///
    /// ```
    /// use qcir::Gate;
    /// assert_eq!(Gate::T.inverse(), Gate::Tdg);
    /// assert_eq!(Gate::Cx.inverse(), Gate::Cx);
    /// ```
    #[must_use]
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::V => Gate::Vdg,
            Gate::Vdg => Gate::V,
            Gate::Cv => Gate::Cvdg,
            Gate::Cvdg => Gate::Cv,
            Gate::P(t) => Gate::P(-t),
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Cp(t) => Gate::Cp(-t),
            other => other.clone(),
        }
    }

    /// `true` when the gate equals its own inverse.
    #[must_use]
    pub fn is_self_inverse(&self) -> bool {
        *self == self.inverse()
    }

    /// `true` when the gate's matrix is diagonal in the computational basis.
    ///
    /// Diagonal gates commute with each other and with computational-basis
    /// measurement — the property the dynamic transformation exploits.
    #[must_use]
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::P(_)
                | Gate::Rz(_)
                | Gate::Cz
                | Gate::Cp(_)
                | Gate::Ccz
        )
    }

    /// Number of control operands for controlled gates, 0 otherwise.
    #[must_use]
    pub fn num_controls(&self) -> usize {
        match self {
            Gate::Cx | Gate::Cy | Gate::Cz | Gate::Cp(_) | Gate::Cv | Gate::Cvdg => 1,
            Gate::Ccx | Gate::Ccz => 2,
            Gate::Mcx(n) => *n,
            _ => 0,
        }
    }

    /// The unitary matrix, with operand `k` on index bit `k` (LSB first).
    ///
    /// # Examples
    ///
    /// ```
    /// use qcir::Gate;
    /// assert!(Gate::Ccx.matrix().is_unitary(1e-12));
    /// ```
    #[must_use]
    pub fn matrix(&self) -> CMatrix {
        match self {
            Gate::I => CMatrix::identity(2),
            Gate::H => CMatrix::hadamard(),
            Gate::X => CMatrix::pauli_x(),
            Gate::Y => CMatrix::pauli_y(),
            Gate::Z => CMatrix::pauli_z(),
            Gate::S => phase_matrix(FRAC_PI_2),
            Gate::Sdg => phase_matrix(-FRAC_PI_2),
            Gate::T => phase_matrix(FRAC_PI_4),
            Gate::Tdg => phase_matrix(-FRAC_PI_4),
            Gate::V => sqrt_x_matrix(false),
            Gate::Vdg => sqrt_x_matrix(true),
            Gate::P(t) => phase_matrix(*t),
            Gate::Rx(t) => {
                let (c, sn) = ((t / 2.0).cos(), (t / 2.0).sin());
                CMatrix::from_flat(vec![
                    C64::real(c),
                    C64::new(0.0, -sn),
                    C64::new(0.0, -sn),
                    C64::real(c),
                ])
            }
            Gate::Ry(t) => {
                let (c, sn) = ((t / 2.0).cos(), (t / 2.0).sin());
                CMatrix::from_real(&[c, -sn, sn, c])
            }
            Gate::Rz(t) => CMatrix::from_flat(vec![
                C64::cis(-t / 2.0),
                C64::zero(),
                C64::zero(),
                C64::cis(t / 2.0),
            ]),
            Gate::Cx => CMatrix::controlled(&CMatrix::pauli_x(), 1),
            Gate::Cy => CMatrix::controlled(&CMatrix::pauli_y(), 1),
            Gate::Cz => CMatrix::controlled(&CMatrix::pauli_z(), 1),
            Gate::Cp(t) => CMatrix::controlled(&phase_matrix(*t), 1),
            Gate::Cv => CMatrix::controlled(&sqrt_x_matrix(false), 1),
            Gate::Cvdg => CMatrix::controlled(&sqrt_x_matrix(true), 1),
            Gate::Swap => {
                let mut m = CMatrix::zeros(4, 4);
                m[(0, 0)] = C64::one();
                m[(1, 2)] = C64::one();
                m[(2, 1)] = C64::one();
                m[(3, 3)] = C64::one();
                m
            }
            Gate::Ccx => CMatrix::controlled(&CMatrix::pauli_x(), 2),
            Gate::Ccz => CMatrix::controlled(&CMatrix::pauli_z(), 2),
            Gate::Mcx(n) => CMatrix::controlled(&CMatrix::pauli_x(), *n),
        }
    }
}

/// `diag(1, e^{i theta})`.
fn phase_matrix(theta: f64) -> CMatrix {
    CMatrix::from_flat(vec![C64::one(), C64::zero(), C64::zero(), C64::cis(theta)])
}

/// `sqrt(X)` or its dagger: `1/2 [[1±i, 1∓i], [1∓i, 1±i]]`.
fn sqrt_x_matrix(dagger: bool) -> CMatrix {
    let p = if dagger { -0.5 } else { 0.5 };
    let a = C64::new(0.5, p);
    let b = C64::new(0.5, -p);
    CMatrix::from_flat(vec![a, b, b, a])
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            write!(f, "{}(", self.name())?;
            for (i, p) in params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p:.6}")?;
            }
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn all_fixed_gates() -> Vec<Gate> {
        vec![
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::V,
            Gate::Vdg,
            Gate::P(0.3),
            Gate::Rx(0.3),
            Gate::Ry(0.3),
            Gate::Rz(0.3),
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Cp(0.3),
            Gate::Cv,
            Gate::Cvdg,
            Gate::Swap,
            Gate::Ccx,
            Gate::Ccz,
            Gate::Mcx(3),
            Gate::Mcx(4),
        ]
    }

    #[test]
    fn every_gate_matrix_is_unitary() {
        for g in all_fixed_gates() {
            let m = g.matrix();
            assert!(m.is_unitary(1e-12), "{g} is not unitary");
            assert_eq!(m.rows(), 1 << g.num_qubits(), "{g} has wrong dimension");
        }
    }

    #[test]
    fn every_gate_inverse_matrix_is_dagger() {
        for g in all_fixed_gates() {
            let m = g.matrix();
            let inv = g.inverse().matrix();
            assert!(
                m.mul(&inv).approx_eq(&CMatrix::identity(m.rows()), 1e-12),
                "{g} inverse is wrong"
            );
        }
    }

    #[test]
    fn v_squared_is_x() {
        let v = Gate::V.matrix();
        assert!(v.mul(&v).approx_eq(&Gate::X.matrix(), 1e-12));
    }

    #[test]
    fn cv_squared_is_cx() {
        let cv = Gate::Cv.matrix();
        assert!(cv.mul(&cv).approx_eq(&Gate::Cx.matrix(), 1e-12));
    }

    #[test]
    fn s_is_t_squared() {
        let t = Gate::T.matrix();
        assert!(t.mul(&t).approx_eq(&Gate::S.matrix(), 1e-12));
    }

    #[test]
    fn v_equals_h_s_h() {
        // V = H S H — the identity behind the paper's Fig. 6 decomposition.
        let hsh = Gate::H
            .matrix()
            .mul(&Gate::S.matrix())
            .mul(&Gate::H.matrix());
        assert!(hsh.approx_eq(&Gate::V.matrix(), 1e-12));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        assert!(Gate::Rx(PI)
            .matrix()
            .approx_eq_up_to_phase(&Gate::X.matrix(), 1e-12));
    }

    #[test]
    fn rz_and_phase_agree_up_to_phase() {
        assert!(Gate::Rz(0.7)
            .matrix()
            .approx_eq_up_to_phase(&Gate::P(0.7).matrix(), 1e-12));
    }

    #[test]
    fn cx_moves_control_one() {
        let cx = Gate::Cx.matrix();
        // |control=1, target=0> = index 1 -> index 3.
        assert_eq!(cx[(3, 1)], C64::one());
        assert_eq!(cx[(2, 2)], C64::one());
    }

    #[test]
    fn mcx_low_orders_match_named_gates() {
        assert!(Gate::Mcx(1).matrix().approx_eq(&Gate::Cx.matrix(), 0.0));
        assert!(Gate::Mcx(2).matrix().approx_eq(&Gate::Ccx.matrix(), 0.0));
    }

    #[test]
    fn arity_is_consistent() {
        assert_eq!(Gate::H.num_qubits(), 1);
        assert_eq!(Gate::Cv.num_qubits(), 2);
        assert_eq!(Gate::Ccx.num_qubits(), 3);
        assert_eq!(Gate::Mcx(5).num_qubits(), 6);
    }

    #[test]
    fn controls_are_counted() {
        assert_eq!(Gate::H.num_controls(), 0);
        assert_eq!(Gate::Cv.num_controls(), 1);
        assert_eq!(Gate::Ccx.num_controls(), 2);
        assert_eq!(Gate::Mcx(4).num_controls(), 4);
    }

    #[test]
    fn diagonal_classification_matches_matrices() {
        for g in all_fixed_gates() {
            let m = g.matrix();
            let mut diag = true;
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    if i != j && !m[(i, j)].is_zero(1e-12) {
                        diag = false;
                    }
                }
            }
            assert_eq!(g.is_diagonal(), diag, "misclassified diagonality: {g}");
        }
    }

    #[test]
    fn self_inverse_classification_matches_matrices() {
        for g in all_fixed_gates() {
            if g.is_self_inverse() {
                let m = g.matrix();
                assert!(
                    m.mul(&m).approx_eq(&CMatrix::identity(m.rows()), 1e-12),
                    "{g} claimed self-inverse"
                );
            }
        }
    }

    #[test]
    fn display_includes_parameters() {
        assert_eq!(Gate::H.to_string(), "h");
        assert_eq!(Gate::P(0.5).to_string(), "p(0.500000)");
    }

    #[test]
    fn params_expose_angles() {
        assert_eq!(Gate::Rx(1.5).params(), vec![1.5]);
        assert!(Gate::Ccx.params().is_empty());
    }
}
