//! Basis translation: lowering to the Clifford+T + dynamic-ops basis.
//!
//! Real fault-tolerant targets (and the paper's own Fig. 2/Fig. 6
//! realizations) execute the discrete basis `{H, S, S†, T, T†, X, Z, CX}`
//! plus the dynamic primitives. This pass rewrites every supported gate to
//! that basis, *exactly* (global phase excepted, which is unobservable):
//! rotation and phase angles must be multiples of pi/4 (pi/2 for controlled
//! phases); anything finer is reported as an error rather than approximated
//! — gate approximation (Solovay-Kitaev et al.) is out of scope.
//!
//! Classically conditioned gates lower too: a condition distributes over a
//! template's gates, so each emitted gate inherits it.

use crate::circuit::Circuit;
use crate::decompose::{ccx_clifford_t, cv_clifford_t, decompose_mcx};
use crate::gate::Gate;
use crate::instruction::{Instruction, OpKind};
use crate::register::Qubit;
use std::error::Error;
use std::f64::consts::PI;
use std::fmt;

/// An angle that cannot be represented exactly in the target basis.
#[derive(Debug, Clone, PartialEq)]
pub struct BasisError {
    gate: String,
    angle: f64,
}

impl fmt::Display for BasisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "angle {} of gate {} is not an exact multiple of the basis resolution",
            self.angle, self.gate
        )
    }
}

impl Error for BasisError {}

/// Tolerance when snapping angles to multiples of pi/4.
const ANGLE_TOL: f64 = 1e-9;

/// Expresses `theta` as `k * pi/4 (mod 2 pi)` when possible.
fn as_eighth_turns(theta: f64) -> Option<u8> {
    let turns = theta / (PI / 4.0);
    let k = turns.round();
    if (turns - k).abs() > ANGLE_TOL {
        return None;
    }
    Some((k.rem_euclid(8.0)) as u8 % 8)
}

/// The phase ladder `P(k * pi/4)` as basis gates (empty for k = 0).
fn phase_ladder(k: u8) -> Vec<Gate> {
    match k % 8 {
        0 => vec![],
        1 => vec![Gate::T],
        2 => vec![Gate::S],
        3 => vec![Gate::S, Gate::T],
        4 => vec![Gate::Z],
        5 => vec![Gate::Z, Gate::T],
        6 => vec![Gate::Sdg],
        7 => vec![Gate::Tdg],
        _ => unreachable!("k reduced mod 8"),
    }
}

/// Lowers `circuit` to `{H, S, S†, T, T†, X, Z, CX}` plus measure, reset,
/// barriers and classical conditions.
///
/// Multi-control Toffolis are lowered through
/// [`decompose_mcx`] first (which may
/// append ancilla wires), then every remaining gate through exact
/// templates. Identity gates are dropped.
///
/// # Errors
///
/// Returns [`BasisError`] when a parameterised gate's angle is not an exact
/// multiple of pi/4 (pi/2 for [`Gate::Cp`], whose construction halves the
/// angle).
pub fn lower_to_clifford_t(circuit: &Circuit) -> Result<Circuit, BasisError> {
    let circuit = decompose_mcx(circuit);
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        circuit.num_qubits(),
        circuit.num_clbits(),
    );
    for inst in circuit.iter() {
        match inst.kind() {
            OpKind::Measure | OpKind::Reset | OpKind::Barrier => {
                out.push(inst.clone());
            }
            OpKind::Gate(g) => {
                let qs = inst.qubits();
                let emitted = lower_gate(g, qs)?;
                for e in emitted {
                    let e = match inst.condition() {
                        Some(c) => e.with_condition(c.clone()),
                        None => e,
                    };
                    out.push(e);
                }
            }
        }
    }
    Ok(out)
}

/// `true` when `gate` is already in the target basis.
#[must_use]
pub fn is_basis_gate(gate: &Gate) -> bool {
    matches!(
        gate,
        Gate::H | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::X | Gate::Z | Gate::Cx
    )
}

fn lower_gate(g: &Gate, qs: &[Qubit]) -> Result<Vec<Instruction>, BasisError> {
    let one = |gate: Gate| Instruction::gate(gate, vec![qs[0]]);
    let on = |gate: Gate, q: Qubit| Instruction::gate(gate, vec![q]);
    let cx = |c: Qubit, t: Qubit| Instruction::gate(Gate::Cx, vec![c, t]);
    Ok(match g {
        _ if is_basis_gate(g) => vec![Instruction::gate(g.clone(), qs.to_vec())],
        Gate::I => vec![],
        // Y = S X S† exactly.
        Gate::Y => vec![one(Gate::Sdg), one(Gate::X), one(Gate::S)],
        Gate::V => vec![one(Gate::H), one(Gate::S), one(Gate::H)],
        Gate::Vdg => vec![one(Gate::H), one(Gate::Sdg), one(Gate::H)],
        Gate::P(t) | Gate::Rz(t) => {
            let k = as_eighth_turns(*t).ok_or_else(|| BasisError {
                gate: g.to_string(),
                angle: *t,
            })?;
            phase_ladder(k).into_iter().map(one).collect()
        }
        Gate::Rx(t) => {
            let inner = lower_gate(&Gate::Rz(*t), qs)?;
            let mut v = vec![one(Gate::H)];
            v.extend(inner);
            v.push(one(Gate::H));
            v
        }
        Gate::Ry(t) => {
            // Ry = S · Rx · S† (conjugation maps X-axis to Y-axis).
            let inner = lower_gate(&Gate::Rx(*t), qs)?;
            let mut v = vec![one(Gate::Sdg)];
            v.extend(inner);
            v.push(one(Gate::S));
            v
        }
        Gate::Cy => {
            // CY = (S on target) CX (S† on target).
            vec![on(Gate::Sdg, qs[1]), cx(qs[0], qs[1]), on(Gate::S, qs[1])]
        }
        Gate::Cz => {
            vec![on(Gate::H, qs[1]), cx(qs[0], qs[1]), on(Gate::H, qs[1])]
        }
        Gate::Cp(t) => {
            // CP(t) = P(t/2) c · P(t/2) t · CX · P(-t/2) t · CX.
            let half = t / 2.0;
            let k = as_eighth_turns(half).ok_or_else(|| BasisError {
                gate: g.to_string(),
                angle: *t,
            })?;
            let neg = (8 - k) % 8;
            let mut v: Vec<Instruction> =
                phase_ladder(k).into_iter().map(|p| on(p, qs[0])).collect();
            v.extend(phase_ladder(k).into_iter().map(|p| on(p, qs[1])));
            v.push(cx(qs[0], qs[1]));
            v.extend(phase_ladder(neg).into_iter().map(|p| on(p, qs[1])));
            v.push(cx(qs[0], qs[1]));
            v
        }
        Gate::Cv => template(&cv_clifford_t(false), qs),
        Gate::Cvdg => template(&cv_clifford_t(true), qs),
        Gate::Swap => vec![cx(qs[0], qs[1]), cx(qs[1], qs[0]), cx(qs[0], qs[1])],
        Gate::Ccx => template(&ccx_clifford_t(), qs),
        Gate::Ccz => {
            let mut v = vec![on(Gate::H, qs[2])];
            v.extend(template(&ccx_clifford_t(), qs));
            v.push(on(Gate::H, qs[2]));
            v
        }
        Gate::Mcx(_) => unreachable!("MCX lowered by decompose_mcx above"),
        _ => unreachable!("all gate variants covered"),
    })
}

/// Instantiates a template circuit onto concrete wires.
fn template(tpl: &Circuit, qs: &[Qubit]) -> Vec<Instruction> {
    tpl.iter()
        .map(|inst| {
            let mapped: Vec<Qubit> = inst.qubits().iter().map(|q| qs[q.index()]).collect();
            Instruction::gate(
                inst.as_gate().expect("templates are unitary").clone(),
                mapped,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    /// Checks a single-gate circuit lowers to the same unitary up to phase,
    /// using matrix products (mirrors `qsim::circuit_unitary`, which we
    /// cannot depend on from here).
    fn check_gate(g: Gate, n: usize) {
        let mut circ = Circuit::new(n, 0);
        let qs: Vec<Qubit> = (0..g.num_qubits()).map(Qubit::new).collect();
        circ.gate(g.clone(), &qs);
        let lowered = lower_to_clifford_t(&circ).unwrap();
        let u_of = |c: &Circuit| {
            let mut u = qmath::CMatrix::identity(1 << c.num_qubits());
            for inst in c.iter() {
                let pos: Vec<usize> = inst.qubits().iter().map(|x| x.index()).collect();
                u = inst
                    .as_gate()
                    .unwrap()
                    .matrix()
                    .embed(&pos, c.num_qubits())
                    .mul(&u);
            }
            u
        };
        assert!(
            u_of(&lowered).approx_eq_up_to_phase(&u_of(&circ), 1e-9),
            "lowering of {g} is wrong"
        );
        for inst in lowered.iter() {
            assert!(
                is_basis_gate(inst.as_gate().unwrap()),
                "{g} left non-basis gate {}",
                inst.as_gate().unwrap()
            );
        }
    }

    #[test]
    fn all_fixed_gates_lower_exactly() {
        for g in [
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::V,
            Gate::Vdg,
        ] {
            check_gate(g, 1);
        }
        for g in [
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Cv,
            Gate::Cvdg,
            Gate::Swap,
        ] {
            check_gate(g, 2);
        }
        for g in [Gate::Ccx, Gate::Ccz] {
            check_gate(g, 3);
        }
    }

    #[test]
    fn exact_angles_lower() {
        for k in 0..8 {
            let theta = f64::from(k) * FRAC_PI_4;
            check_gate(Gate::P(theta), 1);
            check_gate(Gate::Rz(theta), 1);
            check_gate(Gate::Rx(theta), 1);
            check_gate(Gate::Ry(theta), 1);
        }
        for k in 0..4 {
            check_gate(Gate::Cp(f64::from(k) * FRAC_PI_2), 2);
        }
        // Negative angles normalize mod 2 pi.
        check_gate(Gate::P(-FRAC_PI_4), 1);
        check_gate(Gate::Cp(-FRAC_PI_2), 2);
    }

    #[test]
    fn inexact_angles_error() {
        let mut c = Circuit::new(1, 0);
        c.p(0.3, q(0));
        let err = lower_to_clifford_t(&c).unwrap_err();
        assert!(err.to_string().contains("0.3"));

        let mut c2 = Circuit::new(2, 0);
        c2.cp(FRAC_PI_4, q(0), q(1)); // halves to pi/8: unrepresentable
        assert!(lower_to_clifford_t(&c2).is_err());
    }

    #[test]
    fn mcx_lowers_through_the_ladder() {
        let mut c = Circuit::new(5, 0);
        c.mcx(&[q(0), q(1), q(2), q(3)], q(4));
        let lowered = lower_to_clifford_t(&c).unwrap();
        assert!(lowered.num_qubits() > 5); // ladder ancillas appended
        assert!(lowered.iter().all(|i| is_basis_gate(i.as_gate().unwrap())));
    }

    #[test]
    fn conditions_distribute_over_templates() {
        use crate::instruction::Condition;
        let mut c = Circuit::new(2, 1);
        c.gate_if(
            Gate::Cv,
            &[q(0), q(1)],
            Condition::bit(crate::register::Clbit::new(0)),
        );
        let lowered = lower_to_clifford_t(&c).unwrap();
        assert!(lowered.len() > 1);
        assert!(lowered.iter().all(Instruction::is_conditioned));
    }

    #[test]
    fn dynamic_ops_pass_through() {
        let mut c = Circuit::new(1, 1);
        c.h(q(0))
            .measure(q(0), crate::register::Clbit::new(0))
            .reset(q(0));
        let lowered = lower_to_clifford_t(&c).unwrap();
        assert_eq!(lowered.len(), 3);
    }

    #[test]
    fn identity_gates_are_dropped() {
        let mut c = Circuit::new(1, 0);
        c.gate(Gate::I, &[q(0)]).x(q(0));
        assert_eq!(lower_to_clifford_t(&c).unwrap().len(), 1);
    }

    #[test]
    fn phase_ladder_is_minimal_for_common_angles() {
        assert!(phase_ladder(0).is_empty());
        assert_eq!(phase_ladder(1), vec![Gate::T]);
        assert_eq!(phase_ladder(2), vec![Gate::S]);
        assert_eq!(phase_ladder(4), vec![Gate::Z]);
        assert_eq!(phase_ladder(6), vec![Gate::Sdg]);
        assert_eq!(phase_ladder(7), vec![Gate::Tdg]);
    }

    #[test]
    fn eighth_turn_snapping() {
        assert_eq!(as_eighth_turns(0.0), Some(0));
        assert_eq!(as_eighth_turns(FRAC_PI_4), Some(1));
        assert_eq!(as_eighth_turns(-FRAC_PI_4), Some(7));
        assert_eq!(as_eighth_turns(2.0 * PI), Some(0));
        assert_eq!(as_eighth_turns(0.3), None);
    }
}
