//! Reuse-aware qubit dependency analysis.
//!
//! The dynamic-circuit transformation folds a set of logical qubits (the
//! *foldable* set — data and ancilla qubits in `dqc`'s terminology) onto a
//! smaller number of physical wires by replaying each logical qubit in its
//! own iteration. Which schedules are legal is governed by a **qubit-level
//! dependency graph**: whenever a gate couples two foldable qubits with a
//! control/target structure, the control's lifetime must end (it must be
//! measured) no later than the moment the target-side replay needs its
//! value — i.e. the control's iteration comes first.
//!
//! This module provides the pieces a reuse planner needs, independent of
//! any particular transformation:
//!
//! * [`QubitDependencyGraph`] — the control→target relation over a foldable
//!   qubit set, with cycle detection and a stable topological order;
//! * [`live_intervals`] — per-qubit first/last-use, measure and reset points
//!   of an instruction stream;
//! * [`lane_partitions`] — enumeration of the legal ways to fold an ordered
//!   qubit sequence onto `k` physical lanes (ordered partitions into
//!   increasing subsequences), the combinatorial design space a `k`-lane
//!   planner searches.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::instruction::OpKind;
use crate::register::Qubit;
use std::fmt;

/// Errors from reuse dependency analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReuseError {
    /// A gate couples two or more foldable qubits without a control/target
    /// structure (e.g. a swap), so no fold order can serialize it.
    Uncoupled {
        /// Rendering of the offending instruction.
        what: String,
    },
    /// The control→target relation is cyclic: no fold order exists.
    Cyclic {
        /// Foldable qubits involved in the unresolved cycle.
        qubits: Vec<Qubit>,
    },
}

impl fmt::Display for ReuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReuseError::Uncoupled { what } => {
                write!(
                    f,
                    "{what}: couples foldable qubits without a control/target structure"
                )
            }
            ReuseError::Cyclic { qubits } => {
                write!(f, "cyclic qubit dependency among ")?;
                for (i, q) in qubits.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{q}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ReuseError {}

/// The control→target dependency relation over a foldable qubit set.
///
/// An edge `u → v` means qubit `u`'s replay must come before qubit `v`'s:
/// some gate has its control on `u` and its target on `v`, so `u`'s
/// measured value must exist when `v`'s side is replayed.
///
/// # Examples
///
/// ```
/// use qcir::{Circuit, Qubit};
/// use qcir::reuse::QubitDependencyGraph;
///
/// let q = Qubit::new;
/// let mut c = Circuit::new(3, 0);
/// c.cx(q(1), q(0)); // control q1, target q0
/// let g = QubitDependencyGraph::build(&c, &[q(0), q(1)]).unwrap();
/// assert_eq!(g.topological_order().unwrap(), vec![q(1), q(0)]);
/// assert!(g.has_edge(q(1), q(0)));
/// ```
#[derive(Debug, Clone)]
pub struct QubitDependencyGraph {
    foldable: Vec<Qubit>,
    /// `succ[u]` holds `v` when `u` must precede `v` (indices into
    /// `foldable`).
    succ: Vec<Vec<usize>>,
}

impl QubitDependencyGraph {
    /// Builds the dependency graph of `circuit` over the given foldable
    /// qubit set. Qubits outside the set (e.g. answer qubits) impose no
    /// ordering. Non-gate instructions are ignored.
    ///
    /// A gate with two or more foldable operands must have a control/target
    /// structure — controls first, exactly one target last — to be
    /// serializable; for such gates an edge is added from every foldable
    /// control to the target (when the target itself is foldable).
    ///
    /// # Errors
    ///
    /// [`ReuseError::Uncoupled`] for a gate with multiple foldable operands
    /// and no control/target structure (no controls, or a swap).
    pub fn build(circuit: &Circuit, foldable: &[Qubit]) -> Result<Self, ReuseError> {
        let pos_of = |q: Qubit| foldable.iter().position(|&w| w == q);
        let n = foldable.len();
        let mut succ = vec![Vec::new(); n];

        for inst in circuit.iter() {
            let OpKind::Gate(g) = inst.kind() else {
                continue;
            };
            let qubits = inst.qubits();
            let n_ctrl = g.num_controls();
            let fold_count = qubits.iter().filter(|&&q| pos_of(q).is_some()).count();
            if fold_count <= 1 {
                continue;
            }
            if n_ctrl == 0 || matches!(g, Gate::Swap) {
                return Err(ReuseError::Uncoupled {
                    what: inst.to_string(),
                });
            }
            let target = qubits[qubits.len() - 1];
            let Some(t) = pos_of(target) else {
                // All foldable operands are controls: no mutual ordering.
                continue;
            };
            for &c in &qubits[..n_ctrl] {
                if let Some(u) = pos_of(c) {
                    if u != t && !succ[u].contains(&t) {
                        succ[u].push(t);
                    }
                }
            }
        }
        Ok(Self {
            foldable: foldable.to_vec(),
            succ,
        })
    }

    /// The foldable qubit set, in construction order.
    #[must_use]
    pub fn qubits(&self) -> &[Qubit] {
        &self.foldable
    }

    /// `true` when the relation contains the edge `u → v`.
    #[must_use]
    pub fn has_edge(&self, u: Qubit, v: Qubit) -> bool {
        let pos = |q: Qubit| self.foldable.iter().position(|&w| w == q);
        match (pos(u), pos(v)) {
            (Some(a), Some(b)) => self.succ[a].contains(&b),
            _ => false,
        }
    }

    /// All edges `(control, target)` in deterministic order.
    #[must_use]
    pub fn edges(&self) -> Vec<(Qubit, Qubit)> {
        let mut out = Vec::new();
        for (u, vs) in self.succ.iter().enumerate() {
            for &v in vs {
                out.push((self.foldable[u], self.foldable[v]));
            }
        }
        out
    }

    /// `true` when a topological order exists.
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_ok()
    }

    /// A stable topological order: among ready qubits the one earliest in
    /// the foldable sequence comes first, preserving the caller's register
    /// order when the constraints allow.
    ///
    /// # Errors
    ///
    /// [`ReuseError::Cyclic`] with the qubits stuck in the cycle.
    pub fn topological_order(&self) -> Result<Vec<Qubit>, ReuseError> {
        let n = self.foldable.len();
        let mut indegree = vec![0usize; n];
        for vs in &self.succ {
            for &v in vs {
                indegree[v] += 1;
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        while let Some(&next) = ready.iter().min() {
            ready.retain(|&i| i != next);
            order.push(self.foldable[next]);
            for &v in &self.succ[next] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    ready.push(v);
                }
            }
        }
        if order.len() != n {
            let stuck: Vec<Qubit> = (0..n)
                .filter(|&i| indegree[i] > 0)
                .map(|i| self.foldable[i])
                .collect();
            return Err(ReuseError::Cyclic { qubits: stuck });
        }
        Ok(order)
    }
}

/// Per-qubit lifetime facts of an instruction stream (barriers ignored).
///
/// Instruction indices refer to positions in [`Circuit::instructions`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveInterval {
    /// The qubit.
    pub qubit: Qubit,
    /// Index of the first non-barrier instruction touching the qubit.
    pub first_use: Option<usize>,
    /// Index of the last non-barrier instruction touching the qubit.
    pub last_use: Option<usize>,
    /// Indices of measurements of this qubit.
    pub measured_at: Vec<usize>,
    /// Indices of active resets of this qubit.
    pub reset_at: Vec<usize>,
}

impl LiveInterval {
    /// `true` when no instruction touches the qubit.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.first_use.is_none()
    }
}

/// Computes [`LiveInterval`]s for every qubit wire of `circuit`.
///
/// # Examples
///
/// ```
/// use qcir::{Circuit, Clbit, Qubit};
/// use qcir::reuse::live_intervals;
///
/// let q = Qubit::new;
/// let mut c = Circuit::new(2, 1);
/// c.h(q(0)).cx(q(0), q(1)).measure(q(0), Clbit::new(0)).reset(q(0));
/// let live = live_intervals(&c);
/// assert_eq!(live[0].first_use, Some(0));
/// assert_eq!(live[0].last_use, Some(3));
/// assert_eq!(live[0].measured_at, vec![2]);
/// assert_eq!(live[0].reset_at, vec![3]);
/// assert_eq!(live[1].first_use, Some(1));
/// ```
#[must_use]
pub fn live_intervals(circuit: &Circuit) -> Vec<LiveInterval> {
    let mut out: Vec<LiveInterval> = (0..circuit.num_qubits())
        .map(|i| LiveInterval {
            qubit: Qubit::new(i),
            first_use: None,
            last_use: None,
            measured_at: Vec::new(),
            reset_at: Vec::new(),
        })
        .collect();
    for (idx, inst) in circuit.iter().enumerate() {
        if inst.is_barrier() {
            continue;
        }
        for &q in inst.qubits() {
            let live = &mut out[q.index()];
            if live.first_use.is_none() {
                live.first_use = Some(idx);
            }
            live.last_use = Some(idx);
            match inst.kind() {
                OpKind::Measure => live.measured_at.push(idx),
                OpKind::Reset => live.reset_at.push(idx),
                _ => {}
            }
        }
    }
    out
}

/// `true` when `gate` acts diagonally (Z-basis-preserving) on its
/// `operand`-th qubit: the operand is a control, or the whole gate is
/// diagonal in the computational basis (up to global phase).
///
/// This is the condition under which a computational-basis measurement of
/// that qubit commutes past the gate — the deferred-measurement soundness
/// criterion a reuse planner uses to decide whether an early classical
/// read of a control is *exact* rather than the single-lane scheme's
/// approximation.
#[must_use]
pub fn acts_diagonally(gate: &Gate, operand: usize) -> bool {
    if operand < gate.num_controls() {
        return true;
    }
    matches!(
        gate,
        Gate::I
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::P(_)
            | Gate::Rz(_)
            | Gate::Cz
            | Gate::Cp(_)
            | Gate::Ccz
    )
}

/// The index of the last instruction acting **non-diagonally** on `q`, if
/// any (see [`acts_diagonally`]; non-gate instructions are ignored).
///
/// A classical read of `q`'s measurement by an instruction at index `idx`
/// is sound — exactly equivalent to the original quantum control — iff
/// `last_nondiagonal_action(c, q) <= Some(idx)`: everything on `q` after
/// the reading gate then commutes with the measurement, so measuring early
/// cannot change any outcome distribution.
#[must_use]
pub fn last_nondiagonal_action(circuit: &Circuit, q: Qubit) -> Option<usize> {
    let mut last = None;
    for (idx, inst) in circuit.iter().enumerate() {
        let OpKind::Gate(gate) = inst.kind() else {
            continue;
        };
        if let Some(pos) = inst.qubits().iter().position(|&x| x == q) {
            if !acts_diagonally(gate, pos) {
                last = Some(idx);
            }
        }
    }
    last
}

/// Enumerates the ways to fold the ordered sequence `0..m` onto exactly
/// `k` physical lanes.
///
/// Each result is a list of `k` non-empty lanes; each lane is a strictly
/// increasing subsequence of `0..m`, and lanes are ordered by their first
/// element. The count is the Stirling number of the second kind `S(m, k)`.
/// Enumeration is deterministic and stops once `cap` partitions have been
/// produced (a planner's search budget); `cap = usize::MAX` enumerates all.
///
/// Returns an empty list when `k == 0 < m` or `k > m`. For `m == 0` the
/// only partition is the empty one when `k == 0`.
///
/// # Examples
///
/// ```
/// use qcir::reuse::lane_partitions;
///
/// let parts = lane_partitions(3, 2, usize::MAX);
/// assert_eq!(parts.len(), 3); // S(3,2) = 3
/// assert!(parts.contains(&vec![vec![0, 1], vec![2]]));
/// assert!(parts.contains(&vec![vec![0, 2], vec![1]]));
/// assert!(parts.contains(&vec![vec![0], vec![1, 2]]));
/// ```
#[must_use]
pub fn lane_partitions(m: usize, k: usize, cap: usize) -> Vec<Vec<Vec<usize>>> {
    let mut out = Vec::new();
    if k > m {
        return out;
    }
    if m == 0 {
        if k == 0 {
            out.push(Vec::new());
        }
        return out;
    }
    if k == 0 {
        return out;
    }
    let mut lanes: Vec<Vec<usize>> = Vec::new();
    assign(0, m, k, cap, &mut lanes, &mut out);
    out
}

/// Recursive helper of [`lane_partitions`]: place item `i` on an existing
/// lane or open a new one, pruning branches that cannot reach `k` lanes.
fn assign(
    i: usize,
    m: usize,
    k: usize,
    cap: usize,
    lanes: &mut Vec<Vec<usize>>,
    out: &mut Vec<Vec<Vec<usize>>>,
) {
    if out.len() >= cap {
        return;
    }
    if i == m {
        if lanes.len() == k {
            out.push(lanes.clone());
        }
        return;
    }
    let remaining = m - i;
    // Existing lanes (only when enough items remain to open the missing
    // lanes afterwards).
    if lanes.len() + remaining > k {
        for l in 0..lanes.len() {
            lanes[l].push(i);
            assign(i + 1, m, k, cap, lanes, out);
            lanes[l].pop();
        }
    }
    // A new lane.
    if lanes.len() < k {
        lanes.push(vec![i]);
        assign(i + 1, m, k, cap, lanes, out);
        lanes.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::Clbit;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn graph_orders_control_before_target() {
        let mut c = Circuit::new(3, 0);
        c.cx(q(1), q(0)).cx(q(0), q(2));
        let g = QubitDependencyGraph::build(&c, &[q(0), q(1)]).unwrap();
        assert_eq!(g.topological_order().unwrap(), vec![q(1), q(0)]);
        assert_eq!(g.edges(), vec![(q(1), q(0))]);
    }

    #[test]
    fn stable_order_keeps_register_order_when_unconstrained() {
        let mut c = Circuit::new(4, 0);
        c.cx(q(0), q(3)).cx(q(1), q(3)).cx(q(2), q(3));
        let g = QubitDependencyGraph::build(&c, &[q(0), q(1), q(2)]).unwrap();
        assert_eq!(g.topological_order().unwrap(), vec![q(0), q(1), q(2)]);
    }

    #[test]
    fn cycle_is_reported_with_members() {
        let mut c = Circuit::new(2, 0);
        c.cx(q(0), q(1)).cx(q(1), q(0));
        let g = QubitDependencyGraph::build(&c, &[q(0), q(1)]).unwrap();
        assert!(!g.is_acyclic());
        match g.topological_order().unwrap_err() {
            ReuseError::Cyclic { qubits } => assert_eq!(qubits, vec![q(0), q(1)]),
            other => panic!("expected cycle, got {other}"),
        }
    }

    #[test]
    fn swap_between_foldable_qubits_is_uncoupled() {
        let mut c = Circuit::new(3, 0);
        c.swap(q(0), q(1));
        let err = QubitDependencyGraph::build(&c, &[q(0), q(1)]).unwrap_err();
        assert!(matches!(err, ReuseError::Uncoupled { .. }), "{err}");
    }

    #[test]
    fn swap_touching_non_foldable_is_fine() {
        let mut c = Circuit::new(3, 0);
        c.swap(q(0), q(2));
        assert!(QubitDependencyGraph::build(&c, &[q(0), q(1)]).is_ok());
    }

    #[test]
    fn target_outside_foldable_set_imposes_no_order() {
        let mut c = Circuit::new(3, 0);
        c.ccx(q(0), q(1), q(2));
        let g = QubitDependencyGraph::build(&c, &[q(0), q(1)]).unwrap();
        assert!(g.edges().is_empty());
    }

    #[test]
    fn live_intervals_track_idle_qubits() {
        let mut c = Circuit::new(3, 1);
        c.h(q(0)).measure(q(0), Clbit::new(0));
        let live = live_intervals(&c);
        assert!(!live[0].is_idle());
        assert!(live[1].is_idle());
        assert_eq!(live[0].measured_at, vec![1]);
    }

    #[test]
    fn live_intervals_ignore_barriers() {
        let mut c = Circuit::new(2, 0);
        c.h(q(0)).barrier_all().x(q(0));
        let live = live_intervals(&c);
        assert_eq!(live[0].first_use, Some(0));
        assert_eq!(live[0].last_use, Some(2));
        assert!(live[1].is_idle());
    }

    #[test]
    fn partition_counts_are_stirling_numbers() {
        // S(4,1)=1, S(4,2)=7, S(4,3)=6, S(4,4)=1.
        for (k, expected) in [(1, 1), (2, 7), (3, 6), (4, 1)] {
            assert_eq!(lane_partitions(4, k, usize::MAX).len(), expected, "k={k}");
        }
        assert!(lane_partitions(4, 5, usize::MAX).is_empty());
        assert!(lane_partitions(4, 0, usize::MAX).is_empty());
        assert_eq!(
            lane_partitions(0, 0, usize::MAX),
            vec![Vec::<Vec<usize>>::new()]
        );
    }

    #[test]
    fn partitions_are_increasing_and_lane_ordered() {
        for part in lane_partitions(5, 3, usize::MAX) {
            let mut seen = Vec::new();
            for lane in &part {
                assert!(!lane.is_empty());
                assert!(lane.windows(2).all(|w| w[0] < w[1]));
                seen.extend_from_slice(lane);
            }
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3, 4]);
            assert!(part.windows(2).all(|w| w[0][0] < w[1][0]));
        }
    }

    #[test]
    fn cap_limits_enumeration() {
        assert_eq!(lane_partitions(10, 3, 5).len(), 5);
    }

    #[test]
    fn single_lane_partition_is_the_whole_sequence() {
        assert_eq!(lane_partitions(3, 1, usize::MAX), vec![vec![vec![0, 1, 2]]]);
    }
}
